//! Perf-trajectory smoke harness: runs Q1/Q5/Q6 on each engine at a fixed
//! seed/scale and writes machine-readable `BENCH_smoke.json` so successive
//! PRs have a comparable throughput baseline.
//!
//! Scale defaults to 32 768 events (seed `0xAD1B70`, 128 row groups) and can
//! be overridden through the usual `HEPQUERY_*` environment variables. Each
//! (engine, query) pair runs `RUNS` times; the JSON records the median wall
//! time to damp scheduler noise.

use std::sync::Arc;

use engine_sql::{Dialect, SqlOptions};
use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;
use hepbench_core::adapters;
use hepbench_core::QueryId;
use nf2_columnar::{ExecStats, Table};

const RUNS: usize = 3;

struct Row {
    engine: &'static str,
    query: &'static str,
    wall_seconds: f64,
    cpu_seconds: f64,
    events_per_sec: f64,
}

fn spec() -> DatasetSpec {
    let n_events = std::env::var("HEPQUERY_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32_768);
    let row_group_size = std::env::var("HEPQUERY_ROW_GROUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| (n_events / 128).max(1));
    let seed = std::env::var("HEPQUERY_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xAD1B70);
    DatasetSpec {
        n_events,
        row_group_size,
        seed,
    }
}

fn median_stats(mut runs: Vec<ExecStats>) -> ExecStats {
    runs.sort_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds));
    runs.swap_remove(runs.len() / 2)
}

fn measure(
    engine: &'static str,
    query: &'static str,
    n_events: usize,
    run: impl Fn() -> ExecStats,
) -> Row {
    let stats = median_stats((0..RUNS).map(|_| run()).collect());
    eprintln!(
        "  {engine:12} {query}: {:8.2} ms wall, {:8.2} ms cpu",
        stats.wall_seconds * 1e3,
        stats.cpu_seconds * 1e3
    );
    Row {
        engine,
        query,
        wall_seconds: stats.wall_seconds,
        cpu_seconds: stats.cpu_seconds,
        events_per_sec: n_events as f64 / stats.wall_seconds,
    }
}

fn main() {
    let spec = spec();
    eprintln!(
        "# perf_smoke: {} events, {} per row group, seed {:#x}",
        spec.n_events, spec.row_group_size, spec.seed
    );
    let (_, table) = build_dataset(spec);
    let table: Arc<Table> = Arc::new(table);
    let n = spec.n_events;

    let queries = [
        (QueryId::Q1, "Q1"),
        (QueryId::Q5, "Q5"),
        (QueryId::Q6a, "Q6"),
    ];

    let mut rows = Vec::new();
    for (q, name) in queries {
        rows.push(measure("sql-presto", name, n, || {
            adapters::run_sql(Dialect::presto(), &table, q, SqlOptions::default())
                .expect("sql run")
                .stats
        }));
    }
    for (q, name) in queries {
        rows.push(measure("jsoniq", name, n, || {
            adapters::run_jsoniq(&table, q, engine_flwor::FlworOptions::default())
                .expect("jsoniq run")
                .stats
        }));
    }
    for (q, name) in queries {
        rows.push(measure("rdataframe", name, n, || {
            adapters::run_rdf(&table, q, engine_rdf::Options::default())
                .expect("rdf run")
                .stats
        }));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"dataset\": {{ \"events\": {}, \"row_group_size\": {}, \"seed\": {} }},\n",
        spec.n_events, spec.row_group_size, spec.seed
    ));
    json.push_str(&format!("  \"runs_per_point\": {RUNS},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"engine\": \"{}\", \"query\": \"{}\", \"wall_seconds\": {:.6}, \"cpu_seconds\": {:.6}, \"events_per_sec\": {:.1} }}{}\n",
            r.engine,
            r.query,
            r.wall_seconds,
            r.cpu_seconds,
            r.events_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_SMOKE_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    std::fs::write(&out, &json).expect("write BENCH_smoke.json");
    eprintln!("# wrote {out}");
    print!("{json}");
}
