//! Figure 4b companion: the economics of zone-map row-group pruning.
//!
//! The paper's Figure 4b prices every system by bytes scanned per row —
//! and its queries scan *every* row group, because the benchmark plots
//! unconditioned distributions. Real analysis workloads cut on run /
//! luminosity-block / event windows first (a "good runs list"), and those
//! cuts are exactly what zone maps ([`nf2_columnar::stats`]) skip whole
//! row groups for. This harness measures that effect on **windowed
//! variants of Q1 and Q5**: the benchmark physics with an added
//! `event`-window cut over the monotone event-id column, run on the two
//! interpreted engines that can express it (Presto SQL and JSONiq).
//!
//! For each (engine, query) the harness runs pruning off and on
//! (min-of-[`RUNS`] wall, single intra-query thread) and records the
//! row-group/byte split. Both arms pin `vectorized_filter` off: the gate
//! prices pruning on the **row-at-a-time interpreted path** (the
//! deployment the paper measures), not against the orthogonal
//! late-materialization kernels — with those on, the window cut is
//! already near-free and the only pruning win left is skipped decode. Three invariants hold unconditionally and are
//! asserted in every mode:
//!
//! * results are **byte-identical** with pruning on and off;
//! * accounting bytes are conserved: `bytes_scanned + bytes_pruned`
//!   with pruning on equals `bytes_scanned` with pruning off;
//! * the pruned byte split is reported so the Figure 4b pricing
//!   question — BigQuery bills logical bytes, Athena compressed bytes,
//!   and neither bills pruned groups — can be read off the JSON.
//!
//! `--check` is the CI gate, watchdogged like `fuzz_diff` (a hung engine
//! fails the run instead of wedging CI): both windowed queries must
//! prune at least [`MIN_PRUNED_FRACTION`] of row groups, and each
//! engine's aggregate interpreted wall time must improve by at least
//! [`MIN_SPEEDUP`]× with pruning on. The default mode writes
//! `results/fig4b_pruning.json` (override with `FIG4B_OUT`).
//!
//! Scale knobs: `HEPQUERY_EVENTS`, `HEPQUERY_ROW_GROUP`,
//! `HEPQUERY_SEED`, `HEPQUERY_FIG4B_WATCHDOG` (seconds, default 600).

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use engine_flwor::{FlworEngine, FlworOptions};
use engine_sql::{Dialect, SqlEngine, SqlOptions};
use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;
use hepbench_core::queries::{self, Language};
use hepbench_core::QueryId;
use nf2_columnar::{ExecStats, Table};

/// Wall times are min-of-`RUNS` — the gate compares best case to best
/// case, so scheduler noise cannot manufacture (or hide) a speedup.
const RUNS: usize = 5;

/// `--check`: minimum fraction of row groups the window cut must prune.
const MIN_PRUNED_FRACTION: f64 = 0.30;

/// `--check`: minimum aggregate interpreted-path speedup per engine.
const MIN_SPEEDUP: f64 = 1.5;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec() -> DatasetSpec {
    let n_events = env_u64("HEPQUERY_EVENTS", 32_768) as usize;
    DatasetSpec {
        n_events,
        row_group_size: env_u64("HEPQUERY_ROW_GROUP", (n_events as u64 / 128).max(1)) as usize,
        seed: env_u64("HEPQUERY_SEED", 0xAD1B70),
    }
}

/// The event-id window: the middle quarter of the data set, so the cut
/// exercises both bounds and prunes groups on both sides. Event ids are
/// 1-based and monotone across row groups (see `hep_model::generator`),
/// which is what makes the zone maps selective.
fn window(n_events: usize) -> (i64, i64) {
    let n = n_events as i64;
    (n / 8, n / 8 + n / 4)
}

/// Windowed Q1 (Presto): the MET distribution binned as in Q1, with the
/// window cut as root-level WHERE conjuncts — the shape
/// `engine_sql::plan::filterable_predicates` extracts pruning
/// predicates from.
fn q1w_sql(lo: i64, hi: i64) -> String {
    format!(
        "SELECT CAST(FLOOR(MET.pt / 5.0) AS BIGINT) AS bin, COUNT(*) AS n\n\
         FROM events\n\
         WHERE event >= {lo} AND event < {hi}\n\
         GROUP BY CAST(FLOOR(MET.pt / 5.0) AS BIGINT)\n\
         ORDER BY bin"
    )
}

/// Windowed Q5 (Presto): the opposite-charge dimuon selection of Q5
/// (invariant mass in [60, 120] GeV, MET of the best pair per event)
/// flattened to a single root-level SELECT so the window conjuncts sit
/// in the root WHERE. Without CTEs the energy terms are spelled out
/// repeatedly — the paper's R2.3 complaint about the SQL dialects,
/// suffered here on purpose: this is the *interpreted* path the pruning
/// gate prices.
fn q5w_sql(lo: i64, hi: i64) -> String {
    let e = |i: usize| {
        format!(
            "SQRT(pt{i} * COS(phi{i}) * pt{i} * COS(phi{i}) \
             + pt{i} * SIN(phi{i}) * pt{i} * SIN(phi{i}) \
             + pt{i} * SINH(eta{i}) * pt{i} * SINH(eta{i}) \
             + mass{i} * mass{i})"
        )
    };
    let (e1, e2) = (e(1), e(2));
    let px = "(pt1 * COS(phi1) + pt2 * COS(phi2))";
    let py = "(pt1 * SIN(phi1) + pt2 * SIN(phi2))";
    let pz = "(pt1 * SINH(eta1) + pt2 * SINH(eta2))";
    format!(
        "SELECT event AS eid, MIN(MET.pt) AS met\n\
         FROM events\n\
         CROSS JOIN UNNEST(Muon) WITH ORDINALITY AS t1 (pt1, eta1, phi1, mass1, q1, iso31, iso41, tight1, soft1, dxy1, dxyerr1, dz1, dzerr1, jidx1, gidx1, i1)\n\
         CROSS JOIN UNNEST(Muon) WITH ORDINALITY AS t2 (pt2, eta2, phi2, mass2, q2, iso32, iso42, tight2, soft2, dxy2, dxyerr2, dz2, dzerr2, jidx2, gidx2, i2)\n\
         WHERE event >= {lo} AND event < {hi} AND i1 < i2 AND q1 != q2\n\
         \x20 AND SQRT(GREATEST(0.0, ({e1} + {e2}) * ({e1} + {e2}) - ({px} * {px} + {py} * {py} + {pz} * {pz}))) BETWEEN 60.0 AND 120.0\n\
         GROUP BY event\n\
         ORDER BY eid"
    )
}

/// Windowed Q1/Q5 (JSONiq): the canonical benchmark module with a
/// window `where` clause inserted directly after the top-level `for` —
/// the leading-clause position `prefilter_predicates` inspects. Panics
/// if the canonical text drifts away from the insertion marker.
fn windowed_jq(q: QueryId, lo: i64, hi: i64) -> String {
    let text = queries::text(Language::Jsoniq, q);
    let marker = "for $e in parquet-file(\"events\")\n";
    let windowed = text.replace(
        marker,
        &format!("{marker}where $e.event ge {lo} and $e.event lt {hi}\n"),
    );
    assert_ne!(windowed, text, "{q:?} JSONiq text lost the scan marker");
    windowed
}

/// One measured (engine, query, pruning) point.
struct Point {
    wall_seconds: f64,
    stats: ExecStats,
}

/// Min-of-`RUNS` wall plus the (run-invariant) scan stats, with the
/// result of every run handed to `check` for the identity assertion.
fn measure<R: PartialEq + std::fmt::Debug>(run: impl Fn() -> (R, ExecStats)) -> (R, Point) {
    let (result, first_stats) = run();
    let mut wall = first_stats.wall_seconds;
    let mut stats = first_stats;
    for _ in 1..RUNS {
        let (r, s) = run();
        assert_eq!(r, result, "non-deterministic result across repeat runs");
        if s.wall_seconds < wall {
            wall = s.wall_seconds;
        }
        stats = s;
    }
    stats.wall_seconds = wall;
    (
        result,
        Point {
            wall_seconds: wall,
            stats,
        },
    )
}

fn sql_point(table: &Arc<Table>, sql: &str, prune: bool) -> (engine_sql::exec::Relation, Point) {
    measure(|| {
        let mut engine = SqlEngine::new(
            Dialect::presto(),
            SqlOptions {
                zone_map_pruning: prune,
                n_threads: 1,
                vectorized_filter: false,
                ..SqlOptions::default()
            },
        );
        engine.register(table.clone());
        let out = engine.execute(sql).unwrap_or_else(|e| panic!("{e}"));
        (out.relation, out.stats)
    })
}

fn jq_point(table: &Arc<Table>, text: &str, prune: bool) -> (engine_flwor::interp::Seq, Point) {
    measure(|| {
        let mut engine = FlworEngine::new(FlworOptions {
            zone_map_pruning: prune,
            n_threads: 1,
            vectorized_filter: false,
            ..FlworOptions::default()
        });
        engine.register(table.clone());
        let out = engine.execute(text).unwrap_or_else(|e| panic!("{e}"));
        (out.items, out.stats)
    })
}

/// One (engine, query) row of the report.
struct Row {
    engine: &'static str,
    query: &'static str,
    groups_total: u64,
    groups_pruned: u64,
    pruned_fraction: f64,
    bytes_scanned_off: u64,
    bytes_scanned_on: u64,
    bytes_pruned: u64,
    wall_off: f64,
    wall_on: f64,
    speedup: f64,
}

impl Row {
    fn build(
        engine: &'static str,
        query: &'static str,
        groups_total: u64,
        off: &Point,
        on: &Point,
    ) -> Row {
        assert_eq!(off.stats.scan.groups_pruned, 0, "{engine} {query}");
        assert_eq!(off.stats.scan.bytes_pruned, 0, "{engine} {query}");
        assert_eq!(
            on.stats.scan.bytes_scanned + on.stats.scan.bytes_pruned,
            off.stats.scan.bytes_scanned,
            "{engine} {query}: accounting bytes not conserved under pruning",
        );
        let row = Row {
            engine,
            query,
            groups_total,
            groups_pruned: on.stats.scan.groups_pruned,
            pruned_fraction: on.stats.scan.groups_pruned as f64 / groups_total as f64,
            bytes_scanned_off: off.stats.scan.bytes_scanned,
            bytes_scanned_on: on.stats.scan.bytes_scanned,
            bytes_pruned: on.stats.scan.bytes_pruned,
            wall_off: off.wall_seconds,
            wall_on: on.wall_seconds,
            speedup: off.wall_seconds / on.wall_seconds,
        };
        eprintln!(
            "  {:8} {:4}: pruned {:3}/{} groups ({:4.0}%), {:9} of {:9} bytes; wall {:8.2} -> {:8.2} ms ({:.1}x)",
            row.engine,
            row.query,
            row.groups_pruned,
            row.groups_total,
            row.pruned_fraction * 100.0,
            row.bytes_pruned,
            row.bytes_scanned_off,
            row.wall_off * 1e3,
            row.wall_on * 1e3,
            row.speedup,
        );
        row
    }
}

/// Runs the full (engine × windowed query) grid, asserting result
/// identity and byte conservation on every point.
fn run_grid(spec: DatasetSpec) -> Vec<Row> {
    eprintln!(
        "# fig4b_pruning: {} events, {} per row group, seed {:#x}, min of {RUNS}",
        spec.n_events, spec.row_group_size, spec.seed
    );
    let (lo, hi) = window(spec.n_events);
    eprintln!("# window: {lo} <= event < {hi} (monotone event ids, 1-based)");
    let (_, table) = build_dataset(spec);
    let table: Arc<Table> = Arc::new(table);
    let groups_total = table.row_groups().len() as u64;
    let mut rows = Vec::new();

    for (query, sql) in [("Q1", q1w_sql(lo, hi)), ("Q5", q5w_sql(lo, hi))] {
        let (off_rel, off) = sql_point(&table, &sql, false);
        let (on_rel, on) = sql_point(&table, &sql, true);
        assert_eq!(on_rel, off_rel, "sql {query}: pruning changed the result");
        rows.push(Row::build("sql", query, groups_total, &off, &on));
    }
    for (query, q) in [("Q1", QueryId::Q1), ("Q5", QueryId::Q5)] {
        let text = windowed_jq(q, lo, hi);
        let (off_items, off) = jq_point(&table, &text, false);
        let (on_items, on) = jq_point(&table, &text, true);
        assert_eq!(
            on_items, off_items,
            "jsoniq {query}: pruning changed the result"
        );
        rows.push(Row::build("jsoniq", query, groups_total, &off, &on));
    }
    rows
}

/// `--check`: every windowed query must prune enough of the table, and
/// each engine's aggregate interpreted wall must improve by the gate.
fn check_rows(rows: &[Row]) -> bool {
    let mut ok = true;
    for r in rows {
        if r.pruned_fraction < MIN_PRUNED_FRACTION {
            eprintln!(
                "# FAIL: {} {} pruned {:.0}% of row groups, below the {:.0}% gate",
                r.engine,
                r.query,
                r.pruned_fraction * 100.0,
                MIN_PRUNED_FRACTION * 100.0
            );
            ok = false;
        }
    }
    for engine in ["sql", "jsoniq"] {
        let sum = |f: fn(&Row) -> f64| rows.iter().filter(|r| r.engine == engine).map(f).sum();
        let (off, on): (f64, f64) = (sum(|r| r.wall_off), sum(|r| r.wall_on));
        let speedup = off / on;
        eprintln!(
            "# {engine}: aggregate wall {:.2} -> {:.2} ms, speedup {speedup:.2}x (gate: {MIN_SPEEDUP:.1}x)",
            off * 1e3,
            on * 1e3
        );
        if speedup < MIN_SPEEDUP {
            eprintln!("# FAIL: {engine} aggregate speedup below the gate");
            ok = false;
        }
    }
    ok
}

fn to_json(spec: DatasetSpec, rows: &[Row]) -> String {
    let (lo, hi) = window(spec.n_events);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"dataset\": {{ \"events\": {}, \"row_group_size\": {}, \"seed\": {} }},\n",
        spec.n_events, spec.row_group_size, spec.seed
    ));
    json.push_str(&format!(
        "  \"window\": {{ \"lo\": {lo}, \"hi\": {hi} }},\n  \"runs_per_point\": {RUNS},\n"
    ));
    json.push_str("  \"fig4b_pruning\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"engine\": \"{}\", \"query\": \"{}\", \"groups_total\": {}, \"groups_pruned\": {}, \"pruned_fraction\": {:.4}, \"bytes_scanned_off\": {}, \"bytes_scanned_on\": {}, \"bytes_pruned\": {}, \"wall_seconds_off\": {:.6}, \"wall_seconds_on\": {:.6}, \"speedup\": {:.2} }}{}\n",
            r.engine,
            r.query,
            r.groups_total,
            r.groups_pruned,
            r.pruned_fraction,
            r.bytes_scanned_off,
            r.bytes_scanned_on,
            r.bytes_pruned,
            r.wall_off,
            r.wall_on,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let spec = spec();
    let watchdog = Duration::from_secs(env_u64("HEPQUERY_FIG4B_WATCHDOG", 600));
    let (done_tx, done_rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let rows = run_grid(spec);
        let ok = !check || check_rows(&rows);
        let _ = done_tx.send((rows, ok));
    });
    let (rows, ok) = match done_rx.recv_timeout(watchdog) {
        Ok(r) => r,
        Err(_) => {
            eprintln!(
                "FAIL: fig4b_pruning did not finish within {}s — hung engine?",
                watchdog.as_secs()
            );
            std::process::exit(1);
        }
    };
    worker.join().expect("fig4b worker");
    if check {
        if !ok {
            eprintln!("# FAIL: pruning gates not met");
            std::process::exit(1);
        }
        eprintln!("# OK: pruning fraction and interpreted speedup within the gates");
        return;
    }
    let json = to_json(spec, &rows);
    let out =
        std::env::var("FIG4B_OUT").unwrap_or_else(|_| "results/fig4b_pruning.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, &json).expect("write fig4b_pruning.json");
    eprintln!("# wrote {out}");
    print!("{json}");
}
