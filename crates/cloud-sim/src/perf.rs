//! Latency model for Query-as-a-Service systems.
//!
//! The user of a QaaS system cannot choose resources; the paper observes
//! (§4.2) that both BigQuery and Athena "scale up the amount of resources
//! to the number of row groups in the input; their per-query execution time
//! is essentially constant". We model that as:
//!
//! ```text
//! wall = startup + cpu_work / min(slots_cap, row_groups)
//! ```
//!
//! where `cpu_work` is the *measured* CPU seconds our local engine spent on
//! the query (scaled by a per-system efficiency factor, calibrated from the
//! Figure 4a gaps), `row_groups` is the parallelism granularity of the
//! Parquet-like input, and `startup` is the observed service floor
//! (BigQuery answers trivial queries in ~1–2 s, Athena in ~3–5 s).

/// A QaaS latency profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QaasProfile {
    /// System name.
    pub name: &'static str,
    /// Fixed startup/queueing floor in seconds.
    pub startup_seconds: f64,
    /// Maximum parallel slots the service throws at one query.
    pub max_slots: usize,
    /// Multiplier on our engine's measured CPU time (≥ 0; how much
    /// slower/faster the real system's executor is than our local one for
    /// the same logical work — calibrated against Figure 4a).
    pub cpu_factor: f64,
}

impl QaasProfile {
    /// BigQuery profile (fast floor, effectively unbounded slots).
    pub fn bigquery() -> QaasProfile {
        QaasProfile {
            name: "BigQuery",
            startup_seconds: 1.5,
            max_slots: 2000,
            cpu_factor: 1.0,
        }
    }

    /// BigQuery reading external (federated) tables — the paper measures
    /// roughly 2× slower than with pre-loaded data.
    pub fn bigquery_external() -> QaasProfile {
        QaasProfile {
            name: "BigQuery (external)",
            startup_seconds: 2.0,
            max_slots: 2000,
            cpu_factor: 2.0,
        }
    }

    /// Athena v2 profile (higher floor, slower executor).
    pub fn athena() -> QaasProfile {
        QaasProfile {
            name: "Athena v2",
            startup_seconds: 3.5,
            max_slots: 500,
            cpu_factor: 2.5,
        }
    }

    /// Athena v1 profile (the paper: all queries run slower than in v2,
    /// with computationally complex queries much slower).
    pub fn athena_v1() -> QaasProfile {
        QaasProfile {
            name: "Athena v1",
            startup_seconds: 4.5,
            max_slots: 500,
            cpu_factor: 5.0,
        }
    }

    /// Simulated wall-clock seconds for a query whose local execution
    /// measured `cpu_seconds` of work over `row_groups` partitions.
    pub fn wall_seconds(&self, cpu_seconds: f64, row_groups: usize) -> f64 {
        let parallelism = self.max_slots.min(row_groups.max(1)) as f64;
        self.startup_seconds + self.cpu_factor * cpu_seconds / parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_floor_dominates_small_queries() {
        let bq = QaasProfile::bigquery();
        let w = bq.wall_seconds(0.001, 1);
        assert!((w - bq.startup_seconds).abs() < 0.01);
    }

    #[test]
    fn plateau_with_row_groups() {
        // Once work is spread over all row groups, doubling data (and thus
        // doubling both cpu and groups) keeps wall time constant.
        let bq = QaasProfile::bigquery();
        let w1 = bq.wall_seconds(64.0, 64);
        let w2 = bq.wall_seconds(128.0, 128);
        assert!((w1 - w2).abs() < 1e-9);
    }

    #[test]
    fn single_row_group_is_serial() {
        let bq = QaasProfile::bigquery();
        let w = bq.wall_seconds(10.0, 1);
        assert!((w - (bq.startup_seconds + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn ordering_of_profiles() {
        // For the same work, BigQuery < Athena v2 < Athena v1 (paper Fig 1
        // and the v1/v2 comparison in §4.2).
        let work = 50.0;
        let groups = 128;
        let bq = QaasProfile::bigquery().wall_seconds(work, groups);
        let bq_ext = QaasProfile::bigquery_external().wall_seconds(work, groups);
        let a2 = QaasProfile::athena().wall_seconds(work, groups);
        let a1 = QaasProfile::athena_v1().wall_seconds(work, groups);
        assert!(bq < bq_ext);
        assert!(bq_ext < a2);
        assert!(a2 < a1);
    }

    #[test]
    fn slot_cap_limits_parallelism() {
        let mut p = QaasProfile::bigquery();
        p.max_slots = 10;
        let capped = p.wall_seconds(100.0, 1000);
        assert!((capped - (p.startup_seconds + 10.0)).abs() < 1e-9);
    }
}

/// Scalability profile of a self-managed engine, based on the Universal
/// Scalability Law:
///
/// ```text
/// wall = overhead + cpu·cpu_factor · (1 + σ·(p−1) + κ·p·(p−1)) / p
/// ```
///
/// `σ` models serialization (Amdahl) and `κ` crosstalk (coherence/lock
/// traffic). A non-zero `κ` produces a *retrograde* region — throughput
/// decreasing beyond an optimal core count — which is exactly the behaviour
/// the paper reports for RDataFrame on large multi-core machines (§4.1,
/// \[4\], \[28\]) and, milder, for Presto.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelfManagedProfile {
    /// System name.
    pub name: &'static str,
    /// Fixed per-query overhead in seconds (JVM warmup, cluster
    /// management, job scheduling).
    pub overhead_seconds: f64,
    /// Multiplier on our engine's measured CPU seconds.
    pub cpu_factor: f64,
    /// Serialization fraction σ.
    pub sigma: f64,
    /// Crosstalk coefficient κ.
    pub kappa: f64,
}

impl SelfManagedProfile {
    /// PrestoDB profile: JVM startup, decent scalability with a mild
    /// serial fraction (the paper: "sub-optimal scalability on large
    /// multi-core machines", but better than RDataFrame's).
    pub fn presto() -> SelfManagedProfile {
        SelfManagedProfile {
            name: "Presto",
            overhead_seconds: 2.5,
            cpu_factor: 1.8,
            sigma: 0.03,
            kappa: 0.0002,
        }
    }

    /// Rumble profile: Spark cluster management dominates small runs
    /// ("super-linear speed-up compared to the smallest instance size due
    /// to the decreasing relative significance of the overhead of cluster
    /// management") — interpretation cost is real in our FLWOR engine, so
    /// `cpu_factor` stays moderate.
    pub fn rumble() -> SelfManagedProfile {
        SelfManagedProfile {
            name: "Rumble",
            overhead_seconds: 30.0,
            cpu_factor: 2.0,
            sigma: 0.05,
            kappa: 0.0004,
        }
    }

    /// ROOT 6.22 RDataFrame: fastest per-core executor (compiled C++ over
    /// raw columns) but a large κ from the global lock in the fill path —
    /// the documented contention defect.
    pub fn rdataframe_v622() -> SelfManagedProfile {
        SelfManagedProfile {
            name: "RDataFrame (v6.22)",
            overhead_seconds: 0.5,
            cpu_factor: 0.7,
            sigma: 0.02,
            kappa: 0.004,
        }
    }

    /// The development version with the contention fix applied ("the
    /// current development version shows a better behavior but scalability
    /// is still far from ideal").
    pub fn rdataframe_dev() -> SelfManagedProfile {
        SelfManagedProfile {
            name: "RDataFrame (dev)",
            overhead_seconds: 0.5,
            cpu_factor: 0.7,
            sigma: 0.02,
            kappa: 0.0008,
        }
    }

    /// Simulated wall seconds on `instance` for a query measuring
    /// `cpu_seconds` locally over `row_groups` partitions.
    pub fn wall_seconds(
        &self,
        cpu_seconds: f64,
        instance: &crate::instances::InstanceType,
        row_groups: usize,
    ) -> f64 {
        let p = instance.vcpus.min(row_groups.max(1)) as f64;
        let work = cpu_seconds * self.cpu_factor;
        self.overhead_seconds
            + work * (1.0 + self.sigma * (p - 1.0) + self.kappa * p * (p - 1.0)) / p
    }

    /// The core count at which this profile's wall time is minimal for a
    /// fixed amount of work (the USL optimum `sqrt((1−σ)/κ)`).
    pub fn optimal_parallelism(&self) -> f64 {
        if self.kappa == 0.0 {
            f64::INFINITY
        } else {
            ((1.0 - self.sigma) / self.kappa).sqrt()
        }
    }
}

#[cfg(test)]
mod usl_tests {
    use super::*;
    use crate::instances::M5D_CATALOG;

    #[test]
    fn rdataframe_has_retrograde_region() {
        let p = SelfManagedProfile::rdataframe_v622();
        let walls: Vec<f64> = M5D_CATALOG
            .iter()
            .map(|i| p.wall_seconds(100.0, i, 10_000))
            .collect();
        // Improves at first …
        assert!(walls[1] < walls[0]);
        // … then degrades on the largest machines (the Fig-1 pattern).
        let best = walls.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(*walls.last().unwrap() > best * 1.2, "walls: {walls:?}");
        // Optimum sits in the tens of cores.
        let opt = p.optimal_parallelism();
        assert!((10.0..40.0).contains(&opt), "optimum {opt}");
    }

    #[test]
    fn presto_keeps_scaling() {
        let p = SelfManagedProfile::presto();
        let small = p.wall_seconds(100.0, &M5D_CATALOG[0], 10_000);
        let big = p.wall_seconds(100.0, M5D_CATALOG.last().unwrap(), 10_000);
        assert!(big < small);
    }

    #[test]
    fn rumble_overhead_dominates_small_instances() {
        let p = SelfManagedProfile::rumble();
        let w = p.wall_seconds(1.0, &M5D_CATALOG[0], 128);
        assert!(w > 30.0);
        // Super-linear apparent speed-up: relative gain from 1× to 2×
        // exceeds 2 when overhead is the dominant term? No — overhead is
        // constant; but the *work* term halves, so the ratio of totals
        // approaches 1. Check the documented monotonicity instead.
        let w2 = p.wall_seconds(100.0, &M5D_CATALOG[1], 128);
        let w1 = p.wall_seconds(100.0, &M5D_CATALOG[0], 128);
        assert!(w2 < w1);
    }

    #[test]
    fn row_groups_cap_parallelism() {
        let p = SelfManagedProfile::presto();
        // With a single row group, bigger machines do not help.
        let w_small = p.wall_seconds(10.0, &M5D_CATALOG[0], 1);
        let w_big = p.wall_seconds(10.0, M5D_CATALOG.last().unwrap(), 1);
        assert!((w_small - w_big).abs() < 1e-9);
    }

    #[test]
    fn dev_version_scales_further_than_v622() {
        let old = SelfManagedProfile::rdataframe_v622();
        let new = SelfManagedProfile::rdataframe_dev();
        assert!(new.optimal_parallelism() > old.optimal_parallelism());
        let big = M5D_CATALOG.last().unwrap();
        assert!(new.wall_seconds(100.0, big, 10_000) < old.wall_seconds(100.0, big, 10_000));
    }
}
