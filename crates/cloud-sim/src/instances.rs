//! EC2 `m5d` instance catalog (paper §4.1).

/// One instance type.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstanceType {
    /// Type name, e.g. `m5d.4xlarge`.
    pub name: &'static str,
    /// Logical cores (vCPUs, incl. SMT).
    pub vcpus: usize,
    /// Real (physical) CPU cores.
    pub cores: usize,
    /// Main memory in GiB.
    pub mem_gib: usize,
    /// On-demand price in $/hour (eu-west-1, as in the paper: the
    /// 24xlarge costs 6.048 $/h; all sizes are proportional).
    pub price_per_hour: f64,
}

impl InstanceType {
    /// Price per second.
    pub fn price_per_second(&self) -> f64 {
        self.price_per_hour / 3600.0
    }
}

const BASE_PRICE_PER_XLARGE: f64 = 6.048 / 24.0;

macro_rules! m5d {
    ($name:literal, $x:expr) => {
        InstanceType {
            name: $name,
            vcpus: 4 * $x,
            cores: 2 * $x,
            mem_gib: 16 * $x,
            price_per_hour: BASE_PRICE_PER_XLARGE * $x as f64,
        }
    };
}

/// The `m5d` series from xlarge to 24xlarge (the sizes the paper sweeps).
pub const M5D_CATALOG: &[InstanceType] = &[
    m5d!("m5d.xlarge", 1),
    m5d!("m5d.2xlarge", 2),
    m5d!("m5d.4xlarge", 4),
    m5d!("m5d.8xlarge", 8),
    m5d!("m5d.12xlarge", 12),
    m5d!("m5d.16xlarge", 16),
    m5d!("m5d.24xlarge", 24),
];

/// Looks an instance up by name.
pub fn by_name(name: &str) -> Option<&'static InstanceType> {
    M5D_CATALOG.iter().find(|i| i.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_anchor() {
        let big = by_name("m5d.24xlarge").unwrap();
        assert_eq!(big.cores, 48);
        assert_eq!(big.vcpus, 96);
        assert_eq!(big.mem_gib, 384);
        assert!((big.price_per_hour - 6.048).abs() < 1e-9);
    }

    #[test]
    fn prices_proportional() {
        let small = by_name("m5d.xlarge").unwrap();
        let big = by_name("m5d.24xlarge").unwrap();
        assert!((big.price_per_hour / small.price_per_hour - 24.0).abs() < 1e-9);
        assert!((small.price_per_second() * 3600.0 - small.price_per_hour).abs() < 1e-12);
    }

    #[test]
    fn catalog_sorted_and_unique() {
        for w in M5D_CATALOG.windows(2) {
            assert!(w[0].cores < w[1].cores);
            assert_ne!(w[0].name, w[1].name);
        }
        assert_eq!(M5D_CATALOG.len(), 7);
    }
}
