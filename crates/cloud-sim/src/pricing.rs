//! Query pricing models (paper §4.1).

use nf2_columnar::ScanStats;

use crate::instances::InstanceType;

/// Price per terabyte scanned, charged identically by BigQuery and Athena
/// (the *definition* of "scanned" differs — see below).
pub const USD_PER_TB: f64 = 5.0;

/// BigQuery's minimum billed volume per query (10 MB).
pub const BIGQUERY_MIN_BYTES: u64 = 10 * 1024 * 1024;

const TB: f64 = 1e12;

/// BigQuery cost: the **logical uncompressed size** of every referenced
/// column — entries × the 8-byte logical width for numbers, regardless of
/// the 4-byte physical floats in the files (paper: "the system only exposes
/// double-precision floating-point numbers … even if the underlying Parquet
/// files actually store single-precision").
pub fn bigquery_cost_usd(scan: &ScanStats) -> f64 {
    let billed = scan.logical_bytes.max(BIGQUERY_MIN_BYTES);
    billed as f64 / TB * USD_PER_TB
}

/// Athena cost: the bytes actually read from storage (compressed), which —
/// because Athena cannot push projections into structs — includes every
/// leaf of every struct the query touches.
pub fn athena_cost_usd(scan: &ScanStats) -> f64 {
    scan.bytes_scanned as f64 / TB * USD_PER_TB
}

/// BigQuery cost for a query that may have been served from the 24-hour
/// result cache: cached results are billed **zero** — not even the 10 MB
/// minimum — because no slot runs and no bytes are (logically) processed.
/// The paper disabled this cache for its fair comparison (§4.1); the
/// serving layer's `cache: off` knob reproduces that configuration, in
/// which this function degenerates to [`bigquery_cost_usd`].
pub fn bigquery_cost_usd_cached(scan: &ScanStats, from_result_cache: bool) -> f64 {
    if from_result_cache {
        0.0
    } else {
        bigquery_cost_usd(scan)
    }
}

/// Athena cost with result-cache awareness: Athena's query result reuse
/// serves repeats from S3 result objects and bills nothing, since billing
/// is purely per byte scanned and a reused result scans zero bytes.
pub fn athena_cost_usd_cached(scan: &ScanStats, from_result_cache: bool) -> f64 {
    if from_result_cache {
        0.0
    } else {
        athena_cost_usd(scan)
    }
}

/// Self-managed cost: wall seconds × the instance's per-second price.
pub fn self_managed_cost_usd(wall_seconds: f64, instance: &InstanceType) -> f64 {
    wall_seconds * instance.price_per_second()
}

/// Spot-instance cost: the paper notes spot can reduce cost "sometimes by
/// up to 5×"; `discount` defaults to that bound via [`spot_cost_usd`].
pub fn spot_cost_usd(wall_seconds: f64, instance: &InstanceType, discount: f64) -> f64 {
    assert!(discount >= 1.0, "discount is a division factor ≥ 1");
    self_managed_cost_usd(wall_seconds, instance) / discount
}

/// Normalizes an accumulated serving bill to **cost per 1 000 answered
/// queries** — the unit the serving study reports so QaaS bills (per
/// byte) and self-managed bills (per wall-second of rented instance)
/// land on one comparable axis. Zero answered queries price at zero
/// rather than dividing by zero: an idle deployment's marginal serving
/// cost is undefined, and the curves treat it as free.
pub fn cost_per_1k_queries(total_cost_usd: f64, answered_queries: u64) -> f64 {
    if answered_queries == 0 {
        0.0
    } else {
        total_cost_usd * 1000.0 / answered_queries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::by_name;

    fn scan(logical: u64, scanned: u64) -> ScanStats {
        ScanStats {
            logical_bytes: logical,
            bytes_scanned: scanned,
            ..Default::default()
        }
    }

    #[test]
    fn bigquery_charges_logical_bytes() {
        // 1 TB logical → 5 $.
        let c = bigquery_cost_usd(&scan(1_000_000_000_000, 1));
        assert!((c - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bigquery_minimum_charge() {
        let tiny = bigquery_cost_usd(&scan(1, 1));
        let expect = BIGQUERY_MIN_BYTES as f64 / 1e12 * 5.0;
        assert!((tiny - expect).abs() < 1e-15);
    }

    #[test]
    fn cached_results_are_free_even_below_minimum() {
        let s = scan(1_000_000_000_000, 2_000_000_000_000);
        assert_eq!(bigquery_cost_usd_cached(&s, true), 0.0);
        assert_eq!(athena_cost_usd_cached(&s, true), 0.0);
        // Cache off (the paper's fairness setting): identical to the
        // plain models, minimum charge included.
        let tiny = scan(1, 1);
        assert_eq!(
            bigquery_cost_usd_cached(&tiny, false),
            bigquery_cost_usd(&tiny)
        );
        assert!(bigquery_cost_usd_cached(&tiny, false) > 0.0);
        assert_eq!(athena_cost_usd_cached(&s, false), athena_cost_usd(&s));
    }

    #[test]
    fn athena_charges_compressed_bytes() {
        let c = athena_cost_usd(&scan(999, 2_000_000_000_000));
        assert!((c - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pricing_gap_mirrors_pushdown_gap() {
        // The paper's Q1 situation: Athena reads the whole MET struct
        // (compressed ≈ physical), BigQuery bills one logical column.
        // With 8 B logical vs 7 columns × 4 B physical, Athena is pricier.
        let n = 54_000_000u64;
        let bq = bigquery_cost_usd(&scan(n * 8, 0));
        let at = athena_cost_usd(&scan(0, n * 4 * 7));
        assert!(at > bq);
    }

    #[test]
    fn self_managed_scales_with_time_and_size() {
        let small = by_name("m5d.xlarge").unwrap();
        let big = by_name("m5d.24xlarge").unwrap();
        let c_small = self_managed_cost_usd(100.0, small);
        let c_big = self_managed_cost_usd(100.0, big);
        assert!((c_big / c_small - 24.0).abs() < 1e-9);
        assert!((self_managed_cost_usd(3600.0, big) - 6.048).abs() < 1e-9);
    }

    #[test]
    fn cost_per_1k_normalizes_and_handles_idle() {
        assert_eq!(cost_per_1k_queries(0.0, 0), 0.0);
        assert_eq!(cost_per_1k_queries(5.0, 0), 0.0);
        // 2 $ over 500 queries → 4 $ per 1k.
        assert!((cost_per_1k_queries(2.0, 500) - 4.0).abs() < 1e-12);
        assert!((cost_per_1k_queries(1.0, 1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spot_discount() {
        let i = by_name("m5d.8xlarge").unwrap();
        let on_demand = self_managed_cost_usd(60.0, i);
        assert!((spot_cost_usd(60.0, i, 5.0) - on_demand / 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn spot_rejects_negative_discount() {
        let i = by_name("m5d.xlarge").unwrap();
        spot_cost_usd(1.0, i, 0.5);
    }
}
