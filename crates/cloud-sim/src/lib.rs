//! # cloud-sim
//!
//! The cloud deployment and pricing simulator behind the paper's monetary
//! cost analysis (§4.1, Figure 1).
//!
//! The paper evaluates two deployment models:
//!
//! * **Self-managed** (Presto, Rumble, RDataFrame on EC2 `m5d` instances):
//!   query cost = wall-clock seconds × the instance's per-second price.
//!   [`instances`] provides the `m5d` catalog (xlarge…24xlarge, prices
//!   proportional to 6.048 $/h for the 24xlarge in eu-west-1, §4.1), plus
//!   the paper's note that spot instances can reduce cost by up to 5×.
//!
//! * **Query-as-a-Service** (BigQuery, Athena): compute is free, the query
//!   is billed at 5 $/TB *scanned* — but the two systems define "scanned"
//!   differently, which the paper identifies as a decisive cost factor:
//!   BigQuery bills the **uncompressed logical size** of every referenced
//!   column, with every float priced as 8 bytes even when the file stores
//!   4-byte floats; Athena bills the **bytes actually read from storage**
//!   (compressed), but its missing struct-projection pushdown forces it to
//!   read (and bill) every leaf of a touched struct. Both models consume
//!   the [`nf2_columnar::ScanStats`] produced by the engines.
//!
//! [`perf`] adds the latency model for QaaS systems (whose resources the
//! user cannot see): a startup floor plus work spread over a slot pool
//! capped by row-group granularity — reproducing Figure 2's plateau and
//! the "essentially constant" QaaS execution times.

pub mod instances;
pub mod perf;
pub mod pricing;

pub use instances::{InstanceType, M5D_CATALOG};
pub use perf::{QaasProfile, SelfManagedProfile};
pub use pricing::{
    athena_cost_usd, athena_cost_usd_cached, bigquery_cost_usd, bigquery_cost_usd_cached,
    cost_per_1k_queries, self_managed_cost_usd, spot_cost_usd,
};
