//! Scan statistics: the I/O accounting behind Figure 4b and the QaaS
//! pricing models.

use crate::cache::{ChunkCache, ChunkKey};
use crate::error::ColumnarError;
use crate::fault::FaultInjector;
use crate::project::{Projection, PushdownCapability};
use crate::rowgroup::RowGroup;
use crate::schema::LeafInfo;
use crate::table::Table;

/// Byte- and row-level accounting for one table scan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScanStats {
    /// Rows (events) visited.
    pub rows: u64,
    /// Leaf columns physically read.
    pub columns_read: u64,
    /// Compressed bytes physically read — Athena's pricing basis and the
    /// natural "bytes scanned" metric for self-managed engines.
    pub bytes_scanned: u64,
    /// Uncompressed bytes of the physically read columns.
    pub uncompressed_bytes: u64,
    /// BigQuery-style logical bytes of the *logically referenced* columns
    /// (every number priced at its 8-byte logical width, regardless of
    /// physical precision or compression) — paper §4.1.
    pub logical_bytes: u64,
    /// Ideal compressed bytes: what a perfect reader (individual-leaf
    /// pushdown) would have read. Figure 4b's first ideal line.
    pub ideal_compressed_bytes: u64,
    /// Ideal uncompressed bytes: entries × physical width of the logically
    /// needed leaves. Figure 4b's second ideal line.
    pub ideal_uncompressed_bytes: u64,
    /// Of `bytes_scanned`, how many were served by the buffer pool
    /// ([`crate::cache::ChunkCache`]) instead of storage. Billing metrics
    /// (`bytes_scanned`, `logical_bytes`) are *not* reduced by pool hits —
    /// QaaS providers bill the logical scan regardless of where the bytes
    /// came from — so `bytes_from_cache` is a separate, subtractive view:
    /// physical reads = `bytes_scanned - bytes_from_cache`. Zero when no
    /// cache is attached, keeping the cache-off path byte-identical.
    pub bytes_from_cache: u64,
    /// Buffer-pool chunk hits during this scan.
    pub cache_hits: u64,
    /// Buffer-pool chunk misses (storage reads) during this scan.
    pub cache_misses: u64,
    /// Buffer-pool evictions this scan's admissions caused.
    pub cache_evictions: u64,
}

impl ScanStats {
    /// Accumulates another scan's stats (e.g. across row groups or
    /// sub-queries).
    pub fn merge(&mut self, other: &ScanStats) {
        self.rows += other.rows;
        self.columns_read += other.columns_read;
        self.bytes_scanned += other.bytes_scanned;
        self.uncompressed_bytes += other.uncompressed_bytes;
        self.logical_bytes += other.logical_bytes;
        self.ideal_compressed_bytes += other.ideal_compressed_bytes;
        self.ideal_uncompressed_bytes += other.ideal_uncompressed_bytes;
        self.bytes_from_cache += other.bytes_from_cache;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
    }

    /// Bytes physically read from storage: `bytes_scanned` minus the part
    /// the buffer pool served.
    pub fn bytes_from_storage(&self) -> u64 {
        self.bytes_scanned - self.bytes_from_cache
    }

    /// Bytes scanned per row — the y-axis of Figure 4b.
    pub fn bytes_per_row(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.bytes_scanned as f64 / self.rows as f64
        }
    }
}

/// A buffer pool attached to a scan: the cache plus the owning table's
/// fingerprint (which scopes the cache keys).
#[derive(Clone, Copy)]
pub struct ScanCache<'c> {
    /// The shared chunk cache.
    pub cache: &'c ChunkCache,
    /// [`Table::fingerprint`] of the table being scanned.
    pub table_fingerprint: u64,
}

/// A fault injector attached to a scan: the injector plus the identity of
/// the table being scanned (the injector's decisions are keyed on the
/// fingerprint; the name is carried for error context).
#[derive(Clone, Copy)]
pub struct ScanFaults<'f> {
    /// The shared chaos-layer injector.
    pub injector: &'f FaultInjector,
    /// Name of the table being scanned (error context).
    pub table_name: &'f str,
    /// [`Table::fingerprint`] of the table being scanned.
    pub table_fingerprint: u64,
}

/// Accounts one row group's scan into `stats`, routing each physically
/// read chunk through the buffer pool when one is attached and through the
/// fault injector when one is attached.
///
/// This is the single accounting primitive every engine uses (directly or
/// via [`scan_stats_cached`]), so billing bytes are computed identically
/// with and without a cache; only the `cache_*`/`bytes_from_cache` fields
/// differ. A faulted chunk read aborts the group's cache admissions and
/// surfaces as [`ColumnarError::Fault`]; with `faults: None` the function
/// is infallible in practice.
pub fn account_group_scan(
    stats: &mut ScanStats,
    group: &RowGroup,
    group_idx: usize,
    read_leaves: &[&LeafInfo],
    logical_leaves: &[&LeafInfo],
    cache: Option<ScanCache<'_>>,
    faults: Option<ScanFaults<'_>>,
) -> Result<(), ColumnarError> {
    stats.rows += group.n_rows() as u64;
    stats.bytes_scanned += group.compressed_bytes(read_leaves) as u64;
    stats.uncompressed_bytes += group.uncompressed_bytes(read_leaves) as u64;
    stats.logical_bytes += group.logical_bytes(logical_leaves) as u64;
    stats.ideal_compressed_bytes += group.compressed_bytes(logical_leaves) as u64;
    stats.ideal_uncompressed_bytes += group.uncompressed_bytes(logical_leaves) as u64;
    if cache.is_none() && faults.is_none() {
        return Ok(());
    }
    for leaf in read_leaves {
        if let Some(fi) = faults {
            fi.injector.on_chunk_read(
                fi.table_name,
                fi.table_fingerprint,
                group_idx as u32,
                &leaf.path,
            )?;
        }
        let Some(sc) = cache else { continue };
        let Ok(chunk) = group.column(&leaf.path) else {
            continue;
        };
        let key = ChunkKey {
            table: sc.table_fingerprint,
            group: group_idx as u32,
            leaf: leaf.path.clone(),
        };
        // Chunks are in-memory already; "loading" is sharing a clone of
        // the sealed chunk, which stands in for the storage read.
        let admission = sc.cache.admit(&key, || std::sync::Arc::new(chunk.clone()));
        if admission.hit {
            stats.cache_hits += 1;
            stats.bytes_from_cache += chunk.compressed_bytes as u64;
        } else {
            stats.cache_misses += 1;
            stats.cache_evictions += admission.evicted;
        }
    }
    Ok(())
}

/// Computes the scan statistics a reader with capability `cap` incurs for
/// `projection` over `table`.
pub fn scan_stats(
    table: &Table,
    projection: &Projection,
    cap: PushdownCapability,
) -> Result<ScanStats, ColumnarError> {
    scan_stats_faulted(table, projection, cap, None, None)
}

/// [`scan_stats`] with an optional buffer pool in front of the physical
/// chunk reads. With `cache: None` the result is bit-identical to
/// [`scan_stats`] (all cache counters zero).
pub fn scan_stats_cached(
    table: &Table,
    projection: &Projection,
    cap: PushdownCapability,
    cache: Option<ScanCache<'_>>,
) -> Result<ScanStats, ColumnarError> {
    scan_stats_faulted(table, projection, cap, cache, None)
}

/// [`scan_stats_faulted`] under a tracing context: wraps the whole scan
/// in a [`obs::Stage::Scan`] span carrying the row, byte and cache
/// counters. With a disabled context this is exactly
/// [`scan_stats_faulted`] (the span machinery is a no-op).
pub fn scan_stats_traced(
    table: &Table,
    projection: &Projection,
    cap: PushdownCapability,
    cache: Option<ScanCache<'_>>,
    faults: Option<ScanFaults<'_>>,
    trace: &obs::TraceCtx,
) -> Result<ScanStats, ColumnarError> {
    scan_stats_guarded(
        table,
        projection,
        cap,
        cache,
        faults,
        trace,
        &obs::CancelToken::none(),
    )
}

/// The full-featured scan: [`scan_stats_traced`] plus a cooperative
/// [`obs::CancelToken`] checked once per row group *before* the group is
/// accounted, so an expired deadline or explicit cancel stops the scan
/// within one row group of work and no bytes of the aborted group are
/// billed. With a disabled token this is exactly [`scan_stats_traced`].
#[allow(clippy::too_many_arguments)]
pub fn scan_stats_guarded(
    table: &Table,
    projection: &Projection,
    cap: PushdownCapability,
    cache: Option<ScanCache<'_>>,
    faults: Option<ScanFaults<'_>>,
    trace: &obs::TraceCtx,
    cancel: &obs::CancelToken,
) -> Result<ScanStats, ColumnarError> {
    let mut span = trace.span_with(obs::Stage::Scan, || table.name().to_string());
    let read_leaves = projection.resolve(table.schema(), cap)?;
    let logical_leaves = projection.logical_leaves(table.schema())?;
    let mut stats = ScanStats {
        columns_read: read_leaves.len() as u64,
        ..ScanStats::default()
    };
    for (idx, g) in table.row_groups().iter().enumerate() {
        cancel.check(obs::Stage::Scan, stats.rows)?;
        account_group_scan(
            &mut stats,
            g,
            idx,
            &read_leaves,
            &logical_leaves,
            cache,
            faults,
        )?;
    }
    if span.is_enabled() {
        span.add_rows_in(stats.rows);
        span.add_rows_out(stats.rows);
        span.add_bytes(stats.bytes_scanned);
        if stats.cache_hits > 0 || stats.cache_misses > 0 {
            span.set_label(format!(
                "{} cache_hits={} cache_misses={}",
                table.name(),
                stats.cache_hits,
                stats.cache_misses
            ));
        }
    }
    Ok(stats)
}

/// [`scan_stats_cached`] with an optional fault injector on the physical
/// chunk reads. With `faults: None` the result is bit-identical to
/// [`scan_stats_cached`].
pub fn scan_stats_faulted(
    table: &Table,
    projection: &Projection,
    cap: PushdownCapability,
    cache: Option<ScanCache<'_>>,
    faults: Option<ScanFaults<'_>>,
) -> Result<ScanStats, ColumnarError> {
    scan_stats_guarded(
        table,
        projection,
        cap,
        cache,
        faults,
        &obs::TraceCtx::default(),
        &obs::CancelToken::none(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::table::TableBuilder;
    use nested_value::Value;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new(
                "MET",
                DataType::Struct(vec![
                    Field::new("pt", DataType::f32()),
                    Field::new("phi", DataType::f32()),
                ]),
            ),
            Field::new(
                "Jet",
                DataType::particle_list(vec![
                    Field::new("pt", DataType::f32()),
                    Field::new("eta", DataType::f32()),
                ]),
            ),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema, 100);
        for i in 0..100 {
            let jets = Value::array(
                (0..(i % 4))
                    .map(|j| {
                        Value::struct_from(vec![
                            ("pt", Value::Float(30.0 + j as f64)),
                            ("eta", Value::Float(0.1 * j as f64)),
                        ])
                    })
                    .collect(),
            );
            b.append(&Value::struct_from(vec![
                (
                    "MET",
                    Value::struct_from(vec![
                        ("pt", Value::Float(i as f64)),
                        ("phi", Value::Float(0.5)),
                    ]),
                ),
                ("Jet", jets),
            ]))
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn pushdown_reduces_bytes() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let ideal = scan_stats(&t, &p, PushdownCapability::IndividualLeaves).unwrap();
        let coarse = scan_stats(&t, &p, PushdownCapability::WholeStructs).unwrap();
        let none = scan_stats(&t, &p, PushdownCapability::None).unwrap();
        assert!(ideal.bytes_scanned < coarse.bytes_scanned);
        assert!(coarse.bytes_scanned < none.bytes_scanned);
        assert_eq!(ideal.columns_read, 1);
        assert_eq!(coarse.columns_read, 2); // MET.pt + MET.phi
        assert_eq!(none.columns_read, 4);
        // Ideal bytes are capability-independent.
        assert_eq!(ideal.ideal_compressed_bytes, none.ideal_compressed_bytes);
    }

    #[test]
    fn logical_bytes_use_8_byte_floats() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let s = scan_stats(&t, &p, PushdownCapability::IndividualLeaves).unwrap();
        // 100 entries × 8 B logical vs 4 B physical.
        assert_eq!(s.logical_bytes, 800);
        assert_eq!(s.ideal_uncompressed_bytes, 400);
        assert_eq!(s.rows, 100);
    }

    #[test]
    fn tripped_token_aborts_scan_before_first_group() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let token = obs::CancelToken::new();
        token.cancel();
        let err = scan_stats_guarded(
            &t,
            &p,
            PushdownCapability::IndividualLeaves,
            None,
            None,
            &obs::TraceCtx::default(),
            &token,
        )
        .unwrap_err();
        let c = err.cancelled().copied().expect("typed cancellation");
        assert_eq!(c.stage, obs::Stage::Scan);
        assert_eq!(c.rows_processed, 0);
        assert_eq!(c.reason, obs::CancelReason::Explicit);
    }

    #[test]
    fn disabled_token_scan_is_byte_identical() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let plain = scan_stats(&t, &p, PushdownCapability::IndividualLeaves).unwrap();
        let guarded = scan_stats_guarded(
            &t,
            &p,
            PushdownCapability::IndividualLeaves,
            None,
            None,
            &obs::TraceCtx::default(),
            &obs::CancelToken::none(),
        )
        .unwrap();
        assert_eq!(plain, guarded);
    }

    #[test]
    fn merge_accumulates() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let s = scan_stats(&t, &p, PushdownCapability::IndividualLeaves).unwrap();
        let mut twice = s;
        twice.merge(&s);
        assert_eq!(twice.rows, 200);
        assert_eq!(twice.bytes_scanned, 2 * s.bytes_scanned);
        assert!((s.bytes_per_row() - s.bytes_scanned as f64 / 100.0).abs() < 1e-12);
    }
}

/// Engine-level execution accounting shared by all engines in the
/// workspace (placed here because every engine executes over this
/// substrate and `core` compares them uniformly).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// End-to-end wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// Total busy CPU seconds summed over workers (the paper's Figure 4a
    /// metric: "seconds any logical core spends doing work").
    pub cpu_seconds: f64,
    /// I/O accounting of the scan.
    pub scan: ScanStats,
    /// Number of worker threads that participated.
    pub threads_used: usize,
    /// Row groups skipped by zone-map (min/max) pruning before any byte
    /// was read.
    pub row_groups_skipped: u64,
}
