//! Scan statistics: the I/O accounting behind Figure 4b and the QaaS
//! pricing models.

use crate::cache::{ChunkCache, ChunkKey};
use crate::error::ColumnarError;
use crate::fault::FaultInjector;
use crate::project::{Projection, PushdownCapability};
use crate::rowgroup::RowGroup;
use crate::schema::LeafInfo;
use crate::select::ScalarPredicate;
use crate::table::Table;

/// Byte- and row-level accounting for one table scan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScanStats {
    /// Rows (events) visited.
    pub rows: u64,
    /// Leaf columns physically read.
    pub columns_read: u64,
    /// Compressed bytes physically read — Athena's pricing basis and the
    /// natural "bytes scanned" metric for self-managed engines.
    pub bytes_scanned: u64,
    /// Uncompressed bytes of the physically read columns.
    pub uncompressed_bytes: u64,
    /// BigQuery-style logical bytes of the *logically referenced* columns
    /// (every number priced at its 8-byte logical width, regardless of
    /// physical precision or compression) — paper §4.1.
    pub logical_bytes: u64,
    /// Ideal compressed bytes: what a perfect reader (individual-leaf
    /// pushdown) would have read. Figure 4b's first ideal line.
    pub ideal_compressed_bytes: u64,
    /// Ideal uncompressed bytes: entries × physical width of the logically
    /// needed leaves. Figure 4b's second ideal line.
    pub ideal_uncompressed_bytes: u64,
    /// Of `bytes_scanned`, how many were served by the buffer pool
    /// ([`crate::cache::ChunkCache`]) instead of storage. Billing metrics
    /// (`bytes_scanned`, `logical_bytes`) are *not* reduced by pool hits —
    /// QaaS providers bill the logical scan regardless of where the bytes
    /// came from — so `bytes_from_cache` is a separate, subtractive view:
    /// physical reads = `bytes_scanned - bytes_from_cache`. Zero when no
    /// cache is attached, keeping the cache-off path byte-identical.
    pub bytes_from_cache: u64,
    /// Buffer-pool chunk hits during this scan.
    pub cache_hits: u64,
    /// Buffer-pool chunk misses (storage reads) during this scan.
    pub cache_misses: u64,
    /// Buffer-pool evictions this scan's admissions caused.
    pub cache_evictions: u64,
    /// Row groups skipped by zone-map pruning before any byte was read.
    pub groups_pruned: u64,
    /// Compressed bytes the pruned groups would have cost under the same
    /// projection. Pruned groups contribute to *no* other counter (no
    /// rows, no billing bytes — Athena-style engines do not charge for
    /// skipped groups), so `bytes_scanned + bytes_pruned` with pruning on
    /// equals `bytes_scanned` with pruning off. That conservation law is
    /// what the invariant tests pin across worker counts.
    pub bytes_pruned: u64,
}

impl ScanStats {
    /// Accumulates another scan's stats (e.g. across row groups or
    /// sub-queries).
    pub fn merge(&mut self, other: &ScanStats) {
        self.rows += other.rows;
        self.columns_read += other.columns_read;
        self.bytes_scanned += other.bytes_scanned;
        self.uncompressed_bytes += other.uncompressed_bytes;
        self.logical_bytes += other.logical_bytes;
        self.ideal_compressed_bytes += other.ideal_compressed_bytes;
        self.ideal_uncompressed_bytes += other.ideal_uncompressed_bytes;
        self.bytes_from_cache += other.bytes_from_cache;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.groups_pruned += other.groups_pruned;
        self.bytes_pruned += other.bytes_pruned;
    }

    /// Bytes physically read from storage: `bytes_scanned` minus the part
    /// the buffer pool served.
    pub fn bytes_from_storage(&self) -> u64 {
        self.bytes_scanned - self.bytes_from_cache
    }

    /// Bytes scanned per row — the y-axis of Figure 4b.
    pub fn bytes_per_row(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.bytes_scanned as f64 / self.rows as f64
        }
    }
}

/// A buffer pool attached to a scan: the cache plus the owning table's
/// fingerprint (which scopes the cache keys).
#[derive(Clone, Copy)]
pub struct ScanCache<'c> {
    /// The shared chunk cache.
    pub cache: &'c ChunkCache,
    /// [`Table::fingerprint`] of the table being scanned.
    pub table_fingerprint: u64,
}

/// A fault injector attached to a scan: the injector plus the identity of
/// the table being scanned (the injector's decisions are keyed on the
/// fingerprint; the name is carried for error context).
#[derive(Clone, Copy)]
pub struct ScanFaults<'f> {
    /// The shared chaos-layer injector.
    pub injector: &'f FaultInjector,
    /// Name of the table being scanned (error context).
    pub table_name: &'f str,
    /// [`Table::fingerprint`] of the table being scanned.
    pub table_fingerprint: u64,
}

impl ScanFaults<'_> {
    /// Probes every given leaf chunk of one row group through the
    /// injector — the **morsel-level fault surface**. A parallel executor
    /// re-reading a row group as a morsel calls this with the plan's read
    /// set; because injector decisions are pure functions of
    /// `(fingerprint, group, leaf)`, the fault schedule is identical to
    /// the serial scan pre-pass probing the same coordinates, which is
    /// what lets morsel-level recovery replay the exact faults the
    /// whole-query path would have seen. Panic faults unwind out of the
    /// probe, like a panicking decode kernel would.
    pub fn probe_group(
        &self,
        group_idx: u32,
        leaves: &[nested_value::Path],
    ) -> Result<(), crate::fault::ScanError> {
        for leaf in leaves {
            self.injector.on_chunk_read(
                self.table_name,
                self.table_fingerprint,
                group_idx,
                leaf,
            )?;
        }
        Ok(())
    }
}

/// Accounts one row group's scan into `stats`, routing each physically
/// read chunk through the buffer pool when one is attached and through the
/// fault injector when one is attached.
///
/// This is the single accounting primitive every engine uses (via
/// [`ScanRequest`]), so billing bytes are computed identically
/// with and without a cache; only the `cache_*`/`bytes_from_cache` fields
/// differ. A faulted chunk read aborts the group's cache admissions and
/// surfaces as [`ColumnarError::Fault`]; with `faults: None` the function
/// is infallible in practice.
pub fn account_group_scan(
    stats: &mut ScanStats,
    group: &RowGroup,
    group_idx: usize,
    read_leaves: &[&LeafInfo],
    logical_leaves: &[&LeafInfo],
    cache: Option<ScanCache<'_>>,
    faults: Option<ScanFaults<'_>>,
) -> Result<(), ColumnarError> {
    stats.rows += group.n_rows() as u64;
    stats.bytes_scanned += group.compressed_bytes(read_leaves) as u64;
    stats.uncompressed_bytes += group.uncompressed_bytes(read_leaves) as u64;
    stats.logical_bytes += group.logical_bytes(logical_leaves) as u64;
    stats.ideal_compressed_bytes += group.compressed_bytes(logical_leaves) as u64;
    stats.ideal_uncompressed_bytes += group.uncompressed_bytes(logical_leaves) as u64;
    if cache.is_none() && faults.is_none() {
        return Ok(());
    }
    for leaf in read_leaves {
        if let Some(fi) = faults {
            fi.injector.on_chunk_read(
                fi.table_name,
                fi.table_fingerprint,
                group_idx as u32,
                &leaf.path,
            )?;
        }
        let Some(sc) = cache else { continue };
        let Ok(chunk) = group.column(&leaf.path) else {
            continue;
        };
        let key = ChunkKey {
            table: sc.table_fingerprint,
            group: group_idx as u32,
            leaf: leaf.path.clone(),
        };
        // Chunks are in-memory already; "loading" is sharing a clone of
        // the sealed chunk, which stands in for the storage read.
        let admission = sc.cache.admit(&key, || std::sync::Arc::new(chunk.clone()));
        if admission.hit {
            stats.cache_hits += 1;
            stats.bytes_from_cache += chunk.compressed_bytes as u64;
        } else {
            stats.cache_misses += 1;
            stats.cache_evictions += admission.evicted;
        }
    }
    Ok(())
}

/// Accounts one *pruned* row group into `stats`: the group was proven
/// empty by its zone maps and skipped before decode, so it contributes
/// only `groups_pruned` and `bytes_pruned` — no rows, no billed bytes,
/// no cache or fault-injector traffic (the bytes were never read).
pub fn account_group_pruned(stats: &mut ScanStats, group: &RowGroup, read_leaves: &[&LeafInfo]) {
    stats.groups_pruned += 1;
    stats.bytes_pruned += group.compressed_bytes(read_leaves) as u64;
}

/// The outcome of a [`ScanRequest`]: scan statistics plus the pruning
/// decision, so the caller can drive its execution loop off the same mask
/// the billing used.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanRun {
    /// Byte/row accounting of the scan.
    pub stats: ScanStats,
    /// Per-row-group skip mask (`true` = pruned), present iff
    /// [`ScanRequest::prune`] was supplied. Execution must skip exactly
    /// these groups or billing and results disagree.
    pub skip: Option<Vec<bool>>,
}

/// A table scan, declaratively configured.
///
/// This is the single entry point for scan accounting (the former
/// `scan_stats*` free-function family is gone; every caller builds a
/// request).
///
/// ```
/// # use nf2_columnar::project::{Projection, PushdownCapability};
/// # use nf2_columnar::scan::ScanRequest;
/// # use nf2_columnar::schema::{DataType, Field, Schema};
/// # use nf2_columnar::table::TableBuilder;
/// # use nested_value::Value;
/// # let schema = Schema::new(vec![Field::new("x", DataType::f64())]).unwrap();
/// # let mut b = TableBuilder::new("t", schema, 64);
/// # b.append(&Value::struct_from(vec![("x", Value::Float(1.0))])).unwrap();
/// # let table = b.finish();
/// let projection = Projection::of(["x"]);
/// let run = ScanRequest::new(&table, &projection)
///     .capability(PushdownCapability::IndividualLeaves)
///     .run()
///     .unwrap();
/// assert_eq!(run.stats.rows, 1);
/// assert!(run.skip.is_none()); // no predicates, no pruning pass
/// ```
///
/// Optional attachments compose freely: a buffer pool ([`Self::cache`]),
/// a fault injector ([`Self::faults`]), a tracing context
/// ([`Self::trace`]), a cooperative cancel token ([`Self::cancel`]), and
/// zone-map pruning predicates ([`Self::prune`]). Every attachment left
/// off keeps the scan bit-identical to the bare form.
#[derive(Clone, Copy)]
pub struct ScanRequest<'a> {
    table: &'a Table,
    projection: &'a Projection,
    capability: PushdownCapability,
    cache: Option<ScanCache<'a>>,
    faults: Option<ScanFaults<'a>>,
    trace: Option<&'a obs::TraceCtx>,
    cancel: Option<&'a obs::CancelToken>,
    prune: Option<&'a [ScalarPredicate]>,
}

impl<'a> ScanRequest<'a> {
    /// A scan of `projection` over `table` with individual-leaf pushdown
    /// and no attachments.
    pub fn new(table: &'a Table, projection: &'a Projection) -> ScanRequest<'a> {
        ScanRequest {
            table,
            projection,
            capability: PushdownCapability::IndividualLeaves,
            cache: None,
            faults: None,
            trace: None,
            cancel: None,
            prune: None,
        }
    }

    /// Sets the reader's pushdown capability (default: individual leaves).
    pub fn capability(mut self, cap: PushdownCapability) -> Self {
        self.capability = cap;
        self
    }

    /// Attaches a buffer pool in front of the physical chunk reads. With
    /// `None` the result is bit-identical to no pool (all cache counters
    /// zero).
    pub fn cache(mut self, cache: Option<ScanCache<'a>>) -> Self {
        self.cache = cache;
        self
    }

    /// Attaches a fault injector to the physical chunk reads. With `None`
    /// the scan is infallible in practice.
    pub fn faults(mut self, faults: Option<ScanFaults<'a>>) -> Self {
        self.faults = faults;
        self
    }

    /// Wraps the scan in an [`obs::Stage::Scan`] span (plus an
    /// [`obs::Stage::Prune`] child span when pruning runs). A disabled
    /// context is a no-op.
    pub fn trace(mut self, trace: &'a obs::TraceCtx) -> Self {
        self.trace = trace.is_enabled().then_some(trace);
        self
    }

    /// Attaches a cooperative cancel token, checked once per row group
    /// *before* the group is accounted: an expired deadline or explicit
    /// cancel stops the scan within one row group of work, and no bytes
    /// of the aborted group are billed.
    pub fn cancel(mut self, cancel: &'a obs::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Enables zone-map pruning: row groups whose statistics prove that
    /// some predicate matches nothing are skipped before decode, billed
    /// as `bytes_pruned`, and reported in [`ScanRun::skip`]. The
    /// predicates must be a conjunction the query also applies row-wise
    /// (pruning only ever removes groups the filter would have emptied).
    pub fn prune(mut self, predicates: &'a [ScalarPredicate]) -> Self {
        self.prune = Some(predicates);
        self
    }

    /// Runs the scan.
    pub fn run(self) -> Result<ScanRun, ColumnarError> {
        let disabled_trace = obs::TraceCtx::disabled();
        let trace = self.trace.unwrap_or(&disabled_trace);
        let none_token = obs::CancelToken::none();
        let cancel = self.cancel.unwrap_or(&none_token);
        let mut span = trace.span_with(obs::Stage::Scan, || self.table.name().to_string());
        let read_leaves = self
            .projection
            .resolve(self.table.schema(), self.capability)?;
        let logical_leaves = self.projection.logical_leaves(self.table.schema())?;
        let mut stats = ScanStats {
            columns_read: read_leaves.len() as u64,
            ..ScanStats::default()
        };
        let (skip, mut prune_span) = match self.prune {
            // An empty conjunction prunes nothing: skip the zone-map pass
            // (and its span) but still report an all-false mask, so the
            // `skip.is_some() ⇔ prune() was called` contract holds.
            Some([]) => (Some(vec![false; self.table.row_groups().len()]), None),
            Some(preds) => {
                let mut ps = span
                    .ctx()
                    .span_with(obs::Stage::Prune, || self.table.name().to_string());
                let mask = crate::stats::skip_mask(self.table, preds);
                if ps.is_enabled() {
                    ps.add_rows_in(mask.len() as u64);
                    ps.add_rows_out(mask.iter().filter(|&&pruned| !pruned).count() as u64);
                }
                (Some(mask), Some(ps))
            }
            None => (None, None),
        };
        for (idx, g) in self.table.row_groups().iter().enumerate() {
            if skip.as_ref().is_some_and(|m| m[idx]) {
                account_group_pruned(&mut stats, g, &read_leaves);
                continue;
            }
            cancel.check(obs::Stage::Scan, stats.rows)?;
            account_group_scan(
                &mut stats,
                g,
                idx,
                &read_leaves,
                &logical_leaves,
                self.cache,
                self.faults,
            )?;
        }
        if let Some(ps) = prune_span.as_mut() {
            ps.add_bytes(stats.bytes_pruned);
        }
        drop(prune_span);
        if span.is_enabled() {
            span.add_rows_in(stats.rows);
            span.add_rows_out(stats.rows);
            span.add_bytes(stats.bytes_scanned);
            if stats.cache_hits > 0 || stats.cache_misses > 0 {
                span.set_label(format!(
                    "{} cache_hits={} cache_misses={}",
                    self.table.name(),
                    stats.cache_hits,
                    stats.cache_misses
                ));
            }
        }
        Ok(ScanRun { stats, skip })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::table::TableBuilder;
    use nested_value::Value;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new(
                "MET",
                DataType::Struct(vec![
                    Field::new("pt", DataType::f32()),
                    Field::new("phi", DataType::f32()),
                ]),
            ),
            Field::new(
                "Jet",
                DataType::particle_list(vec![
                    Field::new("pt", DataType::f32()),
                    Field::new("eta", DataType::f32()),
                ]),
            ),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema, 100);
        for i in 0..100 {
            let jets = Value::array(
                (0..(i % 4))
                    .map(|j| {
                        Value::struct_from(vec![
                            ("pt", Value::Float(30.0 + j as f64)),
                            ("eta", Value::Float(0.1 * j as f64)),
                        ])
                    })
                    .collect(),
            );
            b.append(&Value::struct_from(vec![
                (
                    "MET",
                    Value::struct_from(vec![
                        ("pt", Value::Float(i as f64)),
                        ("phi", Value::Float(0.5)),
                    ]),
                ),
                ("Jet", jets),
            ]))
            .unwrap();
        }
        b.finish()
    }

    fn stats(t: &Table, p: &Projection, cap: PushdownCapability) -> ScanStats {
        ScanRequest::new(t, p).capability(cap).run().unwrap().stats
    }

    #[test]
    fn pushdown_reduces_bytes() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let ideal = stats(&t, &p, PushdownCapability::IndividualLeaves);
        let coarse = stats(&t, &p, PushdownCapability::WholeStructs);
        let none = stats(&t, &p, PushdownCapability::None);
        assert!(ideal.bytes_scanned < coarse.bytes_scanned);
        assert!(coarse.bytes_scanned < none.bytes_scanned);
        assert_eq!(ideal.columns_read, 1);
        assert_eq!(coarse.columns_read, 2); // MET.pt + MET.phi
        assert_eq!(none.columns_read, 4);
        // Ideal bytes are capability-independent.
        assert_eq!(ideal.ideal_compressed_bytes, none.ideal_compressed_bytes);
    }

    #[test]
    fn logical_bytes_use_8_byte_floats() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let s = stats(&t, &p, PushdownCapability::IndividualLeaves);
        // 100 entries × 8 B logical vs 4 B physical.
        assert_eq!(s.logical_bytes, 800);
        assert_eq!(s.ideal_uncompressed_bytes, 400);
        assert_eq!(s.rows, 100);
    }

    #[test]
    fn tripped_token_aborts_scan_before_first_group() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let token = obs::CancelToken::new();
        token.cancel();
        let err = ScanRequest::new(&t, &p).cancel(&token).run().unwrap_err();
        let c = err.cancelled().copied().expect("typed cancellation");
        assert_eq!(c.stage, obs::Stage::Scan);
        assert_eq!(c.rows_processed, 0);
        assert_eq!(c.reason, obs::CancelReason::Explicit);
    }

    #[test]
    fn disabled_token_scan_is_byte_identical() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let plain = stats(&t, &p, PushdownCapability::IndividualLeaves);
        let guarded = ScanRequest::new(&t, &p)
            .trace(&obs::TraceCtx::default())
            .cancel(&obs::CancelToken::none())
            .run()
            .unwrap();
        assert_eq!(plain, guarded.stats);
        assert!(guarded.skip.is_none());
    }

    #[test]
    fn merge_accumulates() {
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let s = stats(&t, &p, PushdownCapability::IndividualLeaves);
        let mut twice = s;
        twice.merge(&s);
        assert_eq!(twice.rows, 200);
        assert_eq!(twice.bytes_scanned, 2 * s.bytes_scanned);
        assert!((s.bytes_per_row() - s.bytes_scanned as f64 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_conserves_bytes_and_skips_groups() {
        use crate::select::{ScalarPredicate, SelCmp, SelValue};
        let t = table(); // MET.pt = row index 0..100, groups of 100 rows? (row_group=100 → 1 group)
        let p = Projection::of(["MET.pt"]);
        let off = stats(&t, &p, PushdownCapability::IndividualLeaves);
        // MET.pt ∈ [0, 99]: a cut above the max prunes the (single) group.
        let preds = vec![ScalarPredicate {
            leaf: nested_value::Path::parse("MET.pt"),
            cmp: SelCmp::Gt,
            value: SelValue::Float(1000.0),
        }];
        let on = ScanRequest::new(&t, &p).prune(&preds).run().unwrap();
        assert_eq!(on.skip.as_deref(), Some(&[true][..]));
        assert_eq!(on.stats.groups_pruned, 1);
        assert_eq!(on.stats.rows, 0);
        assert_eq!(on.stats.bytes_scanned, 0);
        assert_eq!(
            on.stats.bytes_scanned + on.stats.bytes_pruned,
            off.bytes_scanned,
            "pruned bytes + scanned bytes must equal the unpruned scan"
        );
        // A satisfiable cut keeps the group and prunes nothing.
        let sat = vec![ScalarPredicate {
            leaf: nested_value::Path::parse("MET.pt"),
            cmp: SelCmp::Ge,
            value: SelValue::Float(50.0),
        }];
        let kept = ScanRequest::new(&t, &p).prune(&sat).run().unwrap();
        assert_eq!(kept.skip.as_deref(), Some(&[false][..]));
        assert_eq!(kept.stats, off, "unpruned scan must be byte-identical");
    }

    #[test]
    fn prune_span_is_recorded_under_scan() {
        use crate::select::{ScalarPredicate, SelCmp, SelValue};
        let t = table();
        let p = Projection::of(["MET.pt"]);
        let preds = vec![ScalarPredicate {
            leaf: nested_value::Path::parse("MET.pt"),
            cmp: SelCmp::Lt,
            value: SelValue::Float(-1.0),
        }];
        let trace = obs::TraceCtx::enabled();
        ScanRequest::new(&t, &p)
            .trace(&trace)
            .prune(&preds)
            .run()
            .unwrap();
        let tree = trace.take_tree();
        let spans = tree.flatten();
        let prune = spans
            .iter()
            .find(|s| s.stage == obs::Stage::Prune)
            .expect("prune span recorded");
        assert_eq!(prune.rows_in, 1); // one row group considered
        assert_eq!(prune.rows_out, 0); // none kept
        assert!(prune.bytes > 0); // pruned bytes attributed to the span
        let scan = spans
            .iter()
            .find(|s| s.stage == obs::Stage::Scan)
            .expect("scan span recorded");
        assert_eq!(prune.parent, Some(scan.id));
    }
}

/// Typed outcome counters of morsel-level fault recovery in a parallel
/// executor (see `exec-par`). Every non-skipped morsel contributes to
/// `ok` exactly once — recovery changes *which attempt* produced the
/// winning partial, never how many partials exist — so `ok` equals the
/// morsel count whenever the run succeeded, and the remaining counters
/// record the recovery work it took to get there. All zero on the serial
/// path and whenever recovery is disabled, keeping [`ExecStats`]
/// byte-identical to the pre-recovery engines by default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MorselRecovery {
    /// Morsels whose winning partial was produced (first try or after
    /// recovery) — exactly the non-skipped row-group count on success.
    pub ok: u64,
    /// In-place re-executions of a morsel after a retryable fault.
    pub retried: u64,
    /// Speculative re-executions launched against straggler morsels.
    pub respeculated: u64,
    /// Morsels moved from a dead worker's deque to the shared retry
    /// queue (plus the panicked morsel itself when its owner retired).
    pub reassigned: u64,
    /// Morsels quarantined after a panicking kernel (re-run elsewhere
    /// instead of poisoning the pool).
    pub quarantined: u64,
    /// Workers retired after exhausting their panic budget.
    pub workers_lost: u64,
}

impl MorselRecovery {
    /// Accumulates another run's counters.
    pub fn merge(&mut self, other: &MorselRecovery) {
        self.ok += other.ok;
        self.retried += other.retried;
        self.respeculated += other.respeculated;
        self.reassigned += other.reassigned;
        self.quarantined += other.quarantined;
        self.workers_lost += other.workers_lost;
    }

    /// Total recovery interventions (everything except `ok`).
    pub fn interventions(&self) -> u64 {
        self.retried + self.respeculated + self.reassigned + self.quarantined + self.workers_lost
    }
}

/// Engine-level execution accounting shared by all engines in the
/// workspace (placed here because every engine executes over this
/// substrate and `core` compares them uniformly).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// End-to-end wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// Total busy CPU seconds summed over workers (the paper's Figure 4a
    /// metric: "seconds any logical core spends doing work").
    pub cpu_seconds: f64,
    /// I/O accounting of the scan.
    pub scan: ScanStats,
    /// Number of worker threads that participated.
    pub threads_used: usize,
    /// Row groups skipped by zone-map (min/max) pruning before any byte
    /// was read.
    pub row_groups_skipped: u64,
    /// Morsel-level fault-recovery outcomes (all zero unless the
    /// compiled-parallel path ran with recovery enabled).
    pub recovery: MorselRecovery,
}
