//! Schema tree: logical nested types over physical scalar leaves.

use nested_value::Path;

use crate::error::ColumnarError;

/// Physical storage type of a leaf column.
///
/// The logical value model only has `Int`/`Float`/`Bool`, but the physical
/// precision matters for storage size and therefore for scan pricing: the
/// paper's data set stores most measurements as 4-byte floats while BigQuery
/// *prices* them as 8-byte doubles (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhysicalType {
    /// 1-bit boolean (bit-packed on disk).
    Bool,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 32-bit IEEE float (exposed to queries as f64).
    Float32,
    /// 64-bit IEEE float.
    Float64,
}

impl PhysicalType {
    /// Physical width in bytes (Bool counts as 1 for uncompressed size;
    /// bit-packing is part of compression).
    pub fn width(self) -> usize {
        match self {
            PhysicalType::Bool => 1,
            PhysicalType::Int32 | PhysicalType::Float32 => 4,
            PhysicalType::Int64 | PhysicalType::Float64 => 8,
        }
    }

    /// Width used by BigQuery-style logical pricing: every number is
    /// treated as its 8-byte logical type, booleans as 1 byte.
    pub fn logical_width(self) -> usize {
        match self {
            PhysicalType::Bool => 1,
            _ => 8,
        }
    }
}

/// A logical data type in the schema tree.
#[derive(Clone, Debug, PartialEq)]
pub enum DataType {
    /// Scalar leaf with a physical representation.
    Scalar(PhysicalType),
    /// Struct with named fields.
    Struct(Vec<Field>),
    /// Variable-length list. At most one list level per root-to-leaf path
    /// (all HEP schemas satisfy this; enforced by schema validation).
    List(Box<DataType>),
}

impl DataType {
    /// Shorthand for a `Float32` scalar (the dominant HEP leaf type).
    pub fn f32() -> DataType {
        DataType::Scalar(PhysicalType::Float32)
    }
    /// Shorthand for a `Float64` scalar.
    pub fn f64() -> DataType {
        DataType::Scalar(PhysicalType::Float64)
    }
    /// Shorthand for an `Int32` scalar.
    pub fn i32() -> DataType {
        DataType::Scalar(PhysicalType::Int32)
    }
    /// Shorthand for an `Int64` scalar.
    pub fn i64() -> DataType {
        DataType::Scalar(PhysicalType::Int64)
    }
    /// Shorthand for a `Bool` scalar.
    pub fn bool() -> DataType {
        DataType::Scalar(PhysicalType::Bool)
    }
    /// Shorthand for a list of structs — the canonical particle collection.
    pub fn particle_list(fields: Vec<Field>) -> DataType {
        DataType::List(Box::new(DataType::Struct(fields)))
    }
}

/// A named schema node.
///
/// The name is an interned `Arc<str>` so that row materialization can tag
/// struct fields with a pointer clone instead of allocating a fresh string
/// per row (see [`crate::rowgroup::GroupReader`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    /// Field name, shared by every row materialized from this schema.
    pub name: std::sync::Arc<str>,
    /// Field type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: &str, dtype: DataType) -> Field {
        Field {
            name: std::sync::Arc::from(name),
            dtype,
        }
    }
}

/// Description of one leaf column: its path, physical type, and whether it
/// sits under a repeated (list) ancestor.
#[derive(Clone, Debug, PartialEq)]
pub struct LeafInfo {
    /// Dotted path from the root, e.g. `Jet.pt`.
    pub path: Path,
    /// Physical storage type.
    pub ptype: PhysicalType,
    /// True if some ancestor is a list (the column needs offsets).
    pub repeated: bool,
}

/// A table schema: an implicit top-level struct.
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    fields: Vec<Field>,
    leaves: Vec<LeafInfo>,
}

impl Schema {
    /// Builds and validates a schema.
    pub fn new(fields: Vec<Field>) -> Result<Schema, ColumnarError> {
        let mut leaves = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.clone()) {
                return Err(ColumnarError::UnsupportedSchema(format!(
                    "duplicate top-level field {}",
                    f.name
                )));
            }
            collect_leaves(&Path::root(&f.name), &f.dtype, false, &mut leaves)?;
        }
        Ok(Schema { fields, leaves })
    }

    /// Top-level fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Looks up a top-level field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name.as_ref() == name)
    }

    /// All leaf columns in depth-first schema order.
    pub fn leaves(&self) -> &[LeafInfo] {
        &self.leaves
    }

    /// Looks up a leaf by path.
    pub fn leaf(&self, path: &Path) -> Option<&LeafInfo> {
        self.leaves.iter().find(|l| &l.path == path)
    }

    /// Resolves the data type at an arbitrary (possibly non-leaf) path.
    pub fn type_at(&self, path: &Path) -> Option<&DataType> {
        let mut fields = &self.fields;
        let mut current: Option<&DataType> = None;
        for seg in path.segments() {
            let f = fields.iter().find(|f| f.name.as_ref() == seg.as_str())?;
            current = Some(&f.dtype);
            // Descend through lists transparently (Parquet-style paths).
            let mut dt = &f.dtype;
            loop {
                match dt {
                    DataType::List(inner) => dt = inner,
                    DataType::Struct(inner) => {
                        fields = inner;
                        break;
                    }
                    DataType::Scalar(_) => {
                        fields = &EMPTY_FIELDS;
                        break;
                    }
                }
            }
        }
        current
    }

    /// Total number of leaf columns (the paper's "65 attributes").
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// All leaves under the given path prefix (the path itself if a leaf).
    pub fn leaves_under(&self, prefix: &Path) -> Vec<&LeafInfo> {
        self.leaves
            .iter()
            .filter(|l| l.path.starts_with(prefix))
            .collect()
    }
}

static EMPTY_FIELDS: Vec<Field> = Vec::new();

fn collect_leaves(
    path: &Path,
    dtype: &DataType,
    in_list: bool,
    out: &mut Vec<LeafInfo>,
) -> Result<(), ColumnarError> {
    match dtype {
        DataType::Scalar(pt) => {
            out.push(LeafInfo {
                path: path.clone(),
                ptype: *pt,
                repeated: in_list,
            });
            Ok(())
        }
        DataType::Struct(fields) => {
            let mut seen = std::collections::HashSet::new();
            for f in fields {
                if !seen.insert(&f.name) {
                    return Err(ColumnarError::UnsupportedSchema(format!(
                        "duplicate field {} under {}",
                        f.name, path
                    )));
                }
                collect_leaves(&path.child(&f.name), &f.dtype, in_list, out)?;
            }
            Ok(())
        }
        DataType::List(inner) => {
            if in_list {
                return Err(ColumnarError::UnsupportedSchema(format!(
                    "nested lists at {path} are not supported (HEP data has a single repetition level)"
                )));
            }
            if matches!(**inner, DataType::List(_)) {
                return Err(ColumnarError::UnsupportedSchema(format!(
                    "list of lists at {path}"
                )));
            }
            collect_leaves(path, inner, true, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_schema() -> Schema {
        Schema::new(vec![
            Field::new("event", DataType::i64()),
            Field::new(
                "MET",
                DataType::Struct(vec![
                    Field::new("pt", DataType::f32()),
                    Field::new("phi", DataType::f32()),
                ]),
            ),
            Field::new(
                "Jet",
                DataType::particle_list(vec![
                    Field::new("pt", DataType::f32()),
                    Field::new("eta", DataType::f32()),
                    Field::new("puId", DataType::bool()),
                ]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn leaf_enumeration() {
        let s = toy_schema();
        let paths: Vec<String> = s.leaves().iter().map(|l| l.path.to_string()).collect();
        assert_eq!(
            paths,
            vec!["event", "MET.pt", "MET.phi", "Jet.pt", "Jet.eta", "Jet.puId"]
        );
        assert!(!s.leaf(&Path::parse("MET.pt")).unwrap().repeated);
        assert!(s.leaf(&Path::parse("Jet.pt")).unwrap().repeated);
        assert_eq!(s.n_leaves(), 6);
    }

    #[test]
    fn leaves_under_prefix() {
        let s = toy_schema();
        let under: Vec<String> = s
            .leaves_under(&Path::root("Jet"))
            .iter()
            .map(|l| l.path.to_string())
            .collect();
        assert_eq!(under, vec!["Jet.pt", "Jet.eta", "Jet.puId"]);
        // A prefix must match whole segments.
        assert!(s.leaves_under(&Path::root("Je")).is_empty());
    }

    #[test]
    fn type_at_descends_lists() {
        let s = toy_schema();
        assert_eq!(s.type_at(&Path::parse("Jet.pt")), Some(&DataType::f32()));
        assert!(matches!(
            s.type_at(&Path::root("Jet")),
            Some(DataType::List(_))
        ));
        assert_eq!(s.type_at(&Path::parse("Jet.nope")), None);
    }

    #[test]
    fn rejects_nested_lists() {
        let err = Schema::new(vec![Field::new(
            "a",
            DataType::List(Box::new(DataType::particle_list(vec![Field::new(
                "x",
                DataType::f32(),
            )]))),
        )]);
        assert!(matches!(err, Err(ColumnarError::UnsupportedSchema(_))));
    }

    #[test]
    fn rejects_duplicate_fields() {
        let err = Schema::new(vec![
            Field::new("a", DataType::i64()),
            Field::new("a", DataType::f64()),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn physical_widths() {
        assert_eq!(PhysicalType::Float32.width(), 4);
        assert_eq!(PhysicalType::Float32.logical_width(), 8);
        assert_eq!(PhysicalType::Bool.width(), 1);
        assert_eq!(PhysicalType::Int64.logical_width(), 8);
    }
}
