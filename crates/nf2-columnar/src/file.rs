//! On-disk container format.
//!
//! A simple little-endian binary layout so data sets can be materialized
//! once and re-read by the benchmark harnesses:
//!
//! ```text
//! magic "NF2C" | version u32 | name | schema | n_row_groups u32
//!   per row group: n_rows u64 | n_columns u32
//!     per column: path | ptype u8 | has_offsets u8
//!                 [offsets: n u64, u32×n] | data: n u64, raw LE values
//! ```
//!
//! Strings are `len u32 | utf8 bytes`. Chunk statistics and compressed
//! sizes are recomputed on load (they are derived data).

use std::io::{self, Read, Write};

use nested_value::Path;

use crate::column::{ColumnChunk, ColumnData};
use crate::error::ColumnarError;
use crate::rowgroup::RowGroup;
use crate::schema::{DataType, Field, PhysicalType, Schema};
use crate::table::Table;

const MAGIC: &[u8; 4] = b"NF2C";
const VERSION: u32 = 1;

/// Writes a table to any writer.
pub fn write_table<W: Write>(table: &Table, w: &mut W) -> Result<(), ColumnarError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_str(w, table.name())?;
    write_schema(w, table.schema())?;
    w.write_all(&(table.row_groups().len() as u32).to_le_bytes())?;
    for g in table.row_groups() {
        w.write_all(&(g.n_rows() as u64).to_le_bytes())?;
        let cols: Vec<_> = g.columns().collect();
        w.write_all(&(cols.len() as u32).to_le_bytes())?;
        for (path, chunk) in cols {
            write_str(w, &path.to_string())?;
            w.write_all(&[ptype_tag(chunk.data.physical_type())])?;
            match &chunk.offsets {
                Some(off) => {
                    w.write_all(&[1u8])?;
                    w.write_all(&(off.len() as u64).to_le_bytes())?;
                    for o in off {
                        w.write_all(&o.to_le_bytes())?;
                    }
                }
                None => w.write_all(&[0u8])?,
            }
            write_data(w, &chunk.data)?;
        }
    }
    Ok(())
}

/// Reads a table from any reader.
pub fn read_table<R: Read>(r: &mut R) -> Result<Table, ColumnarError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ColumnarError::Format("bad magic".into()));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(ColumnarError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let name = read_str(r)?;
    let schema = read_schema(r)?;
    let n_groups = read_u32(r)? as usize;
    let mut groups = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        let n_rows = read_u64(r)? as usize;
        let n_cols = read_u32(r)? as usize;
        let mut columns = std::collections::BTreeMap::new();
        for _ in 0..n_cols {
            let path = Path::parse(&read_str(r)?);
            let mut tag = [0u8; 2];
            r.read_exact(&mut tag)?;
            let ptype = tag_ptype(tag[0])?;
            let offsets = if tag[1] == 1 {
                let n = read_u64(r)? as usize;
                let mut off = Vec::with_capacity(n);
                for _ in 0..n {
                    off.push(read_u32(r)?);
                }
                Some(off)
            } else {
                None
            };
            let data = read_data(r, ptype)?;
            columns.insert(path, ColumnChunk::seal(data, offsets));
        }
        groups.push(RowGroup::new(n_rows, columns));
    }
    Ok(Table::new(name, schema, groups))
}

/// Writes a table to a file path.
pub fn save(table: &Table, path: &std::path::Path) -> Result<(), ColumnarError> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_table(table, &mut f)?;
    f.flush()?;
    Ok(())
}

/// Loads a table from a file path.
pub fn load(path: &std::path::Path) -> Result<Table, ColumnarError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_table(&mut f)
}

fn ptype_tag(pt: PhysicalType) -> u8 {
    match pt {
        PhysicalType::Bool => 0,
        PhysicalType::Int32 => 1,
        PhysicalType::Int64 => 2,
        PhysicalType::Float32 => 3,
        PhysicalType::Float64 => 4,
    }
}

fn tag_ptype(t: u8) -> Result<PhysicalType, ColumnarError> {
    Ok(match t {
        0 => PhysicalType::Bool,
        1 => PhysicalType::Int32,
        2 => PhysicalType::Int64,
        3 => PhysicalType::Float32,
        4 => PhysicalType::Float64,
        _ => return Err(ColumnarError::Format(format!("bad type tag {t}"))),
    })
}

fn write_schema<W: Write>(w: &mut W, schema: &Schema) -> Result<(), ColumnarError> {
    write_fields(w, schema.fields())
}

fn write_fields<W: Write>(w: &mut W, fields: &[Field]) -> Result<(), ColumnarError> {
    w.write_all(&(fields.len() as u32).to_le_bytes())?;
    for f in fields {
        write_str(w, &f.name)?;
        write_dtype(w, &f.dtype)?;
    }
    Ok(())
}

fn write_dtype<W: Write>(w: &mut W, dt: &DataType) -> Result<(), ColumnarError> {
    match dt {
        DataType::Scalar(pt) => {
            w.write_all(&[0u8, ptype_tag(*pt)])?;
        }
        DataType::Struct(fields) => {
            w.write_all(&[1u8])?;
            write_fields(w, fields)?;
        }
        DataType::List(inner) => {
            w.write_all(&[2u8])?;
            write_dtype(w, inner)?;
        }
    }
    Ok(())
}

fn read_schema<R: Read>(r: &mut R) -> Result<Schema, ColumnarError> {
    let fields = read_fields(r)?;
    Schema::new(fields)
}

fn read_fields<R: Read>(r: &mut R) -> Result<Vec<Field>, ColumnarError> {
    let n = read_u32(r)? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_str(r)?;
        let dtype = read_dtype(r)?;
        fields.push(Field {
            name: name.into(),
            dtype,
        });
    }
    Ok(fields)
}

fn read_dtype<R: Read>(r: &mut R) -> Result<DataType, ColumnarError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => {
            let mut pt = [0u8; 1];
            r.read_exact(&mut pt)?;
            DataType::Scalar(tag_ptype(pt[0])?)
        }
        1 => DataType::Struct(read_fields(r)?),
        2 => DataType::List(Box::new(read_dtype(r)?)),
        t => return Err(ColumnarError::Format(format!("bad dtype tag {t}"))),
    })
}

fn write_data<W: Write>(w: &mut W, data: &ColumnData) -> Result<(), ColumnarError> {
    w.write_all(&(data.len() as u64).to_le_bytes())?;
    match data {
        ColumnData::Bool(v) => {
            for &b in v {
                w.write_all(&[b as u8])?;
            }
        }
        ColumnData::I32(v) => {
            for x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        ColumnData::I64(v) => {
            for x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        ColumnData::F32(v) => {
            for x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        ColumnData::F64(v) => {
            for x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

fn read_data<R: Read>(r: &mut R, pt: PhysicalType) -> Result<ColumnData, ColumnarError> {
    let n = read_u64(r)? as usize;
    Ok(match pt {
        PhysicalType::Bool => {
            let mut buf = vec![0u8; n];
            r.read_exact(&mut buf)?;
            ColumnData::Bool(buf.into_iter().map(|b| b != 0).collect())
        }
        PhysicalType::Int32 => {
            let mut v = Vec::with_capacity(n);
            let mut b = [0u8; 4];
            for _ in 0..n {
                r.read_exact(&mut b)?;
                v.push(i32::from_le_bytes(b));
            }
            ColumnData::I32(v)
        }
        PhysicalType::Int64 => {
            let mut v = Vec::with_capacity(n);
            let mut b = [0u8; 8];
            for _ in 0..n {
                r.read_exact(&mut b)?;
                v.push(i64::from_le_bytes(b));
            }
            ColumnData::I64(v)
        }
        PhysicalType::Float32 => {
            let mut v = Vec::with_capacity(n);
            let mut b = [0u8; 4];
            for _ in 0..n {
                r.read_exact(&mut b)?;
                v.push(f32::from_le_bytes(b));
            }
            ColumnData::F32(v)
        }
        PhysicalType::Float64 => {
            let mut v = Vec::with_capacity(n);
            let mut b = [0u8; 8];
            for _ in 0..n {
                r.read_exact(&mut b)?;
                v.push(f64::from_le_bytes(b));
            }
            ColumnData::F64(v)
        }
    })
}

fn write_str<W: Write>(w: &mut W, s: &str) -> Result<(), ColumnarError> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

fn read_str<R: Read>(r: &mut R) -> Result<String, ColumnarError> {
    let n = read_u32(r)? as usize;
    if n > 1 << 20 {
        return Err(ColumnarError::Format(format!("string too long: {n}")));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| ColumnarError::Format("invalid utf8".into()))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ColumnarError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ColumnarError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use nested_value::Value;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::i64()),
            Field::new("flag", DataType::bool()),
            Field::new(
                "P",
                DataType::particle_list(vec![
                    Field::new("pt", DataType::f32()),
                    Field::new("q", DataType::i32()),
                ]),
            ),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema, 3);
        for i in 0..7i64 {
            b.append(&Value::struct_from(vec![
                ("id", Value::Int(i)),
                ("flag", Value::Bool(i % 2 == 0)),
                (
                    "P",
                    Value::array(
                        (0..(i % 3))
                            .map(|j| {
                                Value::struct_from(vec![
                                    ("pt", Value::Float(10.0 + j as f64)),
                                    ("q", Value::Int(if j % 2 == 0 { 1 } else { -1 })),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn roundtrip_via_buffer() {
        let t = sample_table();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let t2 = read_table(&mut &buf[..]).unwrap();
        assert_eq!(t2.name(), "t");
        assert_eq!(t2.n_rows(), 7);
        assert_eq!(t2.schema(), t.schema());
        let leaves: Vec<_> = t.schema().leaves().iter().collect();
        let rows1: Vec<_> = t
            .row_groups()
            .iter()
            .flat_map(|g| g.read_rows(t.schema(), &leaves).unwrap())
            .collect();
        let leaves2: Vec<_> = t2.schema().leaves().iter().collect();
        let rows2: Vec<_> = t2
            .row_groups()
            .iter()
            .flat_map(|g| g.read_rows(t2.schema(), &leaves2).unwrap())
            .collect();
        assert_eq!(rows1, rows2);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPExxxxxxx".to_vec();
        assert!(matches!(
            read_table(&mut &buf[..]),
            Err(ColumnarError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let t = sample_table();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_table(&mut &buf[..]).is_err());
    }

    #[test]
    fn save_and_load_file() {
        let t = sample_table();
        let dir = std::env::temp_dir().join("nf2c_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("sample.nf2c");
        save(&t, &p).unwrap();
        let t2 = load(&p).unwrap();
        assert_eq!(t2.n_rows(), t.n_rows());
        let file_size = std::fs::metadata(&p).unwrap().len();
        assert!(file_size > 0);
        std::fs::remove_file(&p).ok();
    }
}
