//! Honest lightweight compression-size estimation.
//!
//! The substrate never stores compressed bytes (queries read the typed
//! buffers directly), but the *compressed size* of each chunk must be real:
//! it is the basis of Athena-style scan pricing and of the paper's Figure 4b
//! "ideal bytes" line. We therefore run actual encodings over the data and
//! count output bytes:
//!
//! * **Bool** — bit-packing followed by byte-level RLE (flag columns are
//!   mostly constant and compress extremely well).
//! * **Int32/Int64** — zig-zag delta encoding with LEB128 varints, the same
//!   family Parquet's `DELTA_BINARY_PACKED` belongs to.
//! * **Float32/Float64** — byte-plane split (as in Parquet's
//!   `BYTE_STREAM_SPLIT`) with RLE per plane. Sign/exponent planes compress
//!   somewhat; mantissa planes of physics measurements are close to random,
//!   so overall ratios stay near 1 — exactly the behaviour the paper relies
//!   on when discussing Athena's pricing ("most columns … have only
//!   negligible compression ratios").

use crate::column::ColumnData;

/// Computes the compressed byte size of a buffer using the encodings above.
pub fn compressed_size(data: &ColumnData) -> usize {
    match data {
        ColumnData::Bool(v) => bool_size(v),
        ColumnData::I32(v) => varint_delta_size(v.iter().map(|&x| x as i64)),
        ColumnData::I64(v) => varint_delta_size(v.iter().copied()),
        ColumnData::F32(v) => byte_plane_size(v.iter().flat_map(|x| x.to_le_bytes()), 4, v.len()),
        ColumnData::F64(v) => byte_plane_size(v.iter().flat_map(|x| x.to_le_bytes()), 8, v.len()),
    }
}

/// Compressed size of an offsets array (delta + varint: offsets are sorted,
/// so deltas are the per-row list lengths, which are tiny).
pub fn offsets_size(offsets: &[u32]) -> usize {
    varint_delta_size(offsets.iter().map(|&x| x as i64))
}

fn bool_size(v: &[bool]) -> usize {
    // Bit-pack, then RLE the packed bytes.
    let mut bytes = Vec::with_capacity(v.len() / 8 + 1);
    for chunk in v.chunks(8) {
        let mut b = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            b |= (bit as u8) << i;
        }
        bytes.push(b);
    }
    rle_size(&bytes)
}

/// Byte length of a PackBits-style RLE encoding of a byte stream: repeated
/// runs of ≥3 cost a control byte plus the value; literal stretches cost
/// their own length plus one control byte per 127 literals. Incompressible
/// data therefore costs ~100.8% of its raw size, never 2×.
fn rle_size(bytes: &[u8]) -> usize {
    let mut size = 0usize;
    let mut literals = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let mut run = 1usize;
        while i + run < bytes.len() && bytes[i + run] == b && run < 130 {
            run += 1;
        }
        if run >= 3 {
            size += literal_cost(literals) + 2;
            literals = 0;
        } else {
            literals += run;
        }
        i += run;
    }
    size + literal_cost(literals)
}

fn literal_cost(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        n + n.div_ceil(127)
    }
}

/// Byte length of the LEB128 varint encoding of `x`.
fn varint_len(x: u64) -> usize {
    (64 - x.leading_zeros()).div_ceil(7).max(1) as usize
}

fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

fn varint_delta_size<I: IntoIterator<Item = i64>>(xs: I) -> usize {
    let mut prev = 0i64;
    let mut size = 0usize;
    for x in xs {
        size += varint_len(zigzag(x.wrapping_sub(prev)));
        prev = x;
    }
    size
}

/// Splits a little-endian byte stream into `width` planes and RLE-encodes
/// each plane separately.
fn byte_plane_size<I: IntoIterator<Item = u8>>(bytes: I, width: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut planes: Vec<Vec<u8>> = vec![Vec::with_capacity(n); width];
    for (i, b) in bytes.into_iter().enumerate() {
        planes[i % width].push(b);
    }
    planes.iter().map(|p| rle_size(p)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_bools_compress_heavily() {
        let v = vec![true; 8000];
        let size = compressed_size(&ColumnData::Bool(v));
        assert!(
            size < 20,
            "constant flags should RLE to almost nothing, got {size}"
        );
    }

    #[test]
    fn sequential_ints_compress_heavily() {
        let v: Vec<i64> = (0..10_000).collect();
        let size = compressed_size(&ColumnData::I64(v));
        // Delta of 1 → 1 byte per entry.
        assert!(size <= 10_001, "got {size}");
        assert!(size > 5_000);
    }

    #[test]
    fn random_floats_barely_compress() {
        // Deterministic pseudo-random floats via a simple LCG.
        let mut x = 0x2545F4914F6CDD1Du64;
        let v: Vec<f32> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                20.0 + (x >> 40) as f32 / 1000.0
            })
            .collect();
        let raw = v.len() * 4;
        let size = compressed_size(&ColumnData::F32(v));
        let ratio = size as f64 / raw as f64;
        assert!(
            ratio > 0.6 && ratio <= 1.3,
            "physics-like floats should have a negligible compression ratio, got {ratio}"
        );
    }

    #[test]
    fn offsets_compress_like_small_deltas() {
        let offsets: Vec<u32> = (0..=1000u32).map(|i| i * 3).collect();
        let size = offsets_size(&offsets);
        assert!(size <= 1001, "got {size}");
    }

    #[test]
    fn varint_lengths() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn empty_buffers_are_zero() {
        assert_eq!(compressed_size(&ColumnData::F64(vec![])), 0);
        assert_eq!(compressed_size(&ColumnData::Bool(vec![])), 0);
        assert_eq!(compressed_size(&ColumnData::I32(vec![])), 0);
    }
}
