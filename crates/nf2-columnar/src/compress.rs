//! Honest lightweight compression: adaptive per-chunk encodings.
//!
//! The substrate never persists compressed bytes (queries read the typed
//! buffers directly), but the *compressed size* of each chunk must be real:
//! it is the basis of Athena-style scan pricing and of the paper's Figure 4b
//! "ideal bytes" line. Each chunk is therefore sealed with the smallest of
//! several real encodings — every candidate has an actual encoder/decoder
//! whose output length is what [`ColumnChunk::seal`](crate::column::ColumnChunk::seal)
//! prices:
//!
//! * **[`Encoding::BoolRle`]** (Bool) — bit-packing followed by byte-level
//!   RLE (flag columns are mostly constant and compress extremely well).
//! * **[`Encoding::DeltaVarint`]** (Int32/Int64, offsets) — zig-zag delta
//!   encoding with LEB128 varints, the same family Parquet's
//!   `DELTA_BINARY_PACKED` belongs to.
//! * **[`Encoding::ByteStreamSplit`]** (Float32/Float64) — byte-plane split
//!   (as in Parquet's `BYTE_STREAM_SPLIT`) with RLE per plane. Sign/exponent
//!   planes compress somewhat; mantissa planes of physics measurements are
//!   close to random, so overall ratios stay near 1 — exactly the behaviour
//!   the paper relies on when discussing Athena's pricing ("most columns …
//!   have only negligible compression ratios").
//! * **[`Encoding::Dict`]** (numeric types, ≤ 256 distinct values) — a value
//!   dictionary plus RLE-compressed one-byte codes, Parquet's
//!   `RLE_DICTIONARY` in miniature. Wins on low-cardinality leaves (charges,
//!   ids, constant calibration columns) where delta or plane encodings still
//!   pay a byte per value.
//! * **[`Encoding::Plain`]** — raw little-endian values, the fallback bound
//!   so an adaptive choice can never exceed raw size on pathological data.
//!
//! [`choose`] picks the smallest applicable candidate per chunk (ties go to
//! the earlier, type-default candidate), so the chosen size is never larger
//! than the single-encoding estimate [`compressed_size`] the earlier
//! release used.

use crate::column::ColumnData;
use crate::error::ColumnarError;
use crate::schema::PhysicalType;

/// Computes the compressed byte size of a buffer under the *type-default*
/// encoding (BoolRle / DeltaVarint / ByteStreamSplit). This is the
/// pre-adaptive baseline; [`choose`] never returns a larger size.
pub fn compressed_size(data: &ColumnData) -> usize {
    match data {
        ColumnData::Bool(v) => bool_size(v),
        ColumnData::I32(v) => varint_delta_size(v.iter().map(|&x| x as i64)),
        ColumnData::I64(v) => varint_delta_size(v.iter().copied()),
        ColumnData::F32(v) => byte_plane_size(v.iter().flat_map(|x| x.to_le_bytes()), 4, v.len()),
        ColumnData::F64(v) => byte_plane_size(v.iter().flat_map(|x| x.to_le_bytes()), 8, v.len()),
    }
}

/// Compressed size of an offsets array (delta + varint: offsets are sorted,
/// so deltas are the per-row list lengths, which are tiny).
pub fn offsets_size(offsets: &[u32]) -> usize {
    varint_delta_size(offsets.iter().map(|&x| x as i64))
}

/// One physical chunk encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Raw little-endian values (bools as one byte each).
    Plain,
    /// Bit-packing + byte RLE; Bool only.
    BoolRle,
    /// Zig-zag deltas as LEB128 varints; integer types only.
    DeltaVarint,
    /// Little-endian byte planes, each RLE-compressed; float types only.
    ByteStreamSplit,
    /// ≤ 256-entry value dictionary + RLE-compressed one-byte codes;
    /// numeric types only.
    Dict,
}

impl Encoding {
    /// Stable display name (bench/report output).
    pub fn name(&self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::BoolRle => "bool_rle",
            Encoding::DeltaVarint => "delta_varint",
            Encoding::ByteStreamSplit => "byte_stream_split",
            Encoding::Dict => "dict",
        }
    }
}

/// Candidate encodings for a physical type, in tie-break order (the
/// type-default first, `Plain` last as the raw-size bound).
pub fn candidates(pt: PhysicalType) -> &'static [Encoding] {
    match pt {
        PhysicalType::Bool => &[Encoding::BoolRle, Encoding::Plain],
        PhysicalType::Int32 | PhysicalType::Int64 => {
            &[Encoding::DeltaVarint, Encoding::Dict, Encoding::Plain]
        }
        PhysicalType::Float32 | PhysicalType::Float64 => {
            &[Encoding::ByteStreamSplit, Encoding::Dict, Encoding::Plain]
        }
    }
}

/// Encoded size of `data` under `enc` without materializing the payload,
/// or `None` when the encoding does not apply (wrong type, or dictionary
/// overflow). Exactly equals `encode_as(data, enc).len()` when applicable.
pub fn encoded_size(data: &ColumnData, enc: Encoding) -> Option<usize> {
    match (enc, data) {
        (Encoding::Plain, _) => Some(data.len() * plain_width(data.physical_type())),
        (Encoding::BoolRle, ColumnData::Bool(v)) => Some(bool_size(v)),
        (Encoding::DeltaVarint, ColumnData::I32(v)) => {
            Some(varint_delta_size(v.iter().map(|&x| x as i64)))
        }
        (Encoding::DeltaVarint, ColumnData::I64(v)) => Some(varint_delta_size(v.iter().copied())),
        (Encoding::ByteStreamSplit, ColumnData::F32(v)) => Some(byte_plane_size(
            v.iter().flat_map(|x| x.to_le_bytes()),
            4,
            v.len(),
        )),
        (Encoding::ByteStreamSplit, ColumnData::F64(v)) => Some(byte_plane_size(
            v.iter().flat_map(|x| x.to_le_bytes()),
            8,
            v.len(),
        )),
        (Encoding::Dict, _) => dict_size(data),
        _ => None,
    }
}

/// Picks the smallest applicable encoding for `data` (ties break toward
/// the earlier candidate). Returns the encoding and its measured size.
pub fn choose(data: &ColumnData) -> (Encoding, usize) {
    let mut best: Option<(Encoding, usize)> = None;
    for &enc in candidates(data.physical_type()) {
        if let Some(size) = encoded_size(data, enc) {
            if best.is_none_or(|(_, b)| size < b) {
                best = Some((enc, size));
            }
        }
    }
    best.expect("Plain always applies")
}

/// Encodes `data` under `enc`. Returns `None` when the encoding does not
/// apply. The payload is self-contained given the physical type and entry
/// count (no header bytes), so `len()` matches [`encoded_size`].
pub fn encode_as(data: &ColumnData, enc: Encoding) -> Option<Vec<u8>> {
    match (enc, data) {
        (Encoding::Plain, _) => Some(plain_encode(data)),
        (Encoding::BoolRle, ColumnData::Bool(v)) => {
            let mut packed = Vec::with_capacity(v.len() / 8 + 1);
            for chunk in v.chunks(8) {
                let mut b = 0u8;
                for (i, &bit) in chunk.iter().enumerate() {
                    b |= (bit as u8) << i;
                }
                packed.push(b);
            }
            Some(rle_encode(&packed))
        }
        (Encoding::DeltaVarint, ColumnData::I32(v)) => {
            Some(varint_delta_encode(v.iter().map(|&x| x as i64)))
        }
        (Encoding::DeltaVarint, ColumnData::I64(v)) => Some(varint_delta_encode(v.iter().copied())),
        (Encoding::ByteStreamSplit, ColumnData::F32(v)) => Some(byte_plane_encode(
            v.iter().flat_map(|x| x.to_le_bytes()),
            4,
            v.len(),
        )),
        (Encoding::ByteStreamSplit, ColumnData::F64(v)) => Some(byte_plane_encode(
            v.iter().flat_map(|x| x.to_le_bytes()),
            8,
            v.len(),
        )),
        (Encoding::Dict, _) => dict_encode(data),
        _ => None,
    }
}

/// Decodes a payload produced by [`encode_as`] back into a buffer of
/// `n` entries of physical type `pt`.
pub fn decode(
    enc: Encoding,
    bytes: &[u8],
    pt: PhysicalType,
    n: usize,
) -> Result<ColumnData, ColumnarError> {
    let mut r = Reader { bytes, pos: 0 };
    let data = match enc {
        Encoding::Plain => plain_decode(&mut r, pt, n)?,
        Encoding::BoolRle => {
            if pt != PhysicalType::Bool {
                return Err(ColumnarError::Format("BoolRle on non-bool".into()));
            }
            let packed = rle_decode(&mut r, n.div_ceil(8))?;
            ColumnData::Bool((0..n).map(|i| packed[i / 8] >> (i % 8) & 1 == 1).collect())
        }
        Encoding::DeltaVarint => {
            let vals = varint_delta_decode(&mut r, n)?;
            match pt {
                PhysicalType::Int32 => ColumnData::I32(vals.iter().map(|&x| x as i32).collect()),
                PhysicalType::Int64 => ColumnData::I64(vals),
                _ => return Err(ColumnarError::Format("DeltaVarint on non-int".into())),
            }
        }
        Encoding::ByteStreamSplit => {
            let width = match pt {
                PhysicalType::Float32 => 4,
                PhysicalType::Float64 => 8,
                _ => return Err(ColumnarError::Format("ByteStreamSplit on non-float".into())),
            };
            let mut planes = Vec::with_capacity(width);
            for _ in 0..width {
                planes.push(rle_decode(&mut r, n)?);
            }
            from_le_values(pt, n, |i, b| planes[b][i])?
        }
        Encoding::Dict => dict_decode(&mut r, pt, n)?,
    };
    if r.pos != bytes.len() {
        return Err(ColumnarError::Format(format!(
            "trailing bytes after decode: {} of {}",
            r.pos,
            bytes.len()
        )));
    }
    Ok(data)
}

fn plain_width(pt: PhysicalType) -> usize {
    match pt {
        PhysicalType::Bool => 1,
        _ => pt.width(),
    }
}

fn plain_encode(data: &ColumnData) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * plain_width(data.physical_type()));
    match data {
        ColumnData::Bool(v) => out.extend(v.iter().map(|&b| b as u8)),
        ColumnData::I32(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
        ColumnData::I64(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
        ColumnData::F32(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
        ColumnData::F64(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ColumnarError> {
        if self.pos + n > self.bytes.len() {
            return Err(ColumnarError::Format("truncated payload".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, ColumnarError> {
        Ok(self.take(1)?[0])
    }
}

fn plain_decode(r: &mut Reader, pt: PhysicalType, n: usize) -> Result<ColumnData, ColumnarError> {
    if pt == PhysicalType::Bool {
        let raw = r.take(n)?;
        return Ok(ColumnData::Bool(raw.iter().map(|&b| b != 0).collect()));
    }
    let raw = r.take(n * pt.width())?.to_vec();
    from_le_values(pt, n, |i, b| raw[i * pt.width() + b])
}

/// Reassembles `n` values of type `pt` from a little-endian byte accessor
/// `(value index, byte index) -> byte`.
fn from_le_values(
    pt: PhysicalType,
    n: usize,
    get: impl Fn(usize, usize) -> u8,
) -> Result<ColumnData, ColumnarError> {
    let le = |i: usize, w: usize| -> u64 {
        let mut x = 0u64;
        for b in 0..w {
            x |= (get(i, b) as u64) << (8 * b);
        }
        x
    };
    Ok(match pt {
        PhysicalType::Bool => ColumnData::Bool((0..n).map(|i| get(i, 0) != 0).collect()),
        PhysicalType::Int32 => ColumnData::I32((0..n).map(|i| le(i, 4) as u32 as i32).collect()),
        PhysicalType::Int64 => ColumnData::I64((0..n).map(|i| le(i, 8) as i64).collect()),
        PhysicalType::Float32 => {
            ColumnData::F32((0..n).map(|i| f32::from_bits(le(i, 4) as u32)).collect())
        }
        PhysicalType::Float64 => {
            ColumnData::F64((0..n).map(|i| f64::from_bits(le(i, 8))).collect())
        }
    })
}

fn bool_size(v: &[bool]) -> usize {
    // Bit-pack, then RLE the packed bytes.
    let mut bytes = Vec::with_capacity(v.len() / 8 + 1);
    for chunk in v.chunks(8) {
        let mut b = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            b |= (bit as u8) << i;
        }
        bytes.push(b);
    }
    rle_size(&bytes)
}

/// Byte length of a PackBits-style RLE encoding of a byte stream: repeated
/// runs of ≥3 cost a control byte plus the value; literal stretches cost
/// their own length plus one control byte per 127 literals. Incompressible
/// data therefore costs ~100.8% of its raw size, never 2×.
fn rle_size(bytes: &[u8]) -> usize {
    let mut size = 0usize;
    let mut literals = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let mut run = 1usize;
        while i + run < bytes.len() && bytes[i + run] == b && run < 130 {
            run += 1;
        }
        if run >= 3 {
            size += literal_cost(literals) + 2;
            literals = 0;
        } else {
            literals += run;
        }
        i += run;
    }
    size + literal_cost(literals)
}

/// The real encoder behind [`rle_size`] — same greedy segmentation, so the
/// output length equals the estimate byte for byte. Runs of 3..=130 become
/// `[0x80 | (run - 3), value]`; literal stretches become `[len, bytes…]`
/// in chunks of ≤ 127.
fn rle_encode(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut literals: Vec<u8> = Vec::new();
    let flush = |out: &mut Vec<u8>, literals: &mut Vec<u8>| {
        for chunk in literals.chunks(127) {
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
        literals.clear();
    };
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let mut run = 1usize;
        while i + run < bytes.len() && bytes[i + run] == b && run < 130 {
            run += 1;
        }
        if run >= 3 {
            flush(&mut out, &mut literals);
            out.push(0x80 | (run - 3) as u8);
            out.push(b);
        } else {
            literals.extend(std::iter::repeat_n(b, run));
        }
        i += run;
    }
    flush(&mut out, &mut literals);
    out
}

/// Decodes a PackBits stream until exactly `n` bytes are produced.
fn rle_decode(r: &mut Reader, n: usize) -> Result<Vec<u8>, ColumnarError> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let c = r.byte()?;
        if c & 0x80 != 0 {
            let run = (c & 0x7f) as usize + 3;
            let b = r.byte()?;
            out.extend(std::iter::repeat_n(b, run));
        } else {
            let len = c as usize;
            if len == 0 {
                return Err(ColumnarError::Format("zero-length literal run".into()));
            }
            out.extend_from_slice(r.take(len)?);
        }
    }
    if out.len() != n {
        return Err(ColumnarError::Format("RLE run overshoots buffer".into()));
    }
    Ok(out)
}

fn literal_cost(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        n + n.div_ceil(127)
    }
}

/// Byte length of the LEB128 varint encoding of `x`.
fn varint_len(x: u64) -> usize {
    (64 - x.leading_zeros()).div_ceil(7).max(1) as usize
}

fn varint_encode(mut x: u64, out: &mut Vec<u8>) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn varint_decode(r: &mut Reader) -> Result<u64, ColumnarError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = r.byte()?;
        x |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift >= 64 {
            return Err(ColumnarError::Format("varint too long".into()));
        }
    }
}

fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

fn varint_delta_size<I: IntoIterator<Item = i64>>(xs: I) -> usize {
    let mut prev = 0i64;
    let mut size = 0usize;
    for x in xs {
        size += varint_len(zigzag(x.wrapping_sub(prev)));
        prev = x;
    }
    size
}

fn varint_delta_encode<I: IntoIterator<Item = i64>>(xs: I) -> Vec<u8> {
    let mut prev = 0i64;
    let mut out = Vec::new();
    for x in xs {
        varint_encode(zigzag(x.wrapping_sub(prev)), &mut out);
        prev = x;
    }
    out
}

fn varint_delta_decode(r: &mut Reader, n: usize) -> Result<Vec<i64>, ColumnarError> {
    let mut prev = 0i64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        prev = prev.wrapping_add(unzigzag(varint_decode(r)?));
        out.push(prev);
    }
    Ok(out)
}

/// Splits a little-endian byte stream into `width` planes and RLE-encodes
/// each plane separately.
fn byte_plane_size<I: IntoIterator<Item = u8>>(bytes: I, width: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut planes: Vec<Vec<u8>> = vec![Vec::with_capacity(n); width];
    for (i, b) in bytes.into_iter().enumerate() {
        planes[i % width].push(b);
    }
    planes.iter().map(|p| rle_size(p)).sum()
}

fn byte_plane_encode<I: IntoIterator<Item = u8>>(bytes: I, width: usize, n: usize) -> Vec<u8> {
    if n == 0 {
        return Vec::new();
    }
    let mut planes: Vec<Vec<u8>> = vec![Vec::with_capacity(n); width];
    for (i, b) in bytes.into_iter().enumerate() {
        planes[i % width].push(b);
    }
    planes.iter().flat_map(|p| rle_encode(p)).collect()
}

/// Maximum dictionary size (codes are one byte).
const DICT_MAX: usize = 256;

/// The 64-bit little-endian image of entry `i` under the column's width
/// (bit pattern for floats, so NaN payloads dictionary-encode faithfully).
fn entry_bits(data: &ColumnData, i: usize) -> u64 {
    match data {
        ColumnData::Bool(v) => v[i] as u64,
        ColumnData::I32(v) => v[i] as u32 as u64,
        ColumnData::I64(v) => v[i] as u64,
        ColumnData::F32(v) => v[i].to_bits() as u64,
        ColumnData::F64(v) => v[i].to_bits(),
    }
}

/// Builds the dictionary (first-occurrence order) and per-entry codes, or
/// `None` when the column is boolean, empty, or exceeds [`DICT_MAX`]
/// distinct values.
fn dict_build(data: &ColumnData) -> Option<(Vec<u64>, Vec<u8>)> {
    if matches!(data, ColumnData::Bool(_)) || data.is_empty() {
        return None;
    }
    let mut values: Vec<u64> = Vec::new();
    let mut index: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
    let mut codes = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let bits = entry_bits(data, i);
        let code = match index.get(&bits) {
            Some(&c) => c,
            None => {
                if values.len() >= DICT_MAX {
                    return None;
                }
                let c = values.len() as u8;
                values.push(bits);
                index.insert(bits, c);
                c
            }
        };
        codes.push(code);
    }
    Some((values, codes))
}

fn dict_size(data: &ColumnData) -> Option<usize> {
    let (values, codes) = dict_build(data)?;
    let width = data.physical_type().width();
    Some(varint_len(values.len() as u64) + values.len() * width + rle_size(&codes))
}

fn dict_encode(data: &ColumnData) -> Option<Vec<u8>> {
    let (values, codes) = dict_build(data)?;
    let width = data.physical_type().width();
    let mut out = Vec::new();
    varint_encode(values.len() as u64, &mut out);
    for &bits in &values {
        out.extend_from_slice(&bits.to_le_bytes()[..width]);
    }
    out.extend(rle_encode(&codes));
    Some(out)
}

fn dict_decode(r: &mut Reader, pt: PhysicalType, n: usize) -> Result<ColumnData, ColumnarError> {
    let k = varint_decode(r)? as usize;
    if k > DICT_MAX {
        return Err(ColumnarError::Format(format!("dictionary too large: {k}")));
    }
    let width = pt.width();
    let mut values = Vec::with_capacity(k);
    for _ in 0..k {
        let raw = r.take(width)?;
        let mut x = 0u64;
        for (b, &byte) in raw.iter().enumerate() {
            x |= (byte as u64) << (8 * b);
        }
        values.push(x);
    }
    let codes = if n == 0 {
        Vec::new()
    } else {
        rle_decode(r, n)?
    };
    for &c in &codes {
        if c as usize >= k {
            return Err(ColumnarError::Format(format!("dict code {c} out of range")));
        }
    }
    from_le_values(pt, n, |i, b| (values[codes[i] as usize] >> (8 * b)) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_bools_compress_heavily() {
        let v = vec![true; 8000];
        let size = compressed_size(&ColumnData::Bool(v));
        assert!(
            size < 20,
            "constant flags should RLE to almost nothing, got {size}"
        );
    }

    #[test]
    fn sequential_ints_compress_heavily() {
        let v: Vec<i64> = (0..10_000).collect();
        let size = compressed_size(&ColumnData::I64(v));
        // Delta of 1 → 1 byte per entry.
        assert!(size <= 10_001, "got {size}");
        assert!(size > 5_000);
    }

    #[test]
    fn random_floats_barely_compress() {
        // Deterministic pseudo-random floats via a simple LCG.
        let mut x = 0x2545F4914F6CDD1Du64;
        let v: Vec<f32> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                20.0 + (x >> 40) as f32 / 1000.0
            })
            .collect();
        let raw = v.len() * 4;
        let size = compressed_size(&ColumnData::F32(v));
        let ratio = size as f64 / raw as f64;
        assert!(
            ratio > 0.6 && ratio <= 1.3,
            "physics-like floats should have a negligible compression ratio, got {ratio}"
        );
    }

    #[test]
    fn offsets_compress_like_small_deltas() {
        let offsets: Vec<u32> = (0..=1000u32).map(|i| i * 3).collect();
        let size = offsets_size(&offsets);
        assert!(size <= 1001, "got {size}");
    }

    #[test]
    fn varint_lengths() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn empty_buffers_are_zero() {
        assert_eq!(compressed_size(&ColumnData::F64(vec![])), 0);
        assert_eq!(compressed_size(&ColumnData::Bool(vec![])), 0);
        assert_eq!(compressed_size(&ColumnData::I32(vec![])), 0);
    }

    /// Representative buffers of every variant: constant, sequential,
    /// adversarial (forces literal RLE paths and dictionary overflow),
    /// and empty.
    fn sample_buffers() -> Vec<ColumnData> {
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        let noise: Vec<u64> = (0..1000).map(|_| rng()).collect();
        vec![
            ColumnData::Bool(vec![]),
            ColumnData::Bool(vec![true; 500]),
            ColumnData::Bool(noise.iter().map(|&x| x & 1 == 1).collect()),
            ColumnData::I32(vec![]),
            ColumnData::I32([-1, 1, 1, -1, 0, 1].repeat(80)),
            ColumnData::I32(noise.iter().map(|&x| x as i32).collect()),
            ColumnData::I64(vec![]),
            ColumnData::I64((0..1000).collect()),
            ColumnData::I64(vec![i64::MIN, i64::MAX, 0, -1, 1]),
            ColumnData::I64(noise.iter().map(|&x| x as i64).collect()),
            ColumnData::F32(vec![]),
            ColumnData::F32(vec![0.105_658_37; 400]),
            ColumnData::F32(noise.iter().map(|&x| (x >> 40) as f32 / 7.0).collect()),
            ColumnData::F64(vec![]),
            ColumnData::F64(vec![0.0, -0.0, f64::NAN, f64::INFINITY, -1.5e300]),
            ColumnData::F64(noise.iter().map(|&x| f64::from_bits(x | 1 << 52)).collect()),
        ]
    }

    fn bits_equal(a: &ColumnData, b: &ColumnData) -> bool {
        a.len() == b.len() && (0..a.len()).all(|i| entry_bits(a, i) == entry_bits(b, i))
    }

    #[test]
    fn every_encoding_round_trips_every_variant() {
        for data in sample_buffers() {
            for &enc in candidates(data.physical_type()) {
                let Some(bytes) = encode_as(&data, enc) else {
                    assert_eq!(
                        encoded_size(&data, enc),
                        None,
                        "size/encode applicability must agree for {enc:?}"
                    );
                    continue;
                };
                assert_eq!(
                    bytes.len(),
                    encoded_size(&data, enc).unwrap(),
                    "measured size must equal estimated size for {enc:?}"
                );
                let back = decode(enc, &bytes, data.physical_type(), data.len()).unwrap();
                assert_eq!(back.physical_type(), data.physical_type());
                assert!(
                    bits_equal(&data, &back),
                    "lossy round trip under {enc:?} for {:?}",
                    data.physical_type()
                );
            }
        }
    }

    #[test]
    fn chosen_encoding_never_exceeds_type_default_estimate() {
        for data in sample_buffers() {
            let (enc, size) = choose(&data);
            assert!(
                size <= compressed_size(&data),
                "{enc:?} chose {size} > baseline {} for {:?}",
                compressed_size(&data),
                data.physical_type()
            );
            // The choice is real: its payload measures exactly `size`.
            assert_eq!(encode_as(&data, enc).unwrap().len(), size);
        }
    }

    #[test]
    fn dictionary_wins_on_low_cardinality_columns() {
        // A constant f32 column (a calibration constant, a particle mass):
        // byte-stream-split still pays RLE overhead per plane, the
        // dictionary collapses to one value + constant codes.
        let constant = ColumnData::F32(vec![0.105_658_37; 4000]);
        let (enc, size) = choose(&constant);
        assert_eq!(enc, Encoding::Dict);
        assert!(size < 100, "constant column should collapse, got {size}");

        // Charges ∈ {−1, 1}: delta-varint pays a byte per value, the
        // dictionary RLEs two codes.
        let mut x = 7u64;
        let charges = ColumnData::I32(
            (0..4000)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if x >> 63 == 0 {
                        1
                    } else {
                        -1
                    }
                })
                .collect(),
        );
        let (_, dict) = (
            Encoding::Dict,
            encoded_size(&charges, Encoding::Dict).unwrap(),
        );
        let delta = encoded_size(&charges, Encoding::DeltaVarint).unwrap();
        assert!(dict <= delta + 16, "dict {dict} vs delta {delta}");
    }

    #[test]
    fn dictionary_bails_on_high_cardinality() {
        let v: Vec<i64> = (0..1000).collect();
        assert_eq!(encoded_size(&ColumnData::I64(v), Encoding::Dict), None);
    }

    #[test]
    fn plain_bounds_pathological_ints() {
        // Full-range random i64s: zig-zag deltas mostly cost 10 bytes per
        // value, plain costs 8, and >256 distinct values rule the
        // dictionary out — the adaptive choice must take the raw bound.
        let mut x = 0x9E3779B97F4A7C15u64;
        let v: Vec<i64> = (0..500)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x as i64
            })
            .collect();
        let data = ColumnData::I64(v);
        assert!(encoded_size(&data, Encoding::DeltaVarint).unwrap() > 500 * 8);
        let (enc, size) = choose(&data);
        assert_eq!(enc, Encoding::Plain);
        assert_eq!(size, 500 * 8);
    }
}
