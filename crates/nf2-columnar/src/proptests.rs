//! Property tests: arbitrary NF² rows round-trip through the columnar
//! representation and the file format, pushdown accounting is monotone,
//! and the chunk cache is an exact byte-budgeted LRU.

use std::sync::Arc;

use proptest::prelude::*;

use nested_value::Value;

use crate::cache::{ChunkCache, ChunkKey};
use crate::column::{ColumnChunk, ColumnData};
use crate::project::{Projection, PushdownCapability};
use crate::scan::ScanRequest;
use crate::schema::{DataType, Field, Schema};
use crate::select::{apply_predicates, ScalarPredicate, SelCmp, SelValue};
use crate::table::TableBuilder;

fn test_schema() -> Schema {
    Schema::new(vec![
        Field::new("event", DataType::i64()),
        Field::new(
            "MET",
            DataType::Struct(vec![
                Field::new("pt", DataType::f64()),
                Field::new("phi", DataType::f64()),
            ]),
        ),
        Field::new(
            "Jet",
            DataType::particle_list(vec![
                Field::new("pt", DataType::f64()),
                Field::new("tag", DataType::bool()),
                Field::new("q", DataType::i32()),
            ]),
        ),
    ])
    .unwrap()
}

prop_compose! {
    fn arb_jet()(pt in 0.0..500.0f64, tag in any::<bool>(), q in -1i32..=1) -> Value {
        Value::struct_from(vec![
            ("pt", Value::Float(pt)),
            ("tag", Value::Bool(tag)),
            ("q", Value::Int(q as i64)),
        ])
    }
}

prop_compose! {
    fn arb_row()(
        event in 0i64..1_000_000,
        met_pt in 0.0..300.0f64,
        met_phi in -std::f64::consts::PI..std::f64::consts::PI,
        jets in proptest::collection::vec(arb_jet(), 0..12),
    ) -> Value {
        Value::struct_from(vec![
            ("event", Value::Int(event)),
            ("MET", Value::struct_from(vec![
                ("pt", Value::Float(met_pt)),
                ("phi", Value::Float(met_phi)),
            ])),
            ("Jet", Value::array(jets)),
        ])
    }
}

prop_compose! {
    fn arb_pred()(
        leaf_i in 0usize..3,
        cmp_i in 0usize..6,
        use_int in any::<bool>(),
        int_lit in -5i64..1_000_005,
        float_lit in -10.0..310.0f64,
    ) -> ScalarPredicate {
        const LEAVES: [&str; 3] = ["event", "MET.pt", "MET.phi"];
        const CMPS: [SelCmp; 6] = [
            SelCmp::Lt, SelCmp::Le, SelCmp::Gt, SelCmp::Ge, SelCmp::Eq, SelCmp::Ne,
        ];
        ScalarPredicate {
            leaf: nested_value::Path::parse(LEAVES[leaf_i]),
            cmp: CMPS[cmp_i],
            value: if use_int {
                SelValue::Int(int_lit)
            } else {
                SelValue::Float(float_lit)
            },
        }
    }
}

/// The semantics the kernels claim to replicate: materialize the row as a
/// `Value`, walk to the leaf, compare with `nested_value::ops::compare`.
fn naive_matches(row: &Value, pred: &ScalarPredicate) -> bool {
    let mut cur = row;
    for seg in pred.leaf.segments() {
        cur = cur.as_struct().unwrap().get(seg).unwrap();
    }
    let lit = match pred.value {
        SelValue::Int(i) => Value::Int(i),
        SelValue::Float(f) => Value::Float(f),
    };
    pred.cmp
        .accepts(nested_value::ops::compare(cur, &lit).unwrap())
}

fn cache_key(k: usize) -> ChunkKey {
    ChunkKey {
        table: 7,
        group: k as u32,
        leaf: nested_value::Path::parse("MET.pt"),
    }
}

/// Chunk size is a function of the key: in an immutable table one
/// (group, leaf) always seals to the same chunk, and the cache relies on
/// that (a re-put refreshes the value but cannot change the cost). Sizes
/// straddle the proptest budgets so evictions and oversized rejections
/// both occur.
fn cache_chunk(k: usize) -> Arc<ColumnChunk> {
    const ELEMS: [usize; 6] = [4, 12, 30, 64, 120, 220];
    let n = ELEMS[k % ELEMS.len()];
    Arc::new(ColumnChunk::seal(
        ColumnData::F64((0..n).map(|i| (i * (k + 3)) as f64 * 0.37).collect()),
        None,
    ))
}

prop_compose! {
    /// One cache operation: `(true, k)` = get key k, `(false, k)` = put key k.
    fn arb_cache_op()(is_get in any::<bool>(), k in 0usize..6) -> (bool, usize) {
        (is_get, k)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vectorized selection over typed chunk buffers is row-for-row
    /// identical to materializing every row and filtering `Value`s, and
    /// late materialization returns exactly the surviving rows in order.
    #[test]
    fn vectorized_selection_matches_naive(
        rows in proptest::collection::vec(arb_row(), 0..40),
        preds in proptest::collection::vec(arb_pred(), 0..4),
        rg in 1usize..9,
    ) {
        let mut b = TableBuilder::new("t", test_schema(), rg);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let leaves: Vec<_> = t.schema().leaves().iter().collect();
        let mut got = Vec::new();
        for g in t.row_groups() {
            let sel = apply_predicates(g, &preds).unwrap();
            prop_assert_eq!(sel.n_rows(), g.n_rows());
            let all = g.read_rows(t.schema(), &leaves).unwrap();
            let surviving: Vec<u32> = (0..all.len())
                .filter(|&r| preds.iter().all(|p| naive_matches(&all[r], p)))
                .map(|r| r as u32)
                .collect();
            prop_assert_eq!(sel.rows(), &surviving[..]);
            got.extend(g.read_rows_selected(t.schema(), &leaves, &sel).unwrap());
        }
        let expect: Vec<Value> = rows
            .iter()
            .filter(|r| preds.iter().all(|p| naive_matches(r, p)))
            .cloned()
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// rows → columnar → rows is the identity, across row-group boundaries.
    #[test]
    fn columnar_roundtrip(rows in proptest::collection::vec(arb_row(), 0..40), rg in 1usize..7) {
        let mut b = TableBuilder::new("t", test_schema(), rg);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        prop_assert_eq!(t.n_rows(), rows.len());
        let leaves: Vec<_> = t.schema().leaves().iter().collect();
        let got: Vec<Value> = t.row_groups().iter()
            .flat_map(|g| g.read_rows(t.schema(), &leaves).unwrap())
            .collect();
        prop_assert_eq!(got, rows);
    }

    /// rows → columnar → file bytes → columnar → rows is the identity.
    #[test]
    fn file_roundtrip(rows in proptest::collection::vec(arb_row(), 0..20), rg in 1usize..5) {
        let mut b = TableBuilder::new("t", test_schema(), rg);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let mut buf = Vec::new();
        crate::file::write_table(&t, &mut buf).unwrap();
        let t2 = crate::file::read_table(&mut &buf[..]).unwrap();
        let leaves: Vec<_> = t2.schema().leaves().iter().collect();
        let got: Vec<Value> = t2.row_groups().iter()
            .flat_map(|g| g.read_rows(t2.schema(), &leaves).unwrap())
            .collect();
        prop_assert_eq!(got, rows);
    }

    /// Scan-byte accounting is monotone in pushdown capability.
    #[test]
    fn pushdown_monotone(rows in proptest::collection::vec(arb_row(), 1..30)) {
        let mut b = TableBuilder::new("t", test_schema(), 8);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let p = Projection::of(["Jet.pt", "MET.pt"]);
        let run = |cap| ScanRequest::new(&t, &p).capability(cap).run().unwrap().stats;
        let fine = run(PushdownCapability::IndividualLeaves);
        let coarse = run(PushdownCapability::WholeStructs);
        let none = run(PushdownCapability::None);
        prop_assert!(fine.bytes_scanned <= coarse.bytes_scanned);
        prop_assert!(coarse.bytes_scanned <= none.bytes_scanned);
        prop_assert!(fine.columns_read <= coarse.columns_read);
        // Ideal accounting does not depend on capability.
        prop_assert_eq!(fine.ideal_compressed_bytes, none.ideal_compressed_bytes);
        prop_assert_eq!(fine.rows, rows.len() as u64);
    }

    /// Zone-map pruning is sound and conservative: a pruned row group
    /// never contains a row the full conjunction would accept (so results
    /// are identical with pruning on and off), and the pruned scan's
    /// bytes decompose exactly into the unpruned scan's
    /// (`bytes_scanned + bytes_pruned` is conserved).
    #[test]
    fn pruning_never_drops_matching_rows(
        rows in proptest::collection::vec(arb_row(), 0..40),
        preds in proptest::collection::vec(arb_pred(), 0..4),
        rg in 1usize..9,
    ) {
        let mut b = TableBuilder::new("t", test_schema(), rg);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let skip = crate::stats::skip_mask(&t, &preds);
        let leaves: Vec<_> = t.schema().leaves().iter().collect();
        for (g, skipped) in t.row_groups().iter().zip(&skip) {
            if !*skipped {
                continue;
            }
            let all = g.read_rows(t.schema(), &leaves).unwrap();
            for row in &all {
                prop_assert!(
                    !preds.iter().all(|p| naive_matches(row, p)),
                    "pruned group contains a matching row: {row:?} under {preds:?}"
                );
            }
        }
        let p = Projection::of(["event", "MET.pt", "MET.phi"]);
        let off = ScanRequest::new(&t, &p)
            .capability(PushdownCapability::IndividualLeaves)
            .run().unwrap();
        let on = ScanRequest::new(&t, &p)
            .capability(PushdownCapability::IndividualLeaves)
            .prune(&preds)
            .run().unwrap();
        prop_assert_eq!(
            on.stats.bytes_scanned + on.stats.bytes_pruned,
            off.stats.bytes_scanned
        );
        prop_assert_eq!(on.stats.groups_pruned as usize,
                        skip.iter().filter(|&&s| s).count());
    }

    /// The chunk cache behaves as an exact byte-budgeted LRU: replayed
    /// against a reference model, after **every** operation resident
    /// bytes stay within budget and match the model, hits return the
    /// identical chunk (same `Arc`, hence same bytes) without evicting,
    /// and membership — including which victim each eviction chose —
    /// agrees with the model.
    #[test]
    fn chunk_cache_is_an_exact_lru(
        ops in proptest::collection::vec(arb_cache_op(), 1..80),
        budget in 100usize..1500,
    ) {
        let cache = ChunkCache::new(budget);
        // Reference model: key → chunk, plus LRU order (front = victim).
        let mut resident: std::collections::HashMap<usize, Arc<ColumnChunk>> =
            std::collections::HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        for &(is_get, k) in &ops {
            let key = cache_key(k);
            if is_get {
                let evictions_before = cache.counters().evictions;
                let got = cache.get(&key);
                match resident.get(&k) {
                    Some(want) => {
                        let got = got.expect("model says resident");
                        prop_assert!(Arc::ptr_eq(&got, want), "hit returns the stored chunk");
                        let pos = order.iter().position(|&o| o == k).expect("ordered");
                        order.remove(pos);
                        order.push(k);
                    }
                    None => prop_assert!(got.is_none(), "model says absent"),
                }
                // A lookup never evicts.
                prop_assert_eq!(cache.counters().evictions, evictions_before);
            } else {
                let chunk = cache_chunk(k);
                let cost = chunk.compressed_bytes;
                cache.put(key, chunk.clone());
                if let std::collections::hash_map::Entry::Occupied(mut e) = resident.entry(k) {
                    // Refresh: value and recency, no size change (chunks
                    // of one key are identical in an immutable table).
                    e.insert(chunk);
                    let pos = order.iter().position(|&o| o == k).expect("ordered");
                    order.remove(pos);
                    order.push(k);
                } else if cost <= budget {
                    let used = |r: &std::collections::HashMap<usize, Arc<ColumnChunk>>|
                        r.values().map(|c| c.compressed_bytes).sum::<usize>();
                    while used(&resident) + cost > budget {
                        let victim = order.remove(0);
                        resident.remove(&victim);
                    }
                    resident.insert(k, chunk);
                    order.push(k);
                }
                // An oversized chunk is not admitted and evicts nothing.
            }
            prop_assert!(cache.resident_bytes() <= budget, "budget respected after every op");
            let model_bytes: usize = resident.values().map(|c| c.compressed_bytes).sum();
            prop_assert_eq!(cache.resident_bytes(), model_bytes);
            prop_assert_eq!(cache.len(), resident.len());
        }
    }

    /// `head(n)` preserves row prefix and never exceeds n rows.
    #[test]
    fn head_is_prefix(rows in proptest::collection::vec(arb_row(), 0..25), n in 0usize..30, rg in 1usize..6) {
        let mut b = TableBuilder::new("t", test_schema(), rg);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let h = t.head(n);
        let expect = n.min(rows.len());
        prop_assert_eq!(h.n_rows(), expect);
        let leaves: Vec<_> = h.schema().leaves().iter().collect();
        let got: Vec<Value> = h.row_groups().iter()
            .flat_map(|g| g.read_rows(h.schema(), &leaves).unwrap())
            .collect();
        prop_assert_eq!(&got[..], &rows[..expect]);
    }
}

/// Concurrency: N threads hammering one small cache with a deterministic
/// mixed scan/evict workload. Exact LRU order is interleaving-dependent,
/// but the *invariants* are not:
///
/// * the byte budget holds after every single operation;
/// * no lookup is lost or double-counted — at quiescence
///   `hits + misses` equals exactly the lookups issued (`get` + `admit`);
/// * entry accounting balances: `len == insertions − evictions`;
/// * every hit returns a chunk whose cost matches its key (no torn or
///   cross-keyed value).
#[test]
fn chunk_cache_invariants_hold_under_contention() {
    const THREADS: u64 = 8;
    const OPS: u64 = 600;
    const KEYS: u64 = 12;
    for seed in [1u64, 2, 3] {
        let budget = 500 + (seed as usize) * 331;
        let cache = ChunkCache::new(budget);
        let lookups: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let cache = &cache;
                    scope.spawn(move || {
                        let mut state = seed ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        let mut rng = move || {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            state
                        };
                        let mut lookups = 0u64;
                        for _ in 0..OPS {
                            let k = (rng() % KEYS) as usize;
                            match rng() % 3 {
                                0 => {
                                    if let Some(c) = cache.get(&cache_key(k)) {
                                        assert_eq!(
                                            c.compressed_bytes,
                                            cache_chunk(k).compressed_bytes,
                                            "hit returned a chunk of the wrong key"
                                        );
                                    }
                                    lookups += 1;
                                }
                                1 => {
                                    cache.admit(&cache_key(k), || cache_chunk(k));
                                    lookups += 1;
                                }
                                _ => {
                                    cache.put(cache_key(k), cache_chunk(k));
                                }
                            }
                            assert!(
                                cache.resident_bytes() <= budget,
                                "budget exceeded mid-flight"
                            );
                        }
                        lookups
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let c = cache.counters();
        assert_eq!(
            c.hits + c.misses,
            lookups,
            "lost or duplicated hit/miss accounting (seed {seed})"
        );
        assert!(c.insertions >= c.evictions);
        assert_eq!(
            cache.len() as u64,
            c.insertions - c.evictions,
            "entry accounting out of balance (seed {seed})"
        );
        assert!(cache.resident_bytes() <= budget);
        assert!(
            c.hits > 0 && c.misses > 0 && c.evictions > 0,
            "workload too tame"
        );
    }
}
