//! Property tests: arbitrary NF² rows round-trip through the columnar
//! representation and the file format, and pushdown accounting is monotone.

use proptest::prelude::*;

use nested_value::Value;

use crate::project::{Projection, PushdownCapability};
use crate::scan::scan_stats;
use crate::schema::{DataType, Field, Schema};
use crate::select::{apply_predicates, ScalarPredicate, SelCmp, SelValue};
use crate::table::TableBuilder;

fn test_schema() -> Schema {
    Schema::new(vec![
        Field::new("event", DataType::i64()),
        Field::new(
            "MET",
            DataType::Struct(vec![
                Field::new("pt", DataType::f64()),
                Field::new("phi", DataType::f64()),
            ]),
        ),
        Field::new(
            "Jet",
            DataType::particle_list(vec![
                Field::new("pt", DataType::f64()),
                Field::new("tag", DataType::bool()),
                Field::new("q", DataType::i32()),
            ]),
        ),
    ])
    .unwrap()
}

prop_compose! {
    fn arb_jet()(pt in 0.0..500.0f64, tag in any::<bool>(), q in -1i32..=1) -> Value {
        Value::struct_from(vec![
            ("pt", Value::Float(pt)),
            ("tag", Value::Bool(tag)),
            ("q", Value::Int(q as i64)),
        ])
    }
}

prop_compose! {
    fn arb_row()(
        event in 0i64..1_000_000,
        met_pt in 0.0..300.0f64,
        met_phi in -std::f64::consts::PI..std::f64::consts::PI,
        jets in proptest::collection::vec(arb_jet(), 0..12),
    ) -> Value {
        Value::struct_from(vec![
            ("event", Value::Int(event)),
            ("MET", Value::struct_from(vec![
                ("pt", Value::Float(met_pt)),
                ("phi", Value::Float(met_phi)),
            ])),
            ("Jet", Value::array(jets)),
        ])
    }
}

prop_compose! {
    fn arb_pred()(
        leaf_i in 0usize..3,
        cmp_i in 0usize..6,
        use_int in any::<bool>(),
        int_lit in -5i64..1_000_005,
        float_lit in -10.0..310.0f64,
    ) -> ScalarPredicate {
        const LEAVES: [&str; 3] = ["event", "MET.pt", "MET.phi"];
        const CMPS: [SelCmp; 6] = [
            SelCmp::Lt, SelCmp::Le, SelCmp::Gt, SelCmp::Ge, SelCmp::Eq, SelCmp::Ne,
        ];
        ScalarPredicate {
            leaf: nested_value::Path::parse(LEAVES[leaf_i]),
            cmp: CMPS[cmp_i],
            value: if use_int {
                SelValue::Int(int_lit)
            } else {
                SelValue::Float(float_lit)
            },
        }
    }
}

/// The semantics the kernels claim to replicate: materialize the row as a
/// `Value`, walk to the leaf, compare with `nested_value::ops::compare`.
fn naive_matches(row: &Value, pred: &ScalarPredicate) -> bool {
    let mut cur = row;
    for seg in pred.leaf.segments() {
        cur = cur.as_struct().unwrap().get(seg).unwrap();
    }
    let lit = match pred.value {
        SelValue::Int(i) => Value::Int(i),
        SelValue::Float(f) => Value::Float(f),
    };
    pred.cmp
        .accepts(nested_value::ops::compare(cur, &lit).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vectorized selection over typed chunk buffers is row-for-row
    /// identical to materializing every row and filtering `Value`s, and
    /// late materialization returns exactly the surviving rows in order.
    #[test]
    fn vectorized_selection_matches_naive(
        rows in proptest::collection::vec(arb_row(), 0..40),
        preds in proptest::collection::vec(arb_pred(), 0..4),
        rg in 1usize..9,
    ) {
        let mut b = TableBuilder::new("t", test_schema(), rg);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let leaves: Vec<_> = t.schema().leaves().iter().collect();
        let mut got = Vec::new();
        for g in t.row_groups() {
            let sel = apply_predicates(g, &preds).unwrap();
            prop_assert_eq!(sel.n_rows(), g.n_rows());
            let all = g.read_rows(t.schema(), &leaves).unwrap();
            let surviving: Vec<u32> = (0..all.len())
                .filter(|&r| preds.iter().all(|p| naive_matches(&all[r], p)))
                .map(|r| r as u32)
                .collect();
            prop_assert_eq!(sel.rows(), &surviving[..]);
            got.extend(g.read_rows_selected(t.schema(), &leaves, &sel).unwrap());
        }
        let expect: Vec<Value> = rows
            .iter()
            .filter(|r| preds.iter().all(|p| naive_matches(r, p)))
            .cloned()
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// rows → columnar → rows is the identity, across row-group boundaries.
    #[test]
    fn columnar_roundtrip(rows in proptest::collection::vec(arb_row(), 0..40), rg in 1usize..7) {
        let mut b = TableBuilder::new("t", test_schema(), rg);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        prop_assert_eq!(t.n_rows(), rows.len());
        let leaves: Vec<_> = t.schema().leaves().iter().collect();
        let got: Vec<Value> = t.row_groups().iter()
            .flat_map(|g| g.read_rows(t.schema(), &leaves).unwrap())
            .collect();
        prop_assert_eq!(got, rows);
    }

    /// rows → columnar → file bytes → columnar → rows is the identity.
    #[test]
    fn file_roundtrip(rows in proptest::collection::vec(arb_row(), 0..20), rg in 1usize..5) {
        let mut b = TableBuilder::new("t", test_schema(), rg);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let mut buf = Vec::new();
        crate::file::write_table(&t, &mut buf).unwrap();
        let t2 = crate::file::read_table(&mut &buf[..]).unwrap();
        let leaves: Vec<_> = t2.schema().leaves().iter().collect();
        let got: Vec<Value> = t2.row_groups().iter()
            .flat_map(|g| g.read_rows(t2.schema(), &leaves).unwrap())
            .collect();
        prop_assert_eq!(got, rows);
    }

    /// Scan-byte accounting is monotone in pushdown capability.
    #[test]
    fn pushdown_monotone(rows in proptest::collection::vec(arb_row(), 1..30)) {
        let mut b = TableBuilder::new("t", test_schema(), 8);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let p = Projection::of(["Jet.pt", "MET.pt"]);
        let fine = scan_stats(&t, &p, PushdownCapability::IndividualLeaves).unwrap();
        let coarse = scan_stats(&t, &p, PushdownCapability::WholeStructs).unwrap();
        let none = scan_stats(&t, &p, PushdownCapability::None).unwrap();
        prop_assert!(fine.bytes_scanned <= coarse.bytes_scanned);
        prop_assert!(coarse.bytes_scanned <= none.bytes_scanned);
        prop_assert!(fine.columns_read <= coarse.columns_read);
        // Ideal accounting does not depend on capability.
        prop_assert_eq!(fine.ideal_compressed_bytes, none.ideal_compressed_bytes);
        prop_assert_eq!(fine.rows, rows.len() as u64);
    }

    /// `head(n)` preserves row prefix and never exceeds n rows.
    #[test]
    fn head_is_prefix(rows in proptest::collection::vec(arb_row(), 0..25), n in 0usize..30, rg in 1usize..6) {
        let mut b = TableBuilder::new("t", test_schema(), rg);
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let h = t.head(n);
        let expect = n.min(rows.len());
        prop_assert_eq!(h.n_rows(), expect);
        let leaves: Vec<_> = h.schema().leaves().iter().collect();
        let got: Vec<Value> = h.row_groups().iter()
            .flat_map(|g| g.read_rows(h.schema(), &leaves).unwrap())
            .collect();
        prop_assert_eq!(&got[..], &rows[..expect]);
    }
}
