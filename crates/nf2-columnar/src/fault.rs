//! Deterministic fault injection for the scan path.
//!
//! Real QaaS backends sit on storage that fails: reads time out, objects
//! arrive truncated, checksums mismatch, tail latencies spike. The paper's
//! measurements implicitly assume none of that happens; the chaos layer
//! makes the assumption explicit and testable. A [`FaultInjector`] is
//! attached to a scan (via [`crate::scan::ScanFaults`]) and decides, for
//! every physically read `(table fingerprint, row group, leaf)` chunk,
//! whether that read fails — **deterministically**, as a pure function of
//! the injector seed and the chunk coordinates, so a failing run replays
//! bit-for-bit from its seed.
//!
//! Fault classes ([`FaultClass`]):
//!
//! * `Io` — the storage read itself errors (transient in real systems);
//! * `ChecksumMismatch` — the chunk arrives but its checksum does not
//!   match (bit rot, partial overwrite);
//! * `TruncatedRowGroup` — the row group ends early: a leaf chunk is
//!   shorter than the group's row count;
//! * `Latency` — the read succeeds but only after an injected delay
//!   (exercises deadlines and watchdogs, never corrupts results);
//! * `Panic` — the reader panics mid-scan (exercises worker-pool panic
//!   safety; off unless explicitly enabled).
//!
//! **Transient vs persistent.** `transient_attempts = k > 0` means a
//! faulting chunk fails its first `k` reads and then recovers — the model
//! of a retryable storage hiccup, and what the `query-service` retry path
//! exercises. `transient_attempts = 0` means the fault is persistent
//! (media corruption): every read fails, and the only correct behaviour
//! is a typed error, never a wrong histogram.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use nested_value::Path;
use parking_lot::Mutex;

/// The taxonomy of injectable scan faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Storage read failed outright.
    Io,
    /// Chunk read back with a checksum mismatch.
    ChecksumMismatch,
    /// Row group shorter than its declared row count.
    TruncatedRowGroup,
    /// Read succeeded after an injected delay (not an error).
    Latency,
    /// Reader panicked mid-scan (not an error value — it unwinds).
    Panic,
}

impl FaultClass {
    /// Human-readable class name used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::Io => "io error",
            FaultClass::ChecksumMismatch => "checksum mismatch",
            FaultClass::TruncatedRowGroup => "truncated row group",
            FaultClass::Latency => "injected latency",
            FaultClass::Panic => "injected panic",
        }
    }

    /// Whether a retry of the same read can plausibly succeed. All
    /// injected storage faults are modeled as retryable at the error
    /// level; whether a retry *does* succeed is governed by
    /// [`FaultConfig::transient_attempts`].
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            FaultClass::Io | FaultClass::ChecksumMismatch | FaultClass::TruncatedRowGroup
        )
    }
}

/// A typed, contextful scan fault. `Clone + PartialEq` so the engine error
/// enums that carry it stay comparable (unlike [`crate::ColumnarError`],
/// which holds a non-clonable `std::io::Error`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanError {
    /// What failed.
    pub class: FaultClass,
    /// Name of the table being scanned.
    pub table: String,
    /// Row group whose read failed.
    pub row_group: u32,
    /// Leaf column whose chunk failed (dotted path, e.g. `Jet.pt`).
    pub leaf: String,
    /// 1-based read attempt for this chunk (grows across retries).
    pub attempt: u32,
}

impl ScanError {
    /// Whether the service retry path should re-run the query.
    pub fn retryable(&self) -> bool {
        self.class.retryable()
    }
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reading table '{}' row group {} leaf {} (attempt {})",
            self.class.name(),
            self.table,
            self.row_group,
            self.leaf,
            self.attempt
        )
    }
}

/// Probabilities and knobs for a [`FaultInjector`]. All probabilities are
/// per physically read chunk and must sum to ≤ 1.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// P(io error) per chunk read.
    pub p_io: f64,
    /// P(checksum mismatch) per chunk read.
    pub p_checksum: f64,
    /// P(truncated row group) per chunk read.
    pub p_truncated: f64,
    /// P(injected latency) per chunk read.
    pub p_latency: f64,
    /// P(panic) per chunk read. Keep 0 except in panic-safety tests.
    pub p_panic: f64,
    /// Sleep injected by a latency fault.
    pub latency: Duration,
    /// How many reads of a faulting chunk fail before it recovers;
    /// `0` means the fault is persistent (never recovers).
    pub transient_attempts: u32,
}

impl FaultConfig {
    /// A config that injects nothing (useful as a base for struct update).
    pub fn off(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            p_io: 0.0,
            p_checksum: 0.0,
            p_truncated: 0.0,
            p_latency: 0.0,
            p_panic: 0.0,
            latency: Duration::from_micros(50),
            transient_attempts: 1,
        }
    }

    /// A config injecting a single fault class with probability `p`.
    pub fn only(class: FaultClass, p: f64, seed: u64) -> FaultConfig {
        let mut c = FaultConfig::off(seed);
        match class {
            FaultClass::Io => c.p_io = p,
            FaultClass::ChecksumMismatch => c.p_checksum = p,
            FaultClass::TruncatedRowGroup => c.p_truncated = p,
            FaultClass::Latency => c.p_latency = p,
            FaultClass::Panic => c.p_panic = p,
        }
        c
    }
}

/// Monotonic counters of injected faults, by class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Io faults injected.
    pub io: u64,
    /// Checksum faults injected.
    pub checksum: u64,
    /// Truncation faults injected.
    pub truncated: u64,
    /// Latency delays injected.
    pub latency: u64,
    /// Reads that recovered because their transient budget was exhausted.
    pub recovered: u64,
}

impl FaultCounters {
    /// Total hard faults (errors) injected.
    pub fn errors(&self) -> u64 {
        self.io + self.checksum + self.truncated
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct FaultKey {
    fingerprint: u64,
    group: u32,
    leaf: Path,
}

/// Deterministic, seeded fault injector shared by all engines touching a
/// table. Thread-safe; decisions are pure functions of
/// `(seed, fingerprint, row group, leaf)`, while per-chunk attempt counts
/// (for transient-fault recovery) are tracked internally.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    attempts: Mutex<HashMap<FaultKey, u32>>,
    io: AtomicU64,
    checksum: AtomicU64,
    truncated: AtomicU64,
    latency: AtomicU64,
    recovered: AtomicU64,
}

impl std::fmt::Debug for FaultKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}/{}/{}", self.fingerprint, self.group, self.leaf)
    }
}

/// splitmix64 — the same tiny generator the proptest shim uses; good
/// enough to decorrelate fault decisions across chunk coordinates.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix_str(mut h: u64, s: &str) -> u64 {
    for b in s.as_bytes() {
        h = splitmix64(h ^ *b as u64);
    }
    h
}

impl FaultInjector {
    /// Builds an injector from a config.
    pub fn new(config: FaultConfig) -> FaultInjector {
        FaultInjector {
            config,
            attempts: Mutex::new(HashMap::new()),
            io: AtomicU64::new(0),
            checksum: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            latency: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        }
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            io: self.io.load(Ordering::Relaxed),
            checksum: self.checksum.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            latency: self.latency.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }

    /// Forgets all per-chunk attempt history, so transient faults fire
    /// again from scratch (as if the injector were freshly built).
    pub fn reset_attempts(&self) {
        self.attempts.lock().clear();
    }

    /// The deterministic fault decision for one chunk, independent of
    /// attempt history: `None` (clean) or the faulting class.
    pub fn decide(&self, fingerprint: u64, group: u32, leaf: &Path) -> Option<FaultClass> {
        let mut h = splitmix64(self.config.seed ^ splitmix64(fingerprint));
        h = splitmix64(h ^ group as u64);
        h = mix_str(h, &leaf.to_string());
        // 53 high bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let c = &self.config;
        let mut acc = c.p_io;
        if u < acc {
            return Some(FaultClass::Io);
        }
        acc += c.p_checksum;
        if u < acc {
            return Some(FaultClass::ChecksumMismatch);
        }
        acc += c.p_truncated;
        if u < acc {
            return Some(FaultClass::TruncatedRowGroup);
        }
        acc += c.p_latency;
        if u < acc {
            return Some(FaultClass::Latency);
        }
        acc += c.p_panic;
        if u < acc {
            return Some(FaultClass::Panic);
        }
        None
    }

    /// One physical chunk read: returns `Ok(())` (possibly after an
    /// injected delay) or the typed fault. Panic faults unwind.
    pub fn on_chunk_read(
        &self,
        table: &str,
        fingerprint: u64,
        group: u32,
        leaf: &Path,
    ) -> Result<(), ScanError> {
        let Some(class) = self.decide(fingerprint, group, leaf) else {
            return Ok(());
        };
        if class == FaultClass::Latency {
            self.latency.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.config.latency);
            return Ok(());
        }
        let attempt = {
            let mut attempts = self.attempts.lock();
            let n = attempts
                .entry(FaultKey {
                    fingerprint,
                    group,
                    leaf: leaf.clone(),
                })
                .or_insert(0);
            *n += 1;
            *n
        };
        let t = self.config.transient_attempts;
        if t > 0 && attempt > t {
            // The transient fault burned out; this read succeeds.
            self.recovered.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let err = ScanError {
            class,
            table: table.to_string(),
            row_group: group,
            leaf: leaf.to_string(),
            attempt,
        };
        match class {
            FaultClass::Io => self.io.fetch_add(1, Ordering::Relaxed),
            FaultClass::ChecksumMismatch => self.checksum.fetch_add(1, Ordering::Relaxed),
            FaultClass::TruncatedRowGroup => self.truncated.fetch_add(1, Ordering::Relaxed),
            FaultClass::Panic => panic!("injected panic fault: {err}"),
            FaultClass::Latency => unreachable!("handled above"),
        };
        Err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(s: &str) -> Path {
        Path::parse(s)
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultInjector::new(FaultConfig::only(FaultClass::Io, 0.3, 7));
        let b = FaultInjector::new(FaultConfig::only(FaultClass::Io, 0.3, 7));
        let c = FaultInjector::new(FaultConfig::only(FaultClass::Io, 0.3, 8));
        let mut same = 0;
        let mut diff = 0;
        for g in 0..64u32 {
            for l in ["MET.pt", "Jet.pt", "Jet.eta"] {
                let da = a.decide(0xF00D, g, &leaf(l));
                assert_eq!(da, b.decide(0xF00D, g, &leaf(l)));
                if da == c.decide(0xF00D, g, &leaf(l)) {
                    same += 1;
                } else {
                    diff += 1;
                }
            }
        }
        assert!(diff > 0, "different seeds must differ somewhere");
        assert!(same > 0);
    }

    #[test]
    fn fault_rate_tracks_probability() {
        let inj = FaultInjector::new(FaultConfig::only(FaultClass::Io, 0.25, 42));
        let n = 4000;
        let mut faults = 0;
        for g in 0..n {
            if inj.decide(1, g, &leaf("MET.pt")).is_some() {
                faults += 1;
            }
        }
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate} too far from 0.25");
    }

    #[test]
    fn transient_faults_recover_after_budget() {
        let inj = FaultInjector::new(FaultConfig {
            transient_attempts: 2,
            ..FaultConfig::only(FaultClass::Io, 1.0, 3)
        });
        let l = leaf("Jet.pt");
        let e1 = inj.on_chunk_read("events", 9, 0, &l).unwrap_err();
        assert_eq!((e1.class, e1.attempt), (FaultClass::Io, 1));
        assert!(e1.retryable());
        let e2 = inj.on_chunk_read("events", 9, 0, &l).unwrap_err();
        assert_eq!(e2.attempt, 2);
        assert!(inj.on_chunk_read("events", 9, 0, &l).is_ok(), "recovered");
        assert_eq!(inj.counters().recovered, 1);
        inj.reset_attempts();
        assert!(inj.on_chunk_read("events", 9, 0, &l).is_err());
    }

    #[test]
    fn persistent_faults_never_recover() {
        let inj = FaultInjector::new(FaultConfig {
            transient_attempts: 0,
            ..FaultConfig::only(FaultClass::ChecksumMismatch, 1.0, 3)
        });
        for _ in 0..5 {
            let e = inj
                .on_chunk_read("events", 9, 3, &leaf("MET.phi"))
                .unwrap_err();
            assert_eq!(e.class, FaultClass::ChecksumMismatch);
        }
        assert_eq!(inj.counters().checksum, 5);
    }

    #[test]
    fn error_display_carries_full_context() {
        let e = ScanError {
            class: FaultClass::TruncatedRowGroup,
            table: "events".into(),
            row_group: 17,
            leaf: "Jet.eta".into(),
            attempt: 2,
        };
        let s = e.to_string();
        assert!(s.contains("truncated row group"), "{s}");
        assert!(s.contains("'events'"), "{s}");
        assert!(s.contains("row group 17"), "{s}");
        assert!(s.contains("Jet.eta"), "{s}");
    }
}
