//! # nf2-columnar
//!
//! A nested (NF²) columnar storage substrate playing the role that Parquet
//! plays in the paper.
//!
//! The paper's performance and cost analysis depends on a handful of storage
//! properties, all of which this crate models explicitly and honestly:
//!
//! * **Column decomposition of nested data** — every scalar leaf of the
//!   schema tree (e.g. `Jet.pt` inside `array<struct<…>>`) is stored as its
//!   own contiguous buffer, with a shared offsets array per repeated parent
//!   (HEP data has no NULLs and at most one repetition level, so full
//!   Dremel-style definition/repetition levels are not needed — offsets are
//!   exactly equivalent here and cheaper).
//! * **Row groups** — horizontal partitions that are the unit of parallelism
//!   for every engine, reproducing the paper's Figure 2 plateau (systems
//!   "only parallelize across row groups, not within them").
//! * **Projection pushdown** — a reader declares which leaf columns it
//!   needs. The [`project::PushdownCapability`] flag reproduces the
//!   Presto/Athena limitation of *not* pushing projections into structs
//!   (paper §4.1, Figure 4b): with `WholeStructs`, touching any field of a
//!   struct charges and reads every leaf beneath it.
//! * **I/O accounting** — every scan yields [`scan::ScanStats`] with
//!   compressed bytes read, uncompressed sizes, and the BigQuery-style
//!   *logical* bytes (every number priced as 8 B regardless of physical
//!   precision), feeding the cost models of the `cloud-sim` crate.
//! * **Compression** — each chunk is sealed with the smallest of several
//!   real lightweight encodings (bit-packed RLE, delta+varint, byte-plane
//!   RLE, value dictionaries); see [`compress`]. Floating-point columns
//!   barely compress — the very property the paper uses to explain
//!   Athena's pricing.
//! * **Zone maps & pruning** — every chunk carries min/max statistics
//!   ([`stats::ZoneMap`]); a [`scan::ScanRequest`] with filter predicates
//!   attached skips row groups proven empty before decoding them, billing
//!   the skipped bytes separately as `bytes_pruned`.
//!
//! The crate also provides a simple on-disk container format ([`mod@file`]) so
//! data sets can be materialized and re-read, with real file sizes.

pub mod cache;
pub mod column;
pub mod compress;
pub mod error;
pub mod fault;
pub mod file;
pub mod project;
pub mod rowgroup;
pub mod scan;
pub mod schema;
pub mod select;
pub mod stats;
pub mod table;

pub use cache::{CacheCounters, ChunkCache, ChunkKey};
pub use column::{ColumnChunk, ColumnData};
pub use error::ColumnarError;
pub use fault::{FaultClass, FaultConfig, FaultCounters, FaultInjector, ScanError};
pub use project::{Projection, PushdownCapability};
pub use rowgroup::{GroupReader, RowGroup};
pub use scan::{ExecStats, MorselRecovery, ScanCache, ScanFaults, ScanRequest, ScanRun, ScanStats};
pub use schema::{DataType, Field, LeafInfo, PhysicalType, Schema};
pub use select::{apply_predicates, ScalarPredicate, SelCmp, SelValue, SelectionVector};
pub use stats::ZoneMap;
pub use table::{Table, TableBuilder};

#[cfg(test)]
mod proptests;
