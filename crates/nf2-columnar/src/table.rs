//! Tables and the row-group-producing builder.

use std::collections::BTreeMap;

use nested_value::{Path, Value};

use crate::column::{ColumnChunk, ColumnData};
use crate::error::ColumnarError;
use crate::rowgroup::RowGroup;
use crate::schema::{DataType, PhysicalType, Schema};

/// Default events per row group.
///
/// The paper's Parquet files average ≈400 k events per row group (§4.2);
/// data-set builders scale this down proportionally for small test sets.
pub const DEFAULT_ROW_GROUP_SIZE: usize = 400_000;

/// A named, immutable columnar table.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    row_groups: Vec<RowGroup>,
}

impl Table {
    pub(crate) fn new(name: String, schema: Schema, row_groups: Vec<RowGroup>) -> Table {
        Table {
            name,
            schema,
            row_groups,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row groups.
    pub fn row_groups(&self) -> &[RowGroup] {
        &self.row_groups
    }

    /// Total row count.
    pub fn n_rows(&self) -> usize {
        self.row_groups.iter().map(|g| g.n_rows()).sum()
    }

    /// Total compressed size of the table (all leaves).
    pub fn compressed_bytes(&self) -> usize {
        let leaves: Vec<_> = self.schema.leaves().iter().collect();
        self.row_groups
            .iter()
            .map(|g| g.compressed_bytes(&leaves))
            .sum()
    }

    /// Total uncompressed size of the table (all leaves).
    pub fn uncompressed_bytes(&self) -> usize {
        let leaves: Vec<_> = self.schema.leaves().iter().collect();
        self.row_groups
            .iter()
            .map(|g| g.uncompressed_bytes(&leaves))
            .sum()
    }

    /// A stable content fingerprint of the table: schema shape plus
    /// per-chunk statistics (row counts, entry counts, compressed sizes,
    /// min/max). Used to key the serving-layer caches — tables are
    /// immutable, so an equal fingerprint means cached chunks and results
    /// are valid, and any rebuild with different data changes the
    /// statistics and hence the key space. FNV-1a, independent of process
    /// and platform.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_str(&self.name);
        for leaf in self.schema.leaves() {
            h.write_str(&leaf.path.to_string());
            h.write_u64(leaf.ptype as u64);
            h.write_u64(leaf.repeated as u64);
        }
        for g in &self.row_groups {
            h.write_u64(g.n_rows() as u64);
            for (path, chunk) in g.columns() {
                h.write_str(&path.to_string());
                h.write_u64(chunk.n_entries() as u64);
                h.write_u64(chunk.compressed_bytes as u64);
                h.write_u64(chunk.min.map_or(0, f64::to_bits));
                h.write_u64(chunk.max.map_or(0, f64::to_bits));
            }
        }
        h.finish()
    }

    /// Shard `i` of `n`: a new table holding a contiguous run of this
    /// table's row groups, the partitioning a parallel scan deals to its
    /// workers (row groups are the unit of parallelism, so shards never
    /// split a group). The first `len % n` shards get one extra group;
    /// concatenating shards `0..n` in order reproduces the table exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `i >= n`.
    pub fn shard(&self, i: usize, n: usize) -> Table {
        assert!(n > 0, "shard count must be positive");
        assert!(i < n, "shard index {i} out of range for {n} shards");
        let len = self.row_groups.len();
        let base = len / n;
        let extra = len % n;
        let lo = i * base + i.min(extra);
        let hi = lo + base + usize::from(i < extra);
        Table::new(
            self.name.clone(),
            self.schema.clone(),
            self.row_groups[lo..hi].to_vec(),
        )
    }

    /// A new table containing only the first `n` rows (row-group aligned
    /// slicing plus a partial group if needed) — used by the Figure 2
    /// data-size sweep.
    pub fn head(&self, n: usize) -> Table {
        let mut remaining = n;
        let mut groups = Vec::new();
        for g in &self.row_groups {
            if remaining == 0 {
                break;
            }
            if g.n_rows() <= remaining {
                remaining -= g.n_rows();
                groups.push(g.clone());
            } else {
                groups.push(slice_group(&self.schema, g, remaining));
                remaining = 0;
            }
        }
        Table::new(self.name.clone(), self.schema.clone(), groups)
    }
}

/// Minimal FNV-1a, kept local so fingerprints do not depend on std's
/// unspecified `DefaultHasher` algorithm.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        // Length terminator so "ab"+"c" ≠ "a"+"bc".
        self.write_u64(s.len() as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn slice_group(schema: &Schema, g: &RowGroup, n: usize) -> RowGroup {
    let mut columns = BTreeMap::new();
    for leaf in schema.leaves() {
        let chunk = g.column(&leaf.path).expect("leaf exists");
        let sliced = match &chunk.offsets {
            None => {
                let data = slice_data(&chunk.data, 0, n);
                ColumnChunk::seal(data, None)
            }
            Some(off) => {
                let end = off[n] as usize;
                let data = slice_data(&chunk.data, 0, end);
                ColumnChunk::seal(data, Some(off[..=n].to_vec()))
            }
        };
        columns.insert(leaf.path.clone(), sliced);
    }
    RowGroup::new(n, columns)
}

fn slice_data(data: &ColumnData, start: usize, end: usize) -> ColumnData {
    match data {
        ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
        ColumnData::I32(v) => ColumnData::I32(v[start..end].to_vec()),
        ColumnData::I64(v) => ColumnData::I64(v[start..end].to_vec()),
        ColumnData::F32(v) => ColumnData::F32(v[start..end].to_vec()),
        ColumnData::F64(v) => ColumnData::F64(v[start..end].to_vec()),
    }
}

/// Incremental table builder that type-checks every appended row against the
/// schema and seals a row group every `row_group_size` rows.
pub struct TableBuilder {
    name: String,
    schema: Schema,
    row_group_size: usize,
    buffers: BTreeMap<Path, (ColumnData, Option<Vec<u32>>)>,
    rows_in_group: usize,
    groups: Vec<RowGroup>,
}

impl TableBuilder {
    /// Creates a builder.
    pub fn new(name: &str, schema: Schema, row_group_size: usize) -> TableBuilder {
        assert!(row_group_size > 0, "row groups must be non-empty");
        let buffers = fresh_buffers(&schema);
        TableBuilder {
            name: name.to_string(),
            schema,
            row_group_size,
            buffers,
            rows_in_group: 0,
            groups: Vec::new(),
        }
    }

    /// Appends one row (a struct value matching the schema).
    pub fn append(&mut self, row: &Value) -> Result<(), ColumnarError> {
        let s = row
            .as_struct()
            .map_err(|e| ColumnarError::SchemaMismatch(e.to_string()))?;
        // Two-phase append so a mismatch mid-row cannot corrupt buffers:
        // validate first, then write.
        for field in self.schema.fields() {
            let v = s.get(&field.name).ok_or_else(|| {
                ColumnarError::SchemaMismatch(format!("missing field {}", field.name))
            })?;
            validate_value(&field.dtype, &Path::root(&field.name), v)?;
        }
        for field in self.schema.fields() {
            let v = s.get(&field.name).expect("validated");
            append_value(&field.dtype, &Path::root(&field.name), v, &mut self.buffers);
        }
        self.rows_in_group += 1;
        if self.rows_in_group == self.row_group_size {
            self.seal_group();
        }
        Ok(())
    }

    /// Appends many rows.
    pub fn append_all<'a, I: IntoIterator<Item = &'a Value>>(
        &mut self,
        rows: I,
    ) -> Result<(), ColumnarError> {
        for r in rows {
            self.append(r)?;
        }
        Ok(())
    }

    /// Finalizes into an immutable table.
    pub fn finish(mut self) -> Table {
        if self.rows_in_group > 0 {
            self.seal_group();
        }
        Table::new(self.name, self.schema, self.groups)
    }

    fn seal_group(&mut self) {
        let buffers = std::mem::replace(&mut self.buffers, fresh_buffers(&self.schema));
        let mut columns = BTreeMap::new();
        for (path, (data, offsets)) in buffers {
            columns.insert(path, ColumnChunk::seal(data, offsets));
        }
        self.groups.push(RowGroup::new(self.rows_in_group, columns));
        self.rows_in_group = 0;
    }
}

fn fresh_buffers(schema: &Schema) -> BTreeMap<Path, (ColumnData, Option<Vec<u32>>)> {
    schema
        .leaves()
        .iter()
        .map(|l| {
            let offsets = l.repeated.then(|| vec![0u32]);
            (l.path.clone(), (ColumnData::empty(l.ptype), offsets))
        })
        .collect()
}

fn validate_value(dtype: &DataType, path: &Path, v: &Value) -> Result<(), ColumnarError> {
    match dtype {
        DataType::Scalar(pt) => {
            let ok = match pt {
                PhysicalType::Bool => matches!(v, Value::Bool(_)),
                PhysicalType::Int32 | PhysicalType::Int64 => matches!(v, Value::Int(_)),
                PhysicalType::Float32 | PhysicalType::Float64 => v.is_numeric(),
            };
            if ok {
                Ok(())
            } else {
                Err(ColumnarError::SchemaMismatch(format!(
                    "at {path}: expected {pt:?}, found {}",
                    v.type_name()
                )))
            }
        }
        DataType::Struct(fields) => {
            let s = v.as_struct().map_err(|_| {
                ColumnarError::SchemaMismatch(format!(
                    "at {path}: expected struct, found {}",
                    v.type_name()
                ))
            })?;
            for f in fields {
                let fv = s.get(&f.name).ok_or_else(|| {
                    ColumnarError::SchemaMismatch(format!("missing field {path}.{}", f.name))
                })?;
                validate_value(&f.dtype, &path.child(&f.name), fv)?;
            }
            Ok(())
        }
        DataType::List(inner) => {
            let items = v.as_array().map_err(|_| {
                ColumnarError::SchemaMismatch(format!(
                    "at {path}: expected array, found {}",
                    v.type_name()
                ))
            })?;
            for item in items {
                validate_value(inner, path, item)?;
            }
            Ok(())
        }
    }
}

fn append_value(
    dtype: &DataType,
    path: &Path,
    v: &Value,
    buffers: &mut BTreeMap<Path, (ColumnData, Option<Vec<u32>>)>,
) {
    match dtype {
        DataType::Scalar(_) => {
            let (data, _) = buffers.get_mut(path).expect("leaf buffer");
            push_scalar(data, v);
        }
        DataType::Struct(fields) => {
            let s = v.as_struct().expect("validated");
            for f in fields {
                append_value(
                    &f.dtype,
                    &path.child(&f.name),
                    s.get(&f.name).expect("validated"),
                    buffers,
                );
            }
        }
        DataType::List(inner) => {
            let items = v.as_array().expect("validated");
            for item in items {
                append_list_element(inner, path, item, buffers);
            }
            bump_offsets(inner, path, items.len() as u32, buffers);
        }
    }
}

/// Appends one list element's leaves (without touching offsets).
fn append_list_element(
    dtype: &DataType,
    path: &Path,
    v: &Value,
    buffers: &mut BTreeMap<Path, (ColumnData, Option<Vec<u32>>)>,
) {
    match dtype {
        DataType::Scalar(_) => {
            let (data, _) = buffers.get_mut(path).expect("leaf buffer");
            push_scalar(data, v);
        }
        DataType::Struct(fields) => {
            let s = v.as_struct().expect("validated");
            for f in fields {
                append_list_element(
                    &f.dtype,
                    &path.child(&f.name),
                    s.get(&f.name).expect("validated"),
                    buffers,
                );
            }
        }
        DataType::List(_) => unreachable!("nested lists rejected by schema"),
    }
}

/// After appending `n` elements to the list at `path`, closes the row by
/// appending the new end offset to every leaf under the list.
fn bump_offsets(
    inner: &DataType,
    path: &Path,
    _n: u32,
    buffers: &mut BTreeMap<Path, (ColumnData, Option<Vec<u32>>)>,
) {
    match inner {
        DataType::Scalar(_) => {
            let (data, offsets) = buffers.get_mut(path).expect("leaf buffer");
            let end = data.len() as u32;
            offsets.as_mut().expect("repeated leaf").push(end);
        }
        DataType::Struct(fields) => {
            for f in fields {
                bump_offsets(&f.dtype, &path.child(&f.name), _n, buffers);
            }
        }
        DataType::List(_) => unreachable!(),
    }
}

fn push_scalar(data: &mut ColumnData, v: &Value) {
    match data {
        ColumnData::Bool(buf) => buf.push(v.as_bool().expect("validated")),
        ColumnData::I32(buf) => buf.push(v.as_i64().expect("validated") as i32),
        ColumnData::I64(buf) => buf.push(v.as_i64().expect("validated")),
        ColumnData::F32(buf) => buf.push(v.as_f64().expect("validated") as f32),
        ColumnData::F64(buf) => buf.push(v.as_f64().expect("validated")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("event", DataType::i64()),
            Field::new(
                "MET",
                DataType::Struct(vec![Field::new("pt", DataType::f64())]),
            ),
            Field::new(
                "Jet",
                DataType::particle_list(vec![
                    Field::new("pt", DataType::f64()),
                    Field::new("eta", DataType::f64()),
                ]),
            ),
        ])
        .unwrap()
    }

    fn row(event: i64, met: f64, jets: &[(f64, f64)]) -> Value {
        Value::struct_from(vec![
            ("event", Value::Int(event)),
            ("MET", Value::struct_from(vec![("pt", Value::Float(met))])),
            (
                "Jet",
                Value::array(
                    jets.iter()
                        .map(|(pt, eta)| {
                            Value::struct_from(vec![
                                ("pt", Value::Float(*pt)),
                                ("eta", Value::Float(*eta)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn roundtrip_rows() {
        let mut b = TableBuilder::new("events", schema(), 2);
        let rows = vec![
            row(1, 12.5, &[(40.0, 1.0), (25.0, -0.5)]),
            row(2, 7.0, &[]),
            row(3, 99.0, &[(60.0, 2.2)]),
        ];
        b.append_all(&rows).unwrap();
        let t = b.finish();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.row_groups().len(), 2);
        let leaves: Vec<_> = t.schema().leaves().iter().collect();
        let mut got = Vec::new();
        for g in t.row_groups() {
            got.extend(g.read_rows(t.schema(), &leaves).unwrap());
        }
        assert_eq!(got, rows);
    }

    #[test]
    fn projection_reconstructs_subset() {
        let mut b = TableBuilder::new("events", schema(), 10);
        b.append(&row(1, 12.5, &[(40.0, 1.0)])).unwrap();
        let t = b.finish();
        let proj = crate::project::Projection::of(["Jet.pt"]);
        let leaves = proj
            .resolve(
                t.schema(),
                crate::project::PushdownCapability::IndividualLeaves,
            )
            .unwrap();
        let v = t.row_groups()[0].read_row(t.schema(), &leaves, 0).unwrap();
        let jets = v.field("Jet").unwrap().as_array().unwrap();
        let j0 = jets[0].as_struct().unwrap();
        assert_eq!(j0.get("pt"), Some(&Value::Float(40.0)));
        assert_eq!(j0.get("eta"), None);
        assert!(v.field("MET").is_err());
    }

    #[test]
    fn schema_mismatch_rejected_without_corruption() {
        let mut b = TableBuilder::new("events", schema(), 10);
        let bad = Value::struct_from(vec![("event", Value::str("oops"))]);
        assert!(b.append(&bad).is_err());
        // The builder is still usable and consistent.
        b.append(&row(5, 1.0, &[(2.0, 3.0)])).unwrap();
        let t = b.finish();
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn head_slices_mid_group() {
        let mut b = TableBuilder::new("events", schema(), 4);
        let rows: Vec<Value> = (0..10)
            .map(|i| row(i, i as f64, &[(i as f64, 0.0); 2]))
            .collect();
        b.append_all(&rows).unwrap();
        let t = b.finish();
        let h = t.head(5);
        assert_eq!(h.n_rows(), 5);
        let leaves: Vec<_> = h.schema().leaves().iter().collect();
        let mut got = Vec::new();
        for g in h.row_groups() {
            got.extend(g.read_rows(h.schema(), &leaves).unwrap());
        }
        assert_eq!(got, rows[..5].to_vec());
    }

    #[test]
    fn shard_partitions_row_groups_contiguously() {
        let mut b = TableBuilder::new("events", schema(), 4);
        let rows: Vec<Value> = (0..26)
            .map(|i| row(i, i as f64, &[(i as f64, 0.0)]))
            .collect();
        b.append_all(&rows).unwrap();
        let t = b.finish();
        assert_eq!(t.row_groups().len(), 7);
        for n in [1, 2, 3, 7] {
            let shards: Vec<Table> = (0..n).map(|i| t.shard(i, n)).collect();
            let total_groups: usize = shards.iter().map(|s| s.row_groups().len()).sum();
            assert_eq!(total_groups, 7, "n={n}");
            assert_eq!(shards.iter().map(Table::n_rows).sum::<usize>(), 26);
            // Concatenating shards in order reproduces the table.
            let leaves: Vec<_> = t.schema().leaves().iter().collect();
            let mut got = Vec::new();
            for s in &shards {
                for g in s.row_groups() {
                    got.extend(g.read_rows(s.schema(), &leaves).unwrap());
                }
            }
            assert_eq!(got, rows, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_panics() {
        let mut b = TableBuilder::new("events", schema(), 4);
        b.append(&row(0, 0.0, &[])).unwrap();
        b.finish().shard(2, 2);
    }

    #[test]
    fn sizes_accounted() {
        let mut b = TableBuilder::new("events", schema(), 100);
        for i in 0..50 {
            b.append(&row(i, i as f64 * 0.5, &[(30.0, 0.1), (20.0, -0.2)]))
                .unwrap();
        }
        let t = b.finish();
        assert!(t.uncompressed_bytes() > 0);
        assert!(t.compressed_bytes() > 0);
        // event ids are sequential ints: table must compress below raw size.
        assert!(t.compressed_bytes() < t.uncompressed_bytes());
    }
}
