//! Projection resolution and pushdown capabilities.

use nested_value::Path;

use crate::error::ColumnarError;
use crate::schema::{LeafInfo, Schema};

/// How far a reader can push projections into the storage layer.
///
/// Models the paper's §4.1/Figure 4b findings:
///
/// * BigQuery and the C++ Parquet reader push projections down to individual
///   leaf columns ([`PushdownCapability::IndividualLeaves`]).
/// * Presto and Athena (Java Parquet) cannot project *into* structs: access
///   to `Jet.pt` reads every leaf of `Jet`
///   ([`PushdownCapability::WholeStructs`]).
/// * Rumble pushes no projection at all and reads the whole file
///   ([`PushdownCapability::None`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushdownCapability {
    /// Read exactly the leaf columns the query needs.
    IndividualLeaves,
    /// Reading any field of a top-level struct reads all of its leaves.
    WholeStructs,
    /// Read every leaf column of the table.
    None,
}

/// A set of requested column paths (leaf or interior).
#[derive(Clone, Debug, PartialEq)]
pub struct Projection {
    paths: Vec<Path>,
    /// If true, the projection means "everything".
    all: bool,
}

impl Projection {
    /// Projects every column.
    pub fn all() -> Projection {
        Projection {
            paths: Vec::new(),
            all: true,
        }
    }

    /// Projects the given paths. Interior paths select all leaves below.
    pub fn of<I, S>(paths: I) -> Projection
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Projection {
            paths: paths.into_iter().map(|s| Path::parse(s.as_ref())).collect(),
            all: false,
        }
    }

    /// The raw requested paths (empty when `all`).
    pub fn requested(&self) -> &[Path] {
        &self.paths
    }

    /// True if this projection selects everything.
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// Resolves to the concrete set of leaf columns that will be **read**
    /// under the given pushdown capability, in schema order.
    ///
    /// Errors if a requested path does not exist in the schema.
    pub fn resolve<'s>(
        &self,
        schema: &'s Schema,
        cap: PushdownCapability,
    ) -> Result<Vec<&'s LeafInfo>, ColumnarError> {
        if self.all || cap == PushdownCapability::None {
            // Validate requested paths even when reading everything, so a
            // typo'd query column is still an error rather than silence.
            self.validate(schema)?;
            return Ok(schema.leaves().iter().collect());
        }
        self.validate(schema)?;
        let mut selected: Vec<&LeafInfo> = Vec::new();
        for leaf in schema.leaves() {
            let hit = match cap {
                PushdownCapability::IndividualLeaves => {
                    self.paths.iter().any(|p| leaf.path.starts_with(p))
                }
                PushdownCapability::WholeStructs => {
                    self.paths.iter().any(|p| leaf.path.head() == p.head())
                }
                PushdownCapability::None => unreachable!(),
            };
            if hit {
                selected.push(leaf);
            }
        }
        Ok(selected)
    }

    /// The leaves the query *logically needs* (independent of capability) —
    /// the basis for ideal-bytes accounting and BigQuery pricing.
    pub fn logical_leaves<'s>(
        &self,
        schema: &'s Schema,
    ) -> Result<Vec<&'s LeafInfo>, ColumnarError> {
        self.resolve(schema, PushdownCapability::IndividualLeaves)
            .map(|v| {
                if self.all {
                    schema.leaves().iter().collect()
                } else {
                    v
                }
            })
    }

    fn validate(&self, schema: &Schema) -> Result<(), ColumnarError> {
        for p in &self.paths {
            if schema.type_at(p).is_none() {
                return Err(ColumnarError::UnknownColumn(p.to_string()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("event", DataType::i64()),
            Field::new(
                "MET",
                DataType::Struct(vec![
                    Field::new("pt", DataType::f32()),
                    Field::new("phi", DataType::f32()),
                    Field::new("sumet", DataType::f32()),
                ]),
            ),
            Field::new(
                "Jet",
                DataType::particle_list(vec![
                    Field::new("pt", DataType::f32()),
                    Field::new("eta", DataType::f32()),
                ]),
            ),
        ])
        .unwrap()
    }

    fn names(leaves: &[&LeafInfo]) -> Vec<String> {
        leaves.iter().map(|l| l.path.to_string()).collect()
    }

    #[test]
    fn individual_leaf_pushdown() {
        let s = schema();
        let p = Projection::of(["MET.pt", "Jet.pt"]);
        let leaves = p.resolve(&s, PushdownCapability::IndividualLeaves).unwrap();
        assert_eq!(names(&leaves), vec!["MET.pt", "Jet.pt"]);
    }

    #[test]
    fn whole_struct_pushdown_expands() {
        let s = schema();
        let p = Projection::of(["MET.pt", "Jet.pt"]);
        let leaves = p.resolve(&s, PushdownCapability::WholeStructs).unwrap();
        assert_eq!(
            names(&leaves),
            vec!["MET.pt", "MET.phi", "MET.sumet", "Jet.pt", "Jet.eta"]
        );
    }

    #[test]
    fn no_pushdown_reads_everything() {
        let s = schema();
        let p = Projection::of(["event"]);
        let leaves = p.resolve(&s, PushdownCapability::None).unwrap();
        assert_eq!(leaves.len(), s.n_leaves());
    }

    #[test]
    fn interior_path_selects_subtree() {
        let s = schema();
        let p = Projection::of(["Jet"]);
        let leaves = p.resolve(&s, PushdownCapability::IndividualLeaves).unwrap();
        assert_eq!(names(&leaves), vec!["Jet.pt", "Jet.eta"]);
    }

    #[test]
    fn unknown_column_is_error() {
        let s = schema();
        let p = Projection::of(["Jets.pt"]);
        assert!(matches!(
            p.resolve(&s, PushdownCapability::IndividualLeaves),
            Err(ColumnarError::UnknownColumn(_))
        ));
        // Even with no pushdown the error must surface.
        assert!(p.resolve(&s, PushdownCapability::None).is_err());
    }

    #[test]
    fn all_projection() {
        let s = schema();
        let leaves = Projection::all()
            .resolve(&s, PushdownCapability::IndividualLeaves)
            .unwrap();
        assert_eq!(leaves.len(), s.n_leaves());
    }
}
