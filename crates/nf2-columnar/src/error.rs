//! Error type for the columnar substrate.

use std::fmt;

use crate::fault::ScanError;

/// Errors raised while building, reading, or persisting columnar data.
#[derive(Debug)]
pub enum ColumnarError {
    /// A value did not match the declared schema.
    SchemaMismatch(String),
    /// A requested column path does not exist in the schema.
    UnknownColumn(String),
    /// Schema construction rejected an unsupported shape
    /// (e.g. lists nested inside lists).
    UnsupportedSchema(String),
    /// File-format corruption or version mismatch.
    Format(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An injected scan fault (chaos layer); carries full chunk context.
    Fault(ScanError),
    /// The scan observed a tripped [`obs::CancelToken`] (expired
    /// deadline or explicit cancel) and stopped at a row-group boundary.
    Cancelled(obs::Cancelled),
}

impl ColumnarError {
    /// The typed scan fault, when this error is one.
    pub fn scan_error(&self) -> Option<&ScanError> {
        match self {
            ColumnarError::Fault(e) => Some(e),
            _ => None,
        }
    }

    /// The typed cancellation payload, when this error is one.
    pub fn cancelled(&self) -> Option<&obs::Cancelled> {
        match self {
            ColumnarError::Cancelled(c) => Some(c),
            _ => None,
        }
    }

    /// Splits the error for engine-level wrapping: the typed scan fault
    /// when this is one, otherwise the formatted message. Engine error
    /// types use this in their `From<ColumnarError>` impls so scan
    /// faults keep their chunk context while every other storage error
    /// degrades uniformly to text.
    pub fn into_scan_fault(self) -> Result<ScanError, String> {
        match self {
            ColumnarError::Fault(e) => Ok(e),
            other => Err(other.to_string()),
        }
    }
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            ColumnarError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            ColumnarError::UnsupportedSchema(m) => write!(f, "unsupported schema: {m}"),
            ColumnarError::Format(m) => write!(f, "file format error: {m}"),
            ColumnarError::Io(e) => write!(f, "io error: {e}"),
            ColumnarError::Fault(e) => write!(f, "scan fault: {e}"),
            ColumnarError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for ColumnarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColumnarError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ColumnarError {
    fn from(e: std::io::Error) -> Self {
        ColumnarError::Io(e)
    }
}

impl From<ScanError> for ColumnarError {
    fn from(e: ScanError) -> Self {
        ColumnarError::Fault(e)
    }
}

impl From<obs::Cancelled> for ColumnarError {
    fn from(c: obs::Cancelled) -> Self {
        ColumnarError::Cancelled(c)
    }
}
