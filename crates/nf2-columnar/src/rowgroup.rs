//! Row groups: the horizontal partition and unit of parallelism.

use std::collections::BTreeMap;
use std::sync::Arc;

use nested_value::{Path, StructValue, Value};

use crate::column::ColumnChunk;
use crate::error::ColumnarError;
use crate::schema::{DataType, Field, LeafInfo, Schema};
use crate::select::SelectionVector;

/// A horizontal slice of the table with one [`ColumnChunk`] per leaf.
#[derive(Clone, Debug)]
pub struct RowGroup {
    n_rows: usize,
    columns: BTreeMap<Path, ColumnChunk>,
}

impl RowGroup {
    /// Assembles a row group; the caller guarantees chunk/row consistency
    /// (the [`crate::table::TableBuilder`] does).
    pub(crate) fn new(n_rows: usize, columns: BTreeMap<Path, ColumnChunk>) -> RowGroup {
        RowGroup { n_rows, columns }
    }

    /// Number of rows (events).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Chunk for a leaf path.
    pub fn column(&self, path: &Path) -> Result<&ColumnChunk, ColumnarError> {
        self.columns
            .get(path)
            .ok_or_else(|| ColumnarError::UnknownColumn(path.to_string()))
    }

    /// All `(path, chunk)` pairs in path order.
    pub fn columns(&self) -> impl Iterator<Item = (&Path, &ColumnChunk)> {
        self.columns.iter()
    }

    /// Total compressed bytes across the given leaves.
    pub fn compressed_bytes(&self, leaves: &[&LeafInfo]) -> usize {
        leaves
            .iter()
            .filter_map(|l| self.columns.get(&l.path))
            .map(|c| c.compressed_bytes)
            .sum()
    }

    /// Total uncompressed bytes across the given leaves.
    pub fn uncompressed_bytes(&self, leaves: &[&LeafInfo]) -> usize {
        leaves
            .iter()
            .filter_map(|l| self.columns.get(&l.path))
            .map(|c| c.uncompressed_bytes())
            .sum()
    }

    /// BigQuery-style logical bytes: entry count × logical type width.
    pub fn logical_bytes(&self, leaves: &[&LeafInfo]) -> usize {
        leaves
            .iter()
            .filter_map(|l| self.columns.get(&l.path).map(|c| (l, c)))
            .map(|(l, c)| c.n_entries() * l.ptype.logical_width())
            .sum()
    }

    /// Builds a materialization plan for the projected leaves: chunk
    /// references and interned field names are resolved once, so per-row
    /// reads do no path matching or name allocation.
    ///
    /// `leaves` must be schema-ordered (as produced by
    /// [`crate::project::Projection::resolve`]).
    pub fn reader<'g>(
        &'g self,
        schema: &Schema,
        leaves: &[&LeafInfo],
    ) -> Result<GroupReader<'g>, ColumnarError> {
        let mut fields = Vec::new();
        for field in schema.fields() {
            let prefix = Path::root(&field.name);
            let sub: Vec<&LeafInfo> = leaves
                .iter()
                .copied()
                .filter(|l| l.path.starts_with(&prefix))
                .collect();
            if sub.is_empty() {
                continue;
            }
            fields.push((field.name.clone(), self.plan_node(field, &prefix, &sub)?));
        }
        Ok(GroupReader {
            n_rows: self.n_rows,
            fields,
        })
    }

    /// Reconstructs row `row` as a nested [`Value`] containing exactly the
    /// top-level fields that have at least one projected leaf.
    pub fn read_row(
        &self,
        schema: &Schema,
        leaves: &[&LeafInfo],
        row: usize,
    ) -> Result<Value, ColumnarError> {
        debug_assert!(row < self.n_rows);
        Ok(self.reader(schema, leaves)?.read_row(row))
    }

    /// Reads all rows of the group (convenience for engines that want a
    /// materialized batch).
    pub fn read_rows(
        &self,
        schema: &Schema,
        leaves: &[&LeafInfo],
    ) -> Result<Vec<Value>, ColumnarError> {
        let reader = self.reader(schema, leaves)?;
        Ok((0..self.n_rows).map(|r| reader.read_row(r)).collect())
    }

    /// Reads only the rows named by `selection` (late materialization after
    /// a vectorized filter; see [`crate::select`]).
    pub fn read_rows_selected(
        &self,
        schema: &Schema,
        leaves: &[&LeafInfo],
        selection: &SelectionVector,
    ) -> Result<Vec<Value>, ColumnarError> {
        debug_assert_eq!(selection.n_rows(), self.n_rows);
        let reader = self.reader(schema, leaves)?;
        Ok(selection
            .rows()
            .iter()
            .map(|&r| reader.read_row(r as usize))
            .collect())
    }

    fn plan_node<'g>(
        &'g self,
        field: &Field,
        path: &Path,
        leaves: &[&LeafInfo],
    ) -> Result<NodePlan<'g>, ColumnarError> {
        match &field.dtype {
            DataType::Scalar(_) => Ok(NodePlan::Scalar(self.column(path)?)),
            DataType::Struct(fields) => {
                Ok(NodePlan::Struct(self.plan_struct(fields, path, leaves)?))
            }
            DataType::List(inner) => {
                // Any projected leaf below this list carries the offsets.
                let first = leaves.first().expect("non-empty leaf set");
                let offsets = self.column(&first.path)?;
                let item = match inner.as_ref() {
                    DataType::Scalar(_) => NodePlan::Scalar(self.column(path)?),
                    DataType::Struct(fields) => {
                        NodePlan::Struct(self.plan_struct(fields, path, leaves)?)
                    }
                    DataType::List(_) => {
                        return Err(ColumnarError::SchemaMismatch(format!(
                            "nested list at {path}"
                        )))
                    }
                };
                Ok(NodePlan::List {
                    offsets,
                    item: Box::new(item),
                })
            }
        }
    }

    fn plan_struct<'g>(
        &'g self,
        fields: &[Field],
        path: &Path,
        leaves: &[&LeafInfo],
    ) -> Result<Vec<(Arc<str>, NodePlan<'g>)>, ColumnarError> {
        let mut out = Vec::new();
        for f in fields {
            let child = path.child(&f.name);
            let sub: Vec<&LeafInfo> = leaves
                .iter()
                .copied()
                .filter(|l| l.path.starts_with(&child))
                .collect();
            if sub.is_empty() {
                continue;
            }
            // Lists cannot nest, so inner nodes never re-enter the List arm
            // of plan_node with stale leaves; delegating is safe.
            out.push((f.name.clone(), self.plan_node(f, &child, &sub)?));
        }
        Ok(out)
    }
}

/// A resolved per-group materialization plan: one node per projected schema
/// node, holding the chunk reference and the interned field name. Building
/// the plan costs one schema walk; each row read is then a direct traversal
/// with `Arc<str>` clones for field names.
pub struct GroupReader<'g> {
    n_rows: usize,
    fields: Vec<(Arc<str>, NodePlan<'g>)>,
}

enum NodePlan<'g> {
    /// Scalar leaf: its chunk (offsets used when directly under a list).
    Scalar(&'g ColumnChunk),
    /// Struct: planned children in schema order.
    Struct(Vec<(Arc<str>, NodePlan<'g>)>),
    /// List: the chunk carrying the offsets plus the item plan.
    List {
        offsets: &'g ColumnChunk,
        item: Box<NodePlan<'g>>,
    },
}

impl GroupReader<'_> {
    /// Number of rows in the underlying group.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Materializes row `row` as a nested [`Value`].
    pub fn read_row(&self, row: usize) -> Value {
        debug_assert!(row < self.n_rows);
        let fields = self
            .fields
            .iter()
            .map(|(name, node)| (name.clone(), node.value_at(Index::Row(row))))
            .collect();
        Value::Struct(Arc::new(StructValue::new(fields)))
    }
}

impl NodePlan<'_> {
    fn value_at(&self, idx: Index) -> Value {
        match self {
            NodePlan::Scalar(chunk) => {
                let entry = match idx {
                    Index::Row(r) => chunk.row_range(r).start,
                    Index::Entry(e) => e,
                };
                chunk.data.get_value(entry)
            }
            NodePlan::Struct(fields) => {
                let out = fields
                    .iter()
                    .map(|(name, node)| (name.clone(), node.value_at(idx)))
                    .collect();
                Value::Struct(Arc::new(StructValue::new(out)))
            }
            NodePlan::List { offsets, item } => {
                let row = match idx {
                    Index::Row(r) => r,
                    Index::Entry(_) => unreachable!("nested lists are rejected by Schema::new"),
                };
                let range = offsets.row_range(row);
                let mut items = Vec::with_capacity(range.len());
                for e in range {
                    items.push(item.value_at(Index::Entry(e)));
                }
                Value::array(items)
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Index {
    /// Indexing a non-repeated context by row number.
    Row(usize),
    /// Indexing inside a repeated context by flat entry number.
    Entry(usize),
}
