//! Row groups: the horizontal partition and unit of parallelism.

use std::collections::BTreeMap;

use nested_value::{Path, StructValue, Value};

use crate::column::ColumnChunk;
use crate::error::ColumnarError;
use crate::schema::{DataType, LeafInfo, Schema};

/// A horizontal slice of the table with one [`ColumnChunk`] per leaf.
#[derive(Clone, Debug)]
pub struct RowGroup {
    n_rows: usize,
    columns: BTreeMap<Path, ColumnChunk>,
}

impl RowGroup {
    /// Assembles a row group; the caller guarantees chunk/row consistency
    /// (the [`crate::table::TableBuilder`] does).
    pub(crate) fn new(n_rows: usize, columns: BTreeMap<Path, ColumnChunk>) -> RowGroup {
        RowGroup { n_rows, columns }
    }

    /// Number of rows (events).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Chunk for a leaf path.
    pub fn column(&self, path: &Path) -> Result<&ColumnChunk, ColumnarError> {
        self.columns
            .get(path)
            .ok_or_else(|| ColumnarError::UnknownColumn(path.to_string()))
    }

    /// All `(path, chunk)` pairs in path order.
    pub fn columns(&self) -> impl Iterator<Item = (&Path, &ColumnChunk)> {
        self.columns.iter()
    }

    /// Total compressed bytes across the given leaves.
    pub fn compressed_bytes(&self, leaves: &[&LeafInfo]) -> usize {
        leaves
            .iter()
            .filter_map(|l| self.columns.get(&l.path))
            .map(|c| c.compressed_bytes)
            .sum()
    }

    /// Total uncompressed bytes across the given leaves.
    pub fn uncompressed_bytes(&self, leaves: &[&LeafInfo]) -> usize {
        leaves
            .iter()
            .filter_map(|l| self.columns.get(&l.path))
            .map(|c| c.uncompressed_bytes())
            .sum()
    }

    /// BigQuery-style logical bytes: entry count × logical type width.
    pub fn logical_bytes(&self, leaves: &[&LeafInfo]) -> usize {
        leaves
            .iter()
            .filter_map(|l| self.columns.get(&l.path).map(|c| (l, c)))
            .map(|(l, c)| c.n_entries() * l.ptype.logical_width())
            .sum()
    }

    /// Reconstructs row `row` as a nested [`Value`] containing exactly the
    /// top-level fields that have at least one projected leaf.
    ///
    /// `leaves` must be schema-ordered (as produced by
    /// [`crate::project::Projection::resolve`]).
    pub fn read_row(
        &self,
        schema: &Schema,
        leaves: &[&LeafInfo],
        row: usize,
    ) -> Result<Value, ColumnarError> {
        debug_assert!(row < self.n_rows);
        let mut builder = nested_value::value::StructBuilder::new();
        for field in schema.fields() {
            let prefix = Path::root(&field.name);
            let sub: Vec<&LeafInfo> = leaves
                .iter()
                .copied()
                .filter(|l| l.path.starts_with(&prefix))
                .collect();
            if sub.is_empty() {
                continue;
            }
            let v = self.build_value(&field.dtype, &prefix, &sub, Index::Row(row))?;
            builder.push(field.name.as_str(), v);
        }
        Ok(builder.build())
    }

    /// Reads all rows of the group (convenience for engines that want a
    /// materialized batch).
    pub fn read_rows(
        &self,
        schema: &Schema,
        leaves: &[&LeafInfo],
    ) -> Result<Vec<Value>, ColumnarError> {
        (0..self.n_rows)
            .map(|r| self.read_row(schema, leaves, r))
            .collect()
    }

    fn build_value(
        &self,
        dtype: &DataType,
        path: &Path,
        leaves: &[&LeafInfo],
        idx: Index,
    ) -> Result<Value, ColumnarError> {
        match dtype {
            DataType::Scalar(_) => {
                let chunk = self.column(path)?;
                let entry = match idx {
                    Index::Row(r) => chunk.row_range(r).start,
                    Index::Entry(e) => e,
                };
                Ok(chunk.data.get_value(entry))
            }
            DataType::Struct(fields) => {
                let mut out = Vec::new();
                for f in fields {
                    let child = path.child(&f.name);
                    let sub: Vec<&LeafInfo> = leaves
                        .iter()
                        .copied()
                        .filter(|l| l.path.starts_with(&child))
                        .collect();
                    if sub.is_empty() {
                        continue;
                    }
                    let v = self.build_value(&f.dtype, &child, &sub, idx)?;
                    out.push((std::sync::Arc::from(f.name.as_str()), v));
                }
                Ok(Value::Struct(std::sync::Arc::new(StructValue::new(out))))
            }
            DataType::List(inner) => {
                let row = match idx {
                    Index::Row(r) => r,
                    Index::Entry(_) => {
                        return Err(ColumnarError::SchemaMismatch(format!(
                            "nested list at {path}"
                        )))
                    }
                };
                // Any projected leaf below this list carries the offsets.
                let first = leaves.first().expect("non-empty leaf set");
                let chunk = self.column(&first.path)?;
                let range = chunk.row_range(row);
                let mut items = Vec::with_capacity(range.len());
                for e in range {
                    items.push(self.build_value(inner, path, leaves, Index::Entry(e))?);
                }
                Ok(Value::array(items))
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Index {
    /// Indexing a non-repeated context by row number.
    Row(usize),
    /// Indexing inside a repeated context by flat entry number.
    Entry(usize),
}
