//! Vectorized selection: typed predicate kernels over decoded column chunks.
//!
//! A [`SelectionVector`] holds the row indices of a [`RowGroup`] that
//! survive a conjunction of scalar predicates. Predicates are evaluated
//! directly over the typed `&[f64]` / `&[f32]` / `&[i32]` / `&[i64]` chunk
//! buffers — no [`nested_value::Value`] is constructed — so engines can
//! filter *before* materializing rows (late materialization).
//!
//! # Semantics
//!
//! The kernels replicate `nested_value::ops::compare` exactly, including its
//! quirks, so that pre-filtering a row group is indistinguishable from
//! materializing every row and evaluating the predicate on `Value`s:
//!
//! * an [`Int`](SelValue::Int) literal against an integer column compares in
//!   the integer domain (`i64::cmp`);
//! * every other numeric pairing compares as `f64`, with the column value
//!   widened first — for `i64` columns beyond ±2⁵³ this widening rounds, and
//!   the kernel reproduces that rounding because the engines' `Value` path
//!   does the same;
//! * NaN compares greater than every number (total order).
//!
//! Only non-repeated numeric leaves are eligible: repeated leaves have no
//! per-row scalar, and `Bool` comparisons are rejected by the engines'
//! comparison semantics in ways a pre-filter must not paper over.

use std::cmp::Ordering;

use nested_value::Path;

use crate::column::ColumnData;
use crate::error::ColumnarError;
use crate::rowgroup::RowGroup;

/// Comparison operator of a scalar predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelCmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl SelCmp {
    /// Whether an ordering outcome satisfies the operator.
    #[inline]
    pub fn accepts(self, ord: Ordering) -> bool {
        match self {
            SelCmp::Lt => ord == Ordering::Less,
            SelCmp::Le => ord != Ordering::Greater,
            SelCmp::Gt => ord == Ordering::Greater,
            SelCmp::Ge => ord != Ordering::Less,
            SelCmp::Eq => ord == Ordering::Equal,
            SelCmp::Ne => ord != Ordering::Equal,
        }
    }
}

/// A literal compared against, keeping its source type because integer and
/// float literals have different comparison semantics against integer
/// columns (see module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelValue {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
}

impl SelValue {
    /// The literal widened to `f64` (the coercion float columns see).
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            SelValue::Int(i) => i as f64,
            SelValue::Float(f) => f,
        }
    }
}

/// One conjunct of a vectorizable row filter: `leaf cmp value`.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarPredicate {
    /// Non-repeated numeric leaf being tested.
    pub leaf: Path,
    /// Comparison operator.
    pub cmp: SelCmp,
    /// Literal right-hand side.
    pub value: SelValue,
}

impl ScalarPredicate {
    /// Tests one row of a non-repeated chunk buffer with exactly the typed
    /// semantics of [`apply_predicates`], so a caller that evaluates rows
    /// one at a time (e.g. with vectorization toggled off) stays
    /// bit-identical to the batched kernels. Boolean chunks never match
    /// (the batched path rejects them up front).
    #[inline]
    pub fn matches_row(&self, data: &ColumnData, row: usize) -> bool {
        let ord = match (data, self.value) {
            (ColumnData::F64(xs), v) => total_cmp(xs[row], v.as_f64()),
            (ColumnData::F32(xs), v) => total_cmp(xs[row] as f64, v.as_f64()),
            (ColumnData::I32(xs), SelValue::Int(i)) => (xs[row] as i64).cmp(&i),
            (ColumnData::I32(xs), SelValue::Float(y)) => total_cmp(xs[row] as f64, y),
            (ColumnData::I64(xs), SelValue::Int(i)) => xs[row].cmp(&i),
            (ColumnData::I64(xs), SelValue::Float(y)) => total_cmp(xs[row] as f64, y),
            (ColumnData::Bool(_), _) => return false,
        };
        self.cmp.accepts(ord)
    }
}

/// Row indices of one row group surviving a filter, in increasing order.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectionVector {
    n_rows: usize,
    rows: Vec<u32>,
}

impl SelectionVector {
    /// Selection passing every row of a group with `n_rows` rows.
    pub fn full(n_rows: usize) -> SelectionVector {
        SelectionVector {
            n_rows,
            rows: (0..n_rows as u32).collect(),
        }
    }

    /// Selection from an explicit (increasing) row list.
    pub fn from_rows(n_rows: usize, rows: Vec<u32>) -> SelectionVector {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(rows.last().is_none_or(|&r| (r as usize) < n_rows));
        SelectionVector { n_rows, rows }
    }

    /// Row count of the underlying group.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of surviving rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing survived.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True if every row survived.
    pub fn is_full(&self) -> bool {
        self.rows.len() == self.n_rows
    }

    /// The surviving row indices.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }
}

/// Replica of `nested_value::ops`' total order: NaN greatest.
#[inline]
fn total_cmp(x: f64, y: f64) -> Ordering {
    match (x.is_nan(), y.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => x.partial_cmp(&y).expect("non-NaN"),
    }
}

/// Evaluates a conjunction of scalar predicates over a row group and
/// returns the surviving rows. With an empty predicate list every row
/// survives. Errors on repeated or boolean leaves (the caller's planner is
/// expected to have screened those out).
pub fn apply_predicates(
    group: &RowGroup,
    preds: &[ScalarPredicate],
) -> Result<SelectionVector, ColumnarError> {
    let n_rows = group.n_rows();
    let mut survivors: Option<Vec<u32>> = None;
    for pred in preds {
        let chunk = group.column(&pred.leaf)?;
        if chunk.offsets.is_some() {
            return Err(ColumnarError::SchemaMismatch(format!(
                "vectorized predicate on repeated leaf {}",
                pred.leaf
            )));
        }
        let prev = survivors.as_deref();
        let next = match (&chunk.data, pred.value) {
            (ColumnData::F64(xs), v) => {
                let y = v.as_f64();
                filter_rows(xs, prev, n_rows, |x| pred.cmp.accepts(total_cmp(x, y)))
            }
            (ColumnData::F32(xs), v) => {
                let y = v.as_f64();
                filter_rows(xs, prev, n_rows, |x| {
                    pred.cmp.accepts(total_cmp(x as f64, y))
                })
            }
            (ColumnData::I32(xs), SelValue::Int(i)) => {
                filter_rows(xs, prev, n_rows, |x| pred.cmp.accepts((x as i64).cmp(&i)))
            }
            (ColumnData::I32(xs), SelValue::Float(y)) => filter_rows(xs, prev, n_rows, |x| {
                pred.cmp.accepts(total_cmp(x as f64, y))
            }),
            (ColumnData::I64(xs), SelValue::Int(i)) => {
                filter_rows(xs, prev, n_rows, |x| pred.cmp.accepts(x.cmp(&i)))
            }
            (ColumnData::I64(xs), SelValue::Float(y)) => filter_rows(xs, prev, n_rows, |x| {
                pred.cmp.accepts(total_cmp(x as f64, y))
            }),
            (ColumnData::Bool(_), _) => {
                return Err(ColumnarError::SchemaMismatch(format!(
                    "vectorized predicate on boolean leaf {}",
                    pred.leaf
                )))
            }
        };
        if next.is_empty() {
            return Ok(SelectionVector {
                n_rows,
                rows: Vec::new(),
            });
        }
        survivors = Some(next);
    }
    Ok(match survivors {
        Some(rows) => SelectionVector { n_rows, rows },
        None => SelectionVector::full(n_rows),
    })
}

/// Monomorphic filter loop: first predicate scans the whole chunk,
/// follow-up predicates only re-test prior survivors.
#[inline]
fn filter_rows<T: Copy>(
    data: &[T],
    prev: Option<&[u32]>,
    n_rows: usize,
    test: impl Fn(T) -> bool,
) -> Vec<u32> {
    debug_assert_eq!(data.len(), n_rows);
    match prev {
        None => (0..n_rows as u32)
            .filter(|&r| test(data[r as usize]))
            .collect(),
        Some(rows) => rows
            .iter()
            .copied()
            .filter(|&r| test(data[r as usize]))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::table::TableBuilder;
    use nested_value::Value;

    fn group() -> RowGroup {
        let schema = Schema::new(vec![
            Field::new("id", DataType::i64()),
            Field::new("pt", DataType::f64()),
            Field::new("n", DataType::i32()),
            Field::new("flag", DataType::bool()),
            Field::new(
                "Jet",
                DataType::particle_list(vec![Field::new("pt", DataType::f32())]),
            ),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema, 64);
        for i in 0..8i64 {
            b.append(&Value::struct_from(vec![
                ("id", Value::Int(i)),
                ("pt", Value::Float(i as f64 * 10.0)),
                ("n", Value::Int(i % 3)),
                ("flag", Value::Bool(i % 2 == 0)),
                ("Jet", Value::array(vec![])),
            ]))
            .unwrap();
        }
        b.finish().row_groups()[0].clone()
    }

    fn pred(leaf: &str, cmp: SelCmp, value: SelValue) -> ScalarPredicate {
        ScalarPredicate {
            leaf: Path::parse(leaf),
            cmp,
            value,
        }
    }

    #[test]
    fn empty_conjunction_keeps_all() {
        let sel = apply_predicates(&group(), &[]).unwrap();
        assert!(sel.is_full());
        assert_eq!(sel.len(), 8);
    }

    #[test]
    fn single_float_predicate() {
        let sel =
            apply_predicates(&group(), &[pred("pt", SelCmp::Gt, SelValue::Float(25.0))]).unwrap();
        assert_eq!(sel.rows(), &[3, 4, 5, 6, 7]);
        assert!(!sel.is_full());
    }

    #[test]
    fn conjunction_narrows() {
        let sel = apply_predicates(
            &group(),
            &[
                pred("pt", SelCmp::Ge, SelValue::Float(20.0)),
                pred("n", SelCmp::Eq, SelValue::Int(0)),
            ],
        )
        .unwrap();
        // pt >= 20 keeps rows 2..8; n == 0 keeps ids 0, 3, 6.
        assert_eq!(sel.rows(), &[3, 6]);
    }

    #[test]
    fn int_literal_against_int_column_is_exact() {
        let sel = apply_predicates(&group(), &[pred("id", SelCmp::Le, SelValue::Int(2))]).unwrap();
        assert_eq!(sel.rows(), &[0, 1, 2]);
    }

    #[test]
    fn all_dropped_short_circuits() {
        let sel = apply_predicates(
            &group(),
            &[
                pred("pt", SelCmp::Gt, SelValue::Float(1e9)),
                pred("n", SelCmp::Eq, SelValue::Int(0)),
            ],
        )
        .unwrap();
        assert!(sel.is_empty());
        assert_eq!(sel.n_rows(), 8);
    }

    #[test]
    fn nan_sorts_greatest() {
        // NaN literal: everything compares Less, so `< NaN` keeps all rows
        // and `> NaN` keeps none — exactly ops::compare's total order.
        let g = group();
        let lt =
            apply_predicates(&g, &[pred("pt", SelCmp::Lt, SelValue::Float(f64::NAN))]).unwrap();
        assert!(lt.is_full());
        let gt =
            apply_predicates(&g, &[pred("pt", SelCmp::Gt, SelValue::Float(f64::NAN))]).unwrap();
        assert!(gt.is_empty());
    }

    #[test]
    fn rejects_repeated_and_bool_leaves() {
        let g = group();
        assert!(apply_predicates(&g, &[pred("Jet.pt", SelCmp::Gt, SelValue::Float(0.0))]).is_err());
        assert!(apply_predicates(&g, &[pred("flag", SelCmp::Eq, SelValue::Int(1))]).is_err());
        assert!(apply_predicates(&g, &[pred("nope", SelCmp::Eq, SelValue::Int(1))]).is_err());
    }
}
