//! Physical column chunks.

use crate::compress::{self, Encoding};
use crate::schema::PhysicalType;
use crate::stats::ZoneMap;

/// The physical buffer of one leaf column within one row group.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// Booleans.
    Bool(Vec<bool>),
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
}

impl ColumnData {
    /// Creates an empty buffer of the given physical type.
    pub fn empty(pt: PhysicalType) -> ColumnData {
        match pt {
            PhysicalType::Bool => ColumnData::Bool(Vec::new()),
            PhysicalType::Int32 => ColumnData::I32(Vec::new()),
            PhysicalType::Int64 => ColumnData::I64(Vec::new()),
            PhysicalType::Float32 => ColumnData::F32(Vec::new()),
            PhysicalType::Float64 => ColumnData::F64(Vec::new()),
        }
    }

    /// The buffer's physical type.
    pub fn physical_type(&self) -> PhysicalType {
        match self {
            ColumnData::Bool(_) => PhysicalType::Bool,
            ColumnData::I32(_) => PhysicalType::Int32,
            ColumnData::I64(_) => PhysicalType::Int64,
            ColumnData::F32(_) => PhysicalType::Float32,
            ColumnData::F64(_) => PhysicalType::Float64,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F32(v) => v.len(),
            ColumnData::F64(v) => v.len(),
        }
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry at `i` widened to `f64` (numeric columns only; booleans map to
    /// 0.0/1.0 so histogram engines can treat everything uniformly).
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            ColumnData::Bool(v) => v[i] as u8 as f64,
            ColumnData::I32(v) => v[i] as f64,
            ColumnData::I64(v) => v[i] as f64,
            ColumnData::F32(v) => v[i] as f64,
            ColumnData::F64(v) => v[i],
        }
    }

    /// Entry at `i` as the dynamic value type.
    pub fn get_value(&self, i: usize) -> nested_value::Value {
        use nested_value::Value;
        match self {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::I32(v) => Value::Int(v[i] as i64),
            ColumnData::I64(v) => Value::Int(v[i]),
            ColumnData::F32(v) => Value::Float(v[i] as f64),
            ColumnData::F64(v) => Value::Float(v[i]),
        }
    }

    /// Uncompressed byte size of the buffer.
    pub fn uncompressed_bytes(&self) -> usize {
        self.len() * self.physical_type().width()
    }
}

/// A leaf column within one row group: data, optional offsets, and
/// physically accurate size accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnChunk {
    /// Value buffer (flattened across list elements if `offsets` is set).
    pub data: ColumnData,
    /// For repeated leaves: `n_rows + 1` offsets into `data`; row `i` owns
    /// entries `offsets[i]..offsets[i+1]`. `None` for non-repeated leaves.
    pub offsets: Option<Vec<u32>>,
    /// Byte size under the adaptively chosen [`encoding`](Self::encoding)
    /// of [`compress`] (values) plus delta-varint offsets.
    pub compressed_bytes: usize,
    /// Minimum value (numeric view), if any entries exist.
    pub min: Option<f64>,
    /// Maximum value (numeric view), if any entries exist.
    pub max: Option<f64>,
    /// The encoding [`compress::choose`] picked for the value buffer
    /// (smallest measured payload among the applicable candidates).
    pub encoding: Encoding,
    /// Zone map for row-group pruning (see [`crate::stats`]).
    pub zone: ZoneMap,
}

impl ColumnChunk {
    /// Seals a buffer into a chunk: picks the cheapest encoding, computes
    /// the compressed size under it, and builds min/max statistics.
    pub fn seal(data: ColumnData, offsets: Option<Vec<u32>>) -> ColumnChunk {
        let (encoding, value_bytes) = compress::choose(&data);
        let compressed_bytes =
            value_bytes + offsets.as_ref().map_or(0, |o| compress::offsets_size(o));
        let (mut min, mut max) = (None::<f64>, None::<f64>);
        for i in 0..data.len() {
            let x = data.get_f64(i);
            min = Some(min.map_or(x, |m: f64| m.min(x)));
            max = Some(max.map_or(x, |m: f64| m.max(x)));
        }
        let zone = ZoneMap::build(&data);
        ColumnChunk {
            data,
            offsets,
            compressed_bytes,
            min,
            max,
            encoding,
            zone,
        }
    }

    /// Number of leaf entries (not rows).
    pub fn n_entries(&self) -> usize {
        self.data.len()
    }

    /// Uncompressed physical byte size (values + offsets).
    pub fn uncompressed_bytes(&self) -> usize {
        self.data.uncompressed_bytes() + self.offsets.as_ref().map_or(0, |o| o.len() * 4)
    }

    /// The entry range belonging to row `row` for repeated leaves, or
    /// `row..row + 1` for flat leaves.
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        match &self.offsets {
            Some(off) => off[row] as usize..off[row + 1] as usize,
            None => row..row + 1,
        }
    }

    /// Typed view for hot loops: f64 slice (only for `Float64` buffers).
    pub fn f64s(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view for hot loops: f32 slice.
    pub fn f32s(&self) -> Option<&[f32]> {
        match &self.data {
            ColumnData::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view: i32 slice.
    pub fn i32s(&self) -> Option<&[i32]> {
        match &self.data {
            ColumnData::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view: i64 slice.
    pub fn i64s(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view: bool slice.
    pub fn bools(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_computes_stats() {
        let c = ColumnChunk::seal(ColumnData::F64(vec![3.0, -1.0, 2.0]), None);
        assert_eq!(c.min, Some(-1.0));
        assert_eq!(c.max, Some(3.0));
        assert_eq!(c.n_entries(), 3);
        assert_eq!(c.uncompressed_bytes(), 24);
        assert!(c.compressed_bytes > 0);
        assert_eq!(c.zone.min, Some(-1.0));
        assert_eq!(c.zone.max, Some(3.0));
        assert_eq!(c.zone.n_entries, 3);
    }

    #[test]
    fn seal_picks_smallest_encoding() {
        let constant = ColumnChunk::seal(ColumnData::F64(vec![9.81; 2000]), None);
        assert_eq!(constant.encoding, compress::Encoding::Dict);
        assert!(
            constant.compressed_bytes <= compress::compressed_size(&constant.data),
            "adaptive choice must never exceed the type-default estimate"
        );
        let sequential = ColumnChunk::seal(ColumnData::I64((0..2000).collect()), None);
        assert_eq!(sequential.encoding, compress::Encoding::DeltaVarint);
    }

    #[test]
    fn empty_chunk() {
        let c = ColumnChunk::seal(ColumnData::F32(vec![]), None);
        assert_eq!(c.min, None);
        assert_eq!(c.max, None);
        assert_eq!(c.uncompressed_bytes(), 0);
    }

    #[test]
    fn row_range_with_offsets() {
        let c = ColumnChunk::seal(ColumnData::I32(vec![1, 2, 3, 4, 5]), Some(vec![0, 2, 2, 5]));
        assert_eq!(c.row_range(0), 0..2);
        assert_eq!(c.row_range(1), 2..2);
        assert_eq!(c.row_range(2), 2..5);
    }

    #[test]
    fn typed_views() {
        let c = ColumnChunk::seal(ColumnData::F64(vec![1.0]), None);
        assert!(c.f64s().is_some());
        assert!(c.f32s().is_none());
        assert_eq!(c.data.get_f64(0), 1.0);
        assert_eq!(c.data.get_value(0), nested_value::Value::Float(1.0));
    }

    #[test]
    fn bool_numeric_view() {
        let d = ColumnData::Bool(vec![true, false]);
        assert_eq!(d.get_f64(0), 1.0);
        assert_eq!(d.get_f64(1), 0.0);
        assert_eq!(d.uncompressed_bytes(), 2);
    }
}
