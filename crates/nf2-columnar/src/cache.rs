//! Byte-budgeted LRU chunk cache — the buffer pool fronting row-group
//! column reads in the serving layer.
//!
//! The cache holds sealed [`ColumnChunk`]s keyed by
//! `(table fingerprint, row group, leaf path)` and is budgeted on the
//! chunks' **compressed** byte size: that is the unit a storage read
//! fetches, so "resident bytes" corresponds one-to-one with physical I/O
//! avoided. Because tables are immutable (and the fingerprint covers the
//! data), entries never need invalidation — a fingerprint change is a new
//! key space.
//!
//! Semantics (pinned by the proptests in `proptests.rs`):
//!
//! * resident bytes never exceed the budget, after every operation;
//! * a hit only touches recency — it never evicts;
//! * `get` after `put` returns the identical chunk (same bytes) as long
//!   as the entry has not been evicted;
//! * a chunk larger than the whole budget is not admitted at all (rather
//!   than flushing the entire pool for a single unreusable entry).
//!
//! Scan accounting treats the cache as transparent: `bytes_scanned` (the
//! QaaS billing basis) is unchanged by hits, while
//! [`crate::ScanStats::bytes_from_cache`] records how much of it was
//! served from the pool instead of storage. See [`crate::scan`].

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use nested_value::Path;
use parking_lot::Mutex;

use crate::column::ColumnChunk;

/// Cache key: one leaf column chunk of one row group of one table version.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// [`crate::Table::fingerprint`] of the owning table.
    pub table: u64,
    /// Row-group index within the table.
    pub group: u32,
    /// Leaf path of the column.
    pub leaf: Path,
}

/// Monotonic cache counters (since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the pool.
    pub hits: u64,
    /// Lookups that went to storage.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries admitted.
    pub insertions: u64,
}

/// Result of one [`ChunkCache::admit`] call.
#[derive(Clone, Copy, Debug)]
pub struct Admission {
    /// Whether the chunk was already resident.
    pub hit: bool,
    /// Evictions this admission caused (always 0 on a hit).
    pub evicted: u64,
}

struct Slot {
    chunk: Arc<ColumnChunk>,
    cost: usize,
    tick: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<ChunkKey, Slot>,
    /// Recency index: tick → key, oldest first. Ticks are unique.
    order: BTreeMap<u64, ChunkKey>,
    resident: usize,
    tick: u64,
    counters: CacheCounters,
}

impl Inner {
    fn touch(&mut self, key: &ChunkKey) {
        self.tick += 1;
        let slot = self.map.get_mut(key).expect("touched key is resident");
        self.order.remove(&slot.tick);
        slot.tick = self.tick;
        self.order.insert(self.tick, key.clone());
    }

    fn evict_lru(&mut self) {
        let (&tick, _) = self.order.iter().next().expect("non-empty on evict");
        let key = self.order.remove(&tick).expect("indexed");
        let slot = self.map.remove(&key).expect("in sync");
        self.resident -= slot.cost;
        self.counters.evictions += 1;
    }

    fn insert(
        &mut self,
        key: ChunkKey,
        chunk: Arc<ColumnChunk>,
        cost: usize,
        budget: usize,
    ) -> u64 {
        if cost > budget {
            return 0; // never admitted: would flush the whole pool
        }
        let mut evicted = 0;
        while self.resident + cost > budget {
            self.evict_lru();
            evicted += 1;
        }
        self.tick += 1;
        self.order.insert(self.tick, key.clone());
        self.map.insert(
            key,
            Slot {
                chunk,
                cost,
                tick: self.tick,
            },
        );
        self.resident += cost;
        self.counters.insertions += 1;
        evicted
    }
}

/// A shared, thread-safe, byte-budgeted LRU over column chunks.
pub struct ChunkCache {
    budget: usize,
    inner: Mutex<Inner>,
}

impl ChunkCache {
    /// Creates a cache with the given budget in (compressed) bytes.
    pub fn new(budget_bytes: usize) -> ChunkCache {
        ChunkCache {
            budget: budget_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Looks up a chunk, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: &ChunkKey) -> Option<Arc<ColumnChunk>> {
        let mut inner = self.inner.lock();
        if inner.map.contains_key(key) {
            inner.touch(key);
            inner.counters.hits += 1;
            Some(inner.map[key].chunk.clone())
        } else {
            inner.counters.misses += 1;
            None
        }
    }

    /// Admits a chunk after a storage read, evicting LRU entries as needed.
    /// Re-putting a resident key refreshes its value and recency.
    pub fn put(&self, key: ChunkKey, chunk: Arc<ColumnChunk>) -> u64 {
        let cost = chunk.compressed_bytes;
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            inner.touch(&key);
            let slot = inner.map.get_mut(&key).expect("resident");
            slot.chunk = chunk;
            debug_assert_eq!(slot.cost, cost, "immutable chunks cannot change size");
            return 0;
        }
        inner.insert(key, chunk, cost, self.budget)
    }

    /// One read through the buffer pool: on a miss, `load` is charged (the
    /// storage read) and the chunk is admitted. Returns whether the read
    /// was a hit and how many evictions it caused.
    pub fn admit(&self, key: &ChunkKey, load: impl FnOnce() -> Arc<ColumnChunk>) -> Admission {
        if self.get(key).is_some() {
            return Admission {
                hit: true,
                evicted: 0,
            };
        }
        let evicted = self.put(key.clone(), load());
        Admission {
            hit: false,
            evicted,
        }
    }

    /// Resident bytes (≤ budget at all times).
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().resident
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.inner.lock().counters
    }
}

impl std::fmt::Debug for ChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ChunkCache")
            .field("budget", &self.budget)
            .field("resident", &inner.resident)
            .field("entries", &inner.map.len())
            .field("counters", &inner.counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;

    fn chunk(n: usize) -> Arc<ColumnChunk> {
        Arc::new(ColumnChunk::seal(
            ColumnData::F64((0..n).map(|i| i as f64 * 0.7).collect()),
            None,
        ))
    }

    fn key(i: u32) -> ChunkKey {
        ChunkKey {
            table: 42,
            group: i,
            leaf: Path::parse("MET.pt"),
        }
    }

    #[test]
    fn get_after_put_returns_same_chunk() {
        let cache = ChunkCache::new(1 << 20);
        let c = chunk(100);
        cache.put(key(0), c.clone());
        let got = cache.get(&key(0)).expect("resident");
        assert!(Arc::ptr_eq(&got, &c));
        assert_eq!(cache.counters().hits, 1);
    }

    #[test]
    fn lru_evicts_oldest_within_budget() {
        let one = chunk(64).compressed_bytes;
        let cache = ChunkCache::new(one * 2 + 1);
        cache.put(key(0), chunk(64));
        cache.put(key(1), chunk(64));
        // Touch 0 so 1 becomes LRU.
        assert!(cache.get(&key(0)).is_some());
        cache.put(key(2), chunk(64));
        assert!(cache.resident_bytes() <= cache.budget_bytes());
        assert!(cache.get(&key(0)).is_some(), "recently used survived");
        assert!(cache.get(&key(1)).is_none(), "LRU evicted");
        assert!(cache.get(&key(2)).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn oversized_chunk_never_admitted() {
        let small = chunk(8);
        let cache = ChunkCache::new(small.compressed_bytes);
        cache.put(key(0), small);
        let big = chunk(10_000);
        assert!(big.compressed_bytes > cache.budget_bytes());
        cache.put(key(1), big);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(0)).is_some(), "pool not flushed");
    }

    #[test]
    fn admit_counts_hits_and_misses() {
        let cache = ChunkCache::new(1 << 20);
        let a = cache.admit(&key(0), || chunk(16));
        assert!(!a.hit);
        let b = cache.admit(&key(0), || unreachable!("resident"));
        assert!(b.hit);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
    }
}
