//! Zone maps: per-chunk min/max statistics and row-group pruning.
//!
//! Every [`ColumnChunk`](crate::column::ColumnChunk) is sealed with a
//! [`ZoneMap`] — min/max plus entry/null counts, Parquet's
//! `Statistics` in miniature. A scan with filterable scalar predicates
//! (the same [`ScalarPredicate`]s the vectorized filter kernel executes)
//! can then prove a whole row group empty *before decoding it*: if any
//! predicate cannot match anywhere in `[min, max]`, the group is skipped
//! and its compressed bytes are billed as `bytes_pruned` instead of
//! `bytes_scanned`.
//!
//! Soundness contract: [`ZoneMap::may_match`] must return `true` whenever
//! [`ScalarPredicate::matches_row`](crate::select::ScalarPredicate::matches_row)
//! could return `true` for any entry of the chunk. The kernel's total
//! order sorts NaN greatest and treats `-0.0 == 0.0`, so:
//!
//! * integer-literal vs integer-column predicates compare in the exact
//!   `i64` domain (`int_min`/`int_max`), mirroring the kernel's exact
//!   integer path;
//! * everything else compares in `f64` over the NaN-free `min`/`max`,
//!   with `has_nan` forcing the conservative answer for the comparisons
//!   a NaN entry would satisfy (`>`, `>=`, `!=`);
//! * boolean chunks carry no min/max and never prune — the filter kernel
//!   rejects boolean predicates with an error, and pruning the group
//!   would mask that error.
//!
//! Repeated leaves are likewise never pruned here: zone maps summarize
//! flat entries, while predicate semantics over lists are per-element and
//! engine-specific. [`skip_mask`] treats them conservatively.

use crate::column::ColumnData;
use crate::rowgroup::RowGroup;
use crate::select::{ScalarPredicate, SelCmp, SelValue};
use crate::table::Table;

/// Min/max + count statistics for one column chunk.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ZoneMap {
    /// Minimum over non-NaN entries, widened to `f64`. `None` for boolean
    /// chunks (not comparable) and for empty or all-NaN chunks.
    pub min: Option<f64>,
    /// Maximum over non-NaN entries, widened to `f64`.
    pub max: Option<f64>,
    /// Exact integer minimum (integer chunks only; the `f64` widening of
    /// an `i64` is lossy above 2^53, the integer bounds are not).
    pub int_min: Option<i64>,
    /// Exact integer maximum (integer chunks only).
    pub int_max: Option<i64>,
    /// True if any entry is NaN (float chunks only). NaN sorts greatest
    /// in the filter kernel, so it satisfies `>`, `>=`, and `!=` against
    /// every finite literal.
    pub has_nan: bool,
    /// Number of leaf entries (not rows).
    pub n_entries: u64,
    /// Number of null entries. The event model is dense (no nulls), so
    /// this is always 0 today; it is part of the statistics contract so
    /// the pricing/pruning layer does not change shape when optional
    /// fields arrive.
    pub n_nulls: u64,
}

impl ZoneMap {
    /// Computes the zone map of a value buffer.
    pub fn build(data: &ColumnData) -> ZoneMap {
        let mut zm = ZoneMap {
            n_entries: data.len() as u64,
            ..ZoneMap::default()
        };
        match data {
            // Booleans are not comparable in the filter kernel: no bounds.
            ColumnData::Bool(_) => {}
            ColumnData::I32(v) => zm.set_int_bounds(v.iter().map(|&x| x as i64)),
            ColumnData::I64(v) => zm.set_int_bounds(v.iter().copied()),
            ColumnData::F32(v) => zm.set_float_bounds(v.iter().map(|&x| x as f64)),
            ColumnData::F64(v) => zm.set_float_bounds(v.iter().copied()),
        }
        zm
    }

    fn set_int_bounds(&mut self, xs: impl Iterator<Item = i64>) {
        for x in xs {
            self.int_min = Some(self.int_min.map_or(x, |m| m.min(x)));
            self.int_max = Some(self.int_max.map_or(x, |m| m.max(x)));
        }
        // `as f64` is monotone over i64, so the widened bounds are valid
        // (if rounded) f64 bounds for mixed int-column/float-literal
        // comparisons.
        self.min = self.int_min.map(|x| x as f64);
        self.max = self.int_max.map(|x| x as f64);
    }

    fn set_float_bounds(&mut self, xs: impl Iterator<Item = f64>) {
        for x in xs {
            if x.is_nan() {
                self.has_nan = true;
                continue;
            }
            self.min = Some(self.min.map_or(x, |m: f64| m.min(x)));
            self.max = Some(self.max.map_or(x, |m: f64| m.max(x)));
        }
    }

    /// Could `entry cmp value` hold for *some* entry summarized by this
    /// zone map? `false` proves the predicate matches nothing here, so the
    /// group can be skipped; `true` is always safe.
    pub fn may_match(&self, cmp: SelCmp, value: SelValue) -> bool {
        if self.n_entries == 0 {
            // Vacuous: no entry can match. (Flat leaves of a non-empty
            // group always have entries; this arm covers empty groups.)
            return false;
        }
        // Exact integer path, mirroring the kernel's i64 comparison for
        // integer literals against integer columns.
        if let (SelValue::Int(y), Some(lo), Some(hi)) = (value, self.int_min, self.int_max) {
            return match cmp {
                SelCmp::Lt => lo < y,
                SelCmp::Le => lo <= y,
                SelCmp::Gt => hi > y,
                SelCmp::Ge => hi >= y,
                SelCmp::Eq => lo <= y && y <= hi,
                SelCmp::Ne => lo != hi || lo != y,
            };
        }
        let y = value.as_f64();
        if y.is_nan() {
            // The kernel sorts NaN greatest: `x < NaN` holds for every
            // non-NaN x, `x == NaN` only for NaN x, `x > NaN` never.
            return match cmp {
                SelCmp::Lt | SelCmp::Le => self.min.is_some(),
                SelCmp::Gt => false,
                SelCmp::Ge | SelCmp::Eq => self.has_nan,
                SelCmp::Ne => self.min.is_some(),
            };
        }
        let (Some(lo), Some(hi)) = (self.min, self.max) else {
            // No numeric bounds: a boolean chunk (kernel errors on these;
            // keep the group so the error surfaces) or an all-NaN chunk.
            // `has_nan` answers the all-NaN case exactly; booleans stay
            // conservative.
            return match (self.has_nan, cmp) {
                (true, SelCmp::Lt | SelCmp::Le) => false,
                (true, SelCmp::Gt | SelCmp::Ge | SelCmp::Ne) => true,
                (true, SelCmp::Eq) => false,
                (false, _) => true,
            };
        };
        // NaN entries satisfy >, >=, != against any non-NaN literal.
        match cmp {
            SelCmp::Lt => lo < y,
            SelCmp::Le => lo <= y,
            SelCmp::Gt => self.has_nan || hi > y,
            SelCmp::Ge => self.has_nan || hi >= y,
            SelCmp::Eq => lo <= y && y <= hi,
            SelCmp::Ne => self.has_nan || lo != hi || lo != y,
        }
    }
}

/// Could any row of `group` satisfy *all* predicates? Unknown leaves,
/// repeated leaves, and boolean chunks are conservative (the filter kernel
/// reports those as errors; pruning must not pre-empt them).
pub fn group_may_match(group: &RowGroup, predicates: &[ScalarPredicate]) -> bool {
    predicates.iter().all(|p| match group.column(&p.leaf) {
        Ok(chunk) if chunk.offsets.is_none() => chunk.zone.may_match(p.cmp, p.value),
        _ => true,
    })
}

/// Builds a skip mask over the table's row groups for a conjunction of
/// scalar predicates: `mask[g]` is `true` when group `g` provably matches
/// no rows and can be skipped without decoding. An empty predicate list
/// skips nothing.
pub fn skip_mask(table: &Table, predicates: &[ScalarPredicate]) -> Vec<bool> {
    if predicates.is_empty() {
        return vec![false; table.row_groups().len()];
    }
    table
        .row_groups()
        .iter()
        .map(|g| !group_may_match(g, predicates))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::PhysicalType;

    fn zm(data: ColumnData) -> ZoneMap {
        ZoneMap::build(&data)
    }

    #[test]
    fn int_bounds_are_exact() {
        let z = zm(ColumnData::I64(vec![3, -7, 11]));
        assert_eq!(z.int_min, Some(-7));
        assert_eq!(z.int_max, Some(11));
        assert_eq!(z.min, Some(-7.0));
        assert_eq!(z.max, Some(11.0));
        assert_eq!(z.n_entries, 3);
        assert_eq!(z.n_nulls, 0);

        assert!(z.may_match(SelCmp::Lt, SelValue::Int(-6)));
        assert!(!z.may_match(SelCmp::Lt, SelValue::Int(-7)));
        assert!(z.may_match(SelCmp::Le, SelValue::Int(-7)));
        assert!(!z.may_match(SelCmp::Le, SelValue::Int(-8)));
        assert!(z.may_match(SelCmp::Gt, SelValue::Int(10)));
        assert!(!z.may_match(SelCmp::Gt, SelValue::Int(11)));
        assert!(z.may_match(SelCmp::Ge, SelValue::Int(11)));
        assert!(!z.may_match(SelCmp::Ge, SelValue::Int(12)));
        assert!(z.may_match(SelCmp::Eq, SelValue::Int(0)));
        assert!(!z.may_match(SelCmp::Eq, SelValue::Int(12)));
        assert!(z.may_match(SelCmp::Ne, SelValue::Int(3)));
    }

    #[test]
    fn ne_on_constant_chunk_prunes() {
        let z = zm(ColumnData::I32(vec![5, 5, 5]));
        assert!(!z.may_match(SelCmp::Ne, SelValue::Int(5)));
        assert!(z.may_match(SelCmp::Ne, SelValue::Int(6)));
        // Mixed-domain literal still prunes via the float path.
        assert!(!z.may_match(SelCmp::Ne, SelValue::Float(5.0)));
        assert!(z.may_match(SelCmp::Ne, SelValue::Float(5.5)));
    }

    #[test]
    fn i64_bounds_above_2_53_stay_exact() {
        // 2^53 + 1 is not representable as f64; the exact path must not
        // round it away.
        let big = (1i64 << 53) + 1;
        let z = zm(ColumnData::I64(vec![big]));
        assert!(z.may_match(SelCmp::Eq, SelValue::Int(big)));
        assert!(!z.may_match(SelCmp::Eq, SelValue::Int(big + 1)));
        assert!(!z.may_match(SelCmp::Gt, SelValue::Int(big)));
        assert!(z.may_match(SelCmp::Gt, SelValue::Int(big - 1)));
    }

    #[test]
    fn float_bounds_skip_nan_but_stay_conservative() {
        let z = zm(ColumnData::F64(vec![1.0, f64::NAN, 3.0]));
        assert_eq!(z.min, Some(1.0));
        assert_eq!(z.max, Some(3.0));
        assert!(z.has_nan);
        // NaN sorts greatest: it satisfies >, >=, != against any finite y.
        assert!(z.may_match(SelCmp::Gt, SelValue::Float(100.0)));
        assert!(z.may_match(SelCmp::Ge, SelValue::Float(100.0)));
        assert!(z.may_match(SelCmp::Ne, SelValue::Float(100.0)));
        // ...but not <, <=, ==.
        assert!(!z.may_match(SelCmp::Lt, SelValue::Float(1.0)));
        assert!(!z.may_match(SelCmp::Eq, SelValue::Float(100.0)));
    }

    #[test]
    fn nan_literal_uses_kernel_total_order() {
        let clean = zm(ColumnData::F64(vec![1.0, 2.0]));
        let y = SelValue::Float(f64::NAN);
        // Every non-NaN entry is < NaN under the kernel's total order.
        assert!(clean.may_match(SelCmp::Lt, y));
        assert!(clean.may_match(SelCmp::Ne, y));
        assert!(!clean.may_match(SelCmp::Gt, y));
        assert!(!clean.may_match(SelCmp::Eq, y));
        let dirty = zm(ColumnData::F64(vec![1.0, f64::NAN]));
        assert!(dirty.may_match(SelCmp::Eq, y));
        assert!(dirty.may_match(SelCmp::Ge, y));
    }

    #[test]
    fn all_nan_chunk() {
        let z = zm(ColumnData::F64(vec![f64::NAN, f64::NAN]));
        assert_eq!(z.min, None);
        assert!(z.has_nan);
        assert!(!z.may_match(SelCmp::Lt, SelValue::Float(1e300)));
        assert!(!z.may_match(SelCmp::Eq, SelValue::Float(0.0)));
        assert!(z.may_match(SelCmp::Gt, SelValue::Float(1e300)));
        assert!(z.may_match(SelCmp::Ne, SelValue::Float(0.0)));
        assert!(z.may_match(SelCmp::Eq, SelValue::Float(f64::NAN)));
    }

    #[test]
    fn bool_chunks_never_prune() {
        // The filter kernel errors on boolean predicates; pruning would
        // mask the error, so every comparison stays conservative.
        let z = zm(ColumnData::Bool(vec![true, false]));
        assert_eq!(z.min, None);
        for cmp in [
            SelCmp::Lt,
            SelCmp::Le,
            SelCmp::Gt,
            SelCmp::Ge,
            SelCmp::Eq,
            SelCmp::Ne,
        ] {
            assert!(z.may_match(cmp, SelValue::Float(0.5)), "{cmp:?}");
            assert!(z.may_match(cmp, SelValue::Int(7)), "{cmp:?}");
        }
    }

    #[test]
    fn empty_chunk_matches_nothing() {
        let z = zm(ColumnData::empty(PhysicalType::Float64));
        assert!(!z.may_match(SelCmp::Ne, SelValue::Float(1.0)));
        assert!(!z.may_match(SelCmp::Lt, SelValue::Float(f64::NAN)));
    }

    #[test]
    fn minus_zero_equals_zero() {
        // The kernel's total order compares -0.0 == 0.0 (partial_cmp), so
        // a [-0.0, -0.0] chunk must admit `== 0.0`.
        let z = zm(ColumnData::F64(vec![-0.0]));
        assert!(z.may_match(SelCmp::Eq, SelValue::Float(0.0)));
        assert!(z.may_match(SelCmp::Le, SelValue::Float(0.0)));
        assert!(z.may_match(SelCmp::Ge, SelValue::Float(0.0)));
        assert!(!z.may_match(SelCmp::Ne, SelValue::Float(0.0)));
    }
}
