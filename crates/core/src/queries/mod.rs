//! The benchmark query texts for every system under test.
//!
//! All SQL texts follow one output contract: the final relation has two
//! columns `(bin BIGINT, n BIGINT)` where `bin ∈ {-1} ∪ [0, 100]` (−1 =
//! underflow, 100 = overflow) for the query's [`HistSpec`]. JSONiq modules
//! return the flat sequence of bin indices (one per plotted value) — the
//! trivial final count is the adapter's job, mirroring how Rumble jobs
//! collect results from Spark.
//!
//! The floating-point formulas in the texts are written to execute the
//! **bit-identical** operation sequence of the reference kernels in
//! [`crate::reference`], enabling exact cross-engine validation.

pub mod athena;
pub mod bigquery;
pub mod jsoniq;
pub mod presto;
pub mod rdataframe_cpp;

use physics::HistSpec;

use crate::spec::QueryId;

/// Languages/dialects under test (Table 1 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Language {
    /// Amazon Athena SQL.
    Athena,
    /// Google BigQuery SQL.
    BigQuery,
    /// PrestoDB SQL.
    Presto,
    /// JSONiq (Rumble).
    Jsoniq,
    /// ROOT RDataFrame (C++).
    RDataFrame,
}

impl Language {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Language::Athena => "Athena",
            Language::BigQuery => "BigQuery",
            Language::Presto => "Presto",
            Language::Jsoniq => "JSONiq",
            Language::RDataFrame => "RDataFrame",
        }
    }
}

/// All Table-1 languages.
pub const ALL_LANGUAGES: &[Language] = &[
    Language::Athena,
    Language::BigQuery,
    Language::Presto,
    Language::Jsoniq,
    Language::RDataFrame,
];

/// Returns the query text for a language (used for execution by the SQL /
/// JSONiq engines, and for Table-1 metrics for all five).
pub fn text(lang: Language, q: QueryId) -> String {
    match lang {
        Language::Athena => athena::text(q),
        Language::BigQuery => bigquery::text(q),
        Language::Presto => presto::text(q),
        Language::Jsoniq => jsoniq::text(q),
        Language::RDataFrame => rdataframe_cpp::text(q).to_string(),
    }
}

/// Formats an `f64` as a SQL/JSONiq literal that parses back to the same
/// bits (full precision, always with a decimal point).
pub fn flit(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        // Shortest round-trip representation.
        format!("{x}")
    }
}

/// BigQuery bins inline (and groups by the select alias, its R2.4
/// extension) — no helper UDF needed, keeping its texts the most concise
/// of the SQL dialects like in the paper.
pub fn bq_binof_call(value: &str, spec: HistSpec) -> String {
    let lo = flit(spec.lo);
    let hi = flit(spec.hi);
    let n = spec.bins as i64;
    let nf = flit(spec.bins as f64);
    format!(
        "CASE WHEN {value} < {lo} THEN -1 WHEN {value} >= {hi} THEN {n} \
         ELSE LEAST(CAST(FLOOR(({value} - {lo}) / (({hi} - {lo}) / {nf})) AS INT64), {nm1}) END",
        nm1 = n - 1
    )
}

/// Presto/Athena have no usable scalar-UDF path for binning in Athena's
/// case (no UDFs at all), so both spell the CASE out; this builds the
/// final two-CTE binning tail over a CTE `plotted(x)`.
pub fn presto_hist_tail(spec: HistSpec) -> String {
    let lo = flit(spec.lo);
    let hi = flit(spec.hi);
    let n = spec.bins as i64;
    let nf = flit(spec.bins as f64);
    format!(
        "SELECT t.bin AS bin, COUNT(*) AS n\n\
         FROM (\n\
         \x20 SELECT CASE WHEN p.x < {lo} THEN -1\n\
         \x20             WHEN p.x >= {hi} THEN {n}\n\
         \x20             ELSE LEAST(CAST(FLOOR((p.x - {lo}) / (({hi} - {lo}) / {nf})) AS BIGINT), {nm1}) END AS bin\n\
         \x20 FROM plotted p) t\n\
         GROUP BY t.bin",
        nm1 = n - 1
    )
}

/// The JSONiq binning function declaration.
pub fn jq_bin_fn() -> &'static str {
    "declare function hep:bin($x, $lo, $hi, $n) {\n\
     \x20 if ($x < $lo) then -1\n\
     \x20 else if ($x ge $hi) then $n\n\
     \x20 else let $b := integer(floor(($x - $lo) div (($hi - $lo) div $n)))\n\
     \x20      return if ($b > $n - 1) then $n - 1 else $b\n\
     };\n"
}

/// Call to the JSONiq bin function. The bin count is an integer literal so
/// that the returned bin indices are integers (the `div` in the width
/// computation still promotes to double, keeping the width bits identical
/// to [`physics::HistSpec::width`]).
pub fn jq_bin_call(value: &str, spec: HistSpec) -> String {
    format!(
        "hep:bin({value}, {}, {}, {})",
        flit(spec.lo),
        flit(spec.hi),
        spec.bins
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ALL_QUERIES;

    #[test]
    fn every_language_has_every_query() {
        for lang in ALL_LANGUAGES {
            for q in ALL_QUERIES {
                let t = text(*lang, *q);
                assert!(!t.trim().is_empty(), "{:?} {}", lang, q.name());
            }
        }
    }

    #[test]
    fn sql_texts_parse_and_validate_in_their_dialect() {
        use engine_sql::dialect::Dialect;
        for q in ALL_QUERIES {
            for (lang, dialect) in [
                (Language::BigQuery, Dialect::bigquery()),
                (Language::Presto, Dialect::presto()),
                (Language::Athena, Dialect::athena()),
            ] {
                let t = text(lang, *q);
                let script = engine_sql::parser::parse_script(&t)
                    .unwrap_or_else(|e| panic!("{:?} {} parse: {e}\n{t}", lang, q.name()));
                dialect
                    .validate(&script)
                    .unwrap_or_else(|e| panic!("{:?} {} validate: {e}", lang, q.name()));
            }
        }
    }

    #[test]
    fn jsoniq_texts_parse() {
        for q in ALL_QUERIES {
            let t = text(Language::Jsoniq, *q);
            engine_flwor::parser::parse_module(&t)
                .unwrap_or_else(|e| panic!("JSONiq {} parse: {e}\n{t}", q.name()));
        }
    }

    #[test]
    fn q6_texts_lower_to_the_compiled_path() {
        // Guard against drift between these canonical texts and the
        // engine-local templates: if recognition silently broke, Q6 would
        // still be correct (interpreter fallback) but ~1000× slower.
        for q in [QueryId::Q6a, QueryId::Q6b] {
            for lang in [Language::Presto, Language::Athena] {
                let script = engine_sql::parser::parse_script(&text(lang, q)).unwrap();
                assert!(
                    engine_sql::compile::lower(&script).is_some(),
                    "{:?} {} must lower to the physical IR",
                    lang,
                    q.name()
                );
            }
            let module = engine_flwor::parser::parse_module(&text(Language::Jsoniq, q)).unwrap();
            assert!(
                engine_flwor::compile::lower(&module).is_some(),
                "JSONiq {} must lower to the physical IR",
                q.name()
            );
        }
    }

    #[test]
    fn float_literals_roundtrip() {
        for x in [0.0, 200.0, 0.45, 91.2, 172.5, 1.0 / 3.0] {
            let lit = flit(x);
            assert_eq!(lit.parse::<f64>().unwrap(), x, "{lit}");
            assert!(lit.contains('.') || lit.contains('e'), "{lit}");
        }
    }
}
