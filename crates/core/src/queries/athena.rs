//! Amazon Athena (v2) SQL implementations of the benchmark queries.
//!
//! Athena shares Presto's engine lineage but diverges exactly where the
//! paper says it does (§3): it **has** whole-struct `UNNEST` aliases
//! (R3.5, making simple unnests less verbose than Presto's full column
//! lists) but **lacks** UDFs entirely (R1.4) — so (Q7)'s ΔR computation
//! must be spelled out inline at every use site, twice per lepton type —
//! and lacks `COMBINATIONS`.

use super::{flit, presto_hist_tail};
use crate::spec::QueryId;

/// Inline ΔR < 0.4 predicate (no UDFs in Athena!): the closed-form Δφ
/// wrap appears twice per comparison.
fn dr_lt(eta1: &str, phi1: &str, eta2: &str, phi2: &str, cut: &str) -> String {
    let dphi =
        format!("(MOD(MOD({phi1} - {phi2} + PI(), 2.0 * PI()) + 2.0 * PI(), 2.0 * PI()) - PI())");
    format!("SQRT(({eta1} - {eta2}) * ({eta1} - {eta2}) + {dphi} * {dphi}) < {cut}")
}

/// Returns the Athena text for a query output.
pub fn text(q: QueryId) -> String {
    let spec = q.hist_spec();
    let tail = presto_hist_tail(spec);
    match q {
        QueryId::Q1 => format!(
            "WITH plotted AS (SELECT MET.pt AS x FROM events)\n{tail}"
        ),
        QueryId::Q2 => format!(
            "WITH plotted AS (\n\
             \x20 SELECT j.pt AS x FROM events CROSS JOIN UNNEST(Jet) AS j)\n{tail}"
        ),
        QueryId::Q3 => format!(
            "WITH plotted AS (\n\
             \x20 SELECT j.pt AS x FROM events CROSS JOIN UNNEST(Jet) AS j\n\
             \x20 WHERE ABS(j.eta) < 1.0)\n{tail}"
        ),
        QueryId::Q4 => format!(
            "WITH plotted AS (\n\
             \x20 SELECT MET.pt AS x FROM events\n\
             \x20 WHERE CARDINALITY(FILTER(Jet, j -> j.pt > 40.0)) >= 2)\n{tail}"
        ),
        QueryId::Q5 => format!(
            // Opposite-charge pairs are uniquely oriented by charge
            // ordering, so no ordinality columns are needed and Athena's
            // whole-struct aliases keep this much shorter than Presto.
            "WITH pairs AS (\n\
             \x20 SELECT event AS eid, MET.pt AS met,\n\
             \x20        m1.pt * COS(m1.phi) AS px1, m1.pt * SIN(m1.phi) AS py1, m1.pt * SINH(m1.eta) AS pz1, m1.mass AS ma1,\n\
             \x20        m2.pt * COS(m2.phi) AS px2, m2.pt * SIN(m2.phi) AS py2, m2.pt * SINH(m2.eta) AS pz2, m2.mass AS ma2\n\
             \x20 FROM events\n\
             \x20 CROSS JOIN UNNEST(Muon) AS m1\n\
             \x20 CROSS JOIN UNNEST(Muon) AS m2\n\
             \x20 WHERE m1.charge < m2.charge),\n\
             cand AS (\n\
             \x20 SELECT c.eid, c.met,\n\
             \x20        SQRT(c.px1 * c.px1 + c.py1 * c.py1 + c.pz1 * c.pz1 + c.ma1 * c.ma1) AS e1,\n\
             \x20        SQRT(c.px2 * c.px2 + c.py2 * c.py2 + c.pz2 * c.pz2 + c.ma2 * c.ma2) AS e2,\n\
             \x20        c.px1 + c.px2 AS px, c.py1 + c.py2 AS py, c.pz1 + c.pz2 AS pz\n\
             \x20 FROM pairs c),\n\
             sel AS (\n\
             \x20 SELECT d.eid AS eid, MIN(d.met) AS met\n\
             \x20 FROM cand d\n\
             \x20 WHERE SQRT(GREATEST(0.0, (d.e1 + d.e2) * (d.e1 + d.e2) - (d.px * d.px + d.py * d.py + d.pz * d.pz))) BETWEEN 60.0 AND 120.0\n\
             \x20 GROUP BY d.eid),\n\
             plotted AS (SELECT s.met AS x FROM sel s)\n{tail}"
        ),
        QueryId::Q6a | QueryId::Q6b => {
            let plot = if q == QueryId::Q6a { "b.pt" } else { "b.btag" };
            format!(
                // Trijet deduplication genuinely needs indices, so Athena
                // falls back to the ordinality column-list form here too.
                "WITH combos AS (\n\
                 \x20 SELECT event AS eid,\n\
                 \x20        pt1 * COS(phi1) AS px1, pt1 * SIN(phi1) AS py1, pt1 * SINH(eta1) AS pz1, mass1 AS m1, btag1 AS b1,\n\
                 \x20        pt2 * COS(phi2) AS px2, pt2 * SIN(phi2) AS py2, pt2 * SINH(eta2) AS pz2, mass2 AS m2, btag2 AS b2,\n\
                 \x20        pt3 * COS(phi3) AS px3, pt3 * SIN(phi3) AS py3, pt3 * SINH(eta3) AS pz3, mass3 AS m3, btag3 AS b3\n\
                 \x20 FROM events\n\
                 \x20 CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t1 (pt1, eta1, phi1, mass1, btag1, puid1, i1)\n\
                 \x20 CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t2 (pt2, eta2, phi2, mass2, btag2, puid2, i2)\n\
                 \x20 CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t3 (pt3, eta3, phi3, mass3, btag3, puid3, i3)\n\
                 \x20 WHERE i1 < i2 AND i2 < i3),\n\
                 systems AS (\n\
                 \x20 SELECT c.eid,\n\
                 \x20        c.px1 + c.px2 + c.px3 AS px, c.py1 + c.py2 + c.py3 AS py, c.pz1 + c.pz2 + c.pz3 AS pz,\n\
                 \x20        SQRT(c.px1 * c.px1 + c.py1 * c.py1 + c.pz1 * c.pz1 + c.m1 * c.m1)\n\
                 \x20        + SQRT(c.px2 * c.px2 + c.py2 * c.py2 + c.pz2 * c.pz2 + c.m2 * c.m2)\n\
                 \x20        + SQRT(c.px3 * c.px3 + c.py3 * c.py3 + c.pz3 * c.pz3 + c.m3 * c.m3) AS e,\n\
                 \x20        GREATEST(c.b1, c.b2, c.b3) AS btag\n\
                 \x20 FROM combos c),\n\
                 scored AS (\n\
                 \x20 SELECT s.eid, SQRT(s.px * s.px + s.py * s.py) AS pt, s.btag,\n\
                 \x20        ABS(SQRT(GREATEST(0.0, s.e * s.e - (s.px * s.px + s.py * s.py + s.pz * s.pz))) - {top}) AS dist\n\
                 \x20 FROM systems s),\n\
                 best AS (\n\
                 \x20 SELECT b.eid AS eid, MIN_BY(b.pt, b.dist) AS pt, MIN_BY(b.btag, b.dist) AS btag\n\
                 \x20 FROM scored b GROUP BY b.eid),\n\
                 plotted AS (SELECT {plot} AS x FROM best b)\n{tail}",
                top = flit(crate::spec::masses::TOP),
            )
        }
        QueryId::Q7 => format!(
            "WITH plotted AS (\n\
             \x20 SELECT REDUCE(\n\
             \x20   FILTER(Jet, j -> j.pt > 30.0\n\
             \x20     AND NONE_MATCH(Muon, m -> m.pt > 10.0 AND {dr_mu})\n\
             \x20     AND NONE_MATCH(Electron, e -> e.pt > 10.0 AND {dr_el})),\n\
             \x20   0.0, (s, j) -> s + j.pt, s -> s) AS x\n\
             \x20 FROM events)\n\
             {tail_filtered}",
            dr_mu = dr_lt("j.eta", "j.phi", "m.eta", "m.phi", "0.4"),
            dr_el = dr_lt("j.eta", "j.phi", "e.eta", "e.phi", "0.4"),
            tail_filtered = presto_hist_tail(spec).replacen(
                "FROM plotted p",
                "FROM plotted p WHERE p.x > 0.0",
                1
            ),
        ),
        QueryId::Q8 => format!(
            "WITH lep AS (\n\
             \x20 SELECT event AS eid, MET.pt AS met, MET.phi AS metphi,\n\
             \x20   CONCAT(\n\
             \x20     TRANSFORM(Muon, m -> CAST(ROW(m.pt, m.eta, m.phi, m.mass, m.charge, 0)\n\
             \x20                          AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE, charge BIGINT, flavor BIGINT))),\n\
             \x20     TRANSFORM(Electron, e -> CAST(ROW(e.pt, e.eta, e.phi, e.mass, e.charge, 1)\n\
             \x20                          AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE, charge BIGINT, flavor BIGINT)))\n\
             \x20   ) AS leptons\n\
             \x20 FROM events\n\
             \x20 WHERE CARDINALITY(Muon) + CARDINALITY(Electron) >= 3),\n\
             pairs AS (\n\
             \x20 SELECT l.eid, l.met, l.metphi, l.leptons, i1, i2,\n\
             \x20        pt1 * COS(phi1) AS px1, pt1 * SIN(phi1) AS py1, pt1 * SINH(eta1) AS pz1, mass1 AS m1,\n\
             \x20        pt2 * COS(phi2) AS px2, pt2 * SIN(phi2) AS py2, pt2 * SINH(eta2) AS pz2, mass2 AS m2\n\
             \x20 FROM lep l\n\
             \x20 CROSS JOIN UNNEST(l.leptons) WITH ORDINALITY AS a (pt1, eta1, phi1, mass1, q1, f1, i1)\n\
             \x20 CROSS JOIN UNNEST(l.leptons) WITH ORDINALITY AS b (pt2, eta2, phi2, mass2, q2, f2, i2)\n\
             \x20 WHERE i1 < i2 AND f1 = f2 AND q1 != q2),\n\
             scored AS (\n\
             \x20 SELECT p.eid, p.met, p.metphi, p.leptons, p.i1, p.i2,\n\
             \x20        SQRT(p.px1 * p.px1 + p.py1 * p.py1 + p.pz1 * p.pz1 + p.m1 * p.m1) AS e1,\n\
             \x20        SQRT(p.px2 * p.px2 + p.py2 * p.py2 + p.pz2 * p.pz2 + p.m2 * p.m2) AS e2,\n\
             \x20        p.px1 + p.px2 AS px, p.py1 + p.py2 AS py, p.pz1 + p.pz2 AS pz\n\
             \x20 FROM pairs p),\n\
             best AS (\n\
             \x20 SELECT s.eid AS eid, ANY_VALUE(s.met) AS met, ANY_VALUE(s.metphi) AS metphi, ANY_VALUE(s.leptons) AS leptons,\n\
             \x20        MIN_BY(CAST(ROW(s.i1, s.i2) AS ROW(i BIGINT, k BIGINT)),\n\
             \x20               ABS(SQRT(GREATEST(0.0, (s.e1 + s.e2) * (s.e1 + s.e2) - (s.px * s.px + s.py * s.py + s.pz * s.pz))) - {z})) AS pair\n\
             \x20 FROM scored s GROUP BY s.eid),\n\
             lead AS (\n\
             \x20 SELECT b.eid AS eid, ANY_VALUE(b.met) AS met, ANY_VALUE(b.metphi) AS metphi,\n\
             \x20        MAX_BY(CAST(ROW(lpt, lphi) AS ROW(pt DOUBLE, phi DOUBLE)), lpt) AS lep\n\
             \x20 FROM best b\n\
             \x20 CROSS JOIN UNNEST(b.leptons) WITH ORDINALITY AS l (lpt, leta, lphi, lmass, lq, lf, li)\n\
             \x20 WHERE li != b.pair.i AND li != b.pair.k\n\
             \x20 GROUP BY b.eid),\n\
             plotted AS (\n\
             \x20 SELECT SQRT(GREATEST(0.0, 2.0 * d.lep.pt * d.met * (1.0 - COS(d.lep.phi - d.metphi)))) AS x\n\
             \x20 FROM lead d)\n{tail}",
            z = flit(crate::spec::masses::Z),
        ),
    }
}
