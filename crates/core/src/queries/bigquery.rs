//! BigQuery SQL implementations of the benchmark queries.
//!
//! Characteristic dialect features on display (paper §3): correlated
//! subqueries over `UNNEST` of the outer row's arrays (R2.2), `WITH
//! OFFSET` indices, `STRUCT` constructors (R3.1/R3.2), `ARRAY(SELECT …)`
//! construction (R3.4), mature temp UDFs (R1.4), and `GROUP BY` on select
//! aliases (R2.4).

use super::bq_binof_call;
use crate::spec::QueryId;

/// The `PairMass` temp UDF: invariant mass of two (pt, η, φ, m) particles,
/// written with the exact component-sum float path of
/// [`crate::reference::pair_mass`].
fn pair_mass_fn() -> String {
    "CREATE TEMP FUNCTION PairMass(\n\
     \x20   p1 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>,\n\
     \x20   p2 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>) AS ((\n\
     \x20 SELECT SQRT(GREATEST(0.0, (t.e1 + t.e2) * (t.e1 + t.e2)\n\
     \x20        - ((t.px1 + t.px2) * (t.px1 + t.px2) + (t.py1 + t.py2) * (t.py1 + t.py2) + (t.pz1 + t.pz2) * (t.pz1 + t.pz2))))\n\
     \x20 FROM (\n\
     \x20   SELECT SQRT(c.px1 * c.px1 + c.py1 * c.py1 + c.pz1 * c.pz1 + c.m1 * c.m1) AS e1,\n\
     \x20          SQRT(c.px2 * c.px2 + c.py2 * c.py2 + c.pz2 * c.pz2 + c.m2 * c.m2) AS e2,\n\
     \x20          c.px1, c.py1, c.pz1, c.px2, c.py2, c.pz2\n\
     \x20   FROM (\n\
     \x20     SELECT p1.pt * COS(p1.phi) AS px1, p1.pt * SIN(p1.phi) AS py1, p1.pt * SINH(p1.eta) AS pz1, p1.mass AS m1,\n\
     \x20            p2.pt * COS(p2.phi) AS px2, p2.pt * SIN(p2.phi) AS py2, p2.pt * SINH(p2.eta) AS pz2, p2.mass AS m2) c) t));\n"
        .to_string()
}

/// The `DeltaR` temp UDF with the closed-form Δφ wrap of
/// [`physics::delta_phi`].
fn delta_r_fn() -> String {
    "CREATE TEMP FUNCTION DeltaR(eta1 FLOAT64, phi1 FLOAT64, eta2 FLOAT64, phi2 FLOAT64) AS ((\n\
     \x20 SELECT SQRT((eta1 - eta2) * (eta1 - eta2) + t.dphi * t.dphi)\n\
     \x20 FROM (SELECT MOD(MOD(phi1 - phi2 + PI(), 2.0 * PI()) + 2.0 * PI(), 2.0 * PI()) - PI() AS dphi) t));\n"
        .to_string()
}

/// Returns the BigQuery text for a query output.
pub fn text(q: QueryId) -> String {
    let spec = q.hist_spec();
    match q {
        QueryId::Q1 => format!(
            "SELECT {bin} AS bin, COUNT(*) AS n\n\
             FROM events ev\n\
             GROUP BY bin",
            bin = bq_binof_call("ev.MET.pt", spec),
        ),
        QueryId::Q2 => format!(
            "SELECT {bin} AS bin, COUNT(*) AS n\n\
             FROM events ev, UNNEST(ev.Jet) AS j\n\
             GROUP BY bin",
            bin = bq_binof_call("j.pt", spec),
        ),
        QueryId::Q3 => format!(
            "SELECT {bin} AS bin, COUNT(*) AS n\n\
             FROM events ev, UNNEST(ev.Jet) AS j\n\
             WHERE ABS(j.eta) < 1.0\n\
             GROUP BY bin",
            bin = bq_binof_call("j.pt", spec),
        ),
        QueryId::Q4 => format!(
            "SELECT {bin} AS bin, COUNT(*) AS n\n\
             FROM events ev\n\
             WHERE (SELECT COUNT(*) FROM UNNEST(ev.Jet) j WHERE j.pt > 40.0) >= 2\n\
             GROUP BY bin",
            bin = bq_binof_call("ev.MET.pt", spec),
        ),
        QueryId::Q5 => format!(
            "{massfn}\
             SELECT {bin} AS bin, COUNT(*) AS n\n\
             FROM events ev\n\
             WHERE EXISTS (\n\
             \x20 SELECT 1\n\
             \x20 FROM UNNEST(ev.Muon) m1 WITH OFFSET i, UNNEST(ev.Muon) m2 WITH OFFSET k\n\
             \x20 WHERE i < k AND m1.charge != m2.charge\n\
             \x20   AND PairMass(STRUCT(m1.pt, m1.eta, m1.phi, m1.mass),\n\
             \x20                STRUCT(m2.pt, m2.eta, m2.phi, m2.mass)) BETWEEN 60.0 AND 120.0)\n\
             GROUP BY bin",
            massfn = pair_mass_fn(),
            bin = bq_binof_call("ev.MET.pt", spec),
        ),
        QueryId::Q6a | QueryId::Q6b => {
            let plot = if q == QueryId::Q6a { "s.best.pt" } else { "s.best.btag" };
            format!(
                "WITH selected AS (\n\
                 \x20 SELECT (\n\
                 \x20   SELECT AS STRUCT SQRT(t.px * t.px + t.py * t.py) AS pt, t.btag AS btag\n\
                 \x20   FROM (\n\
                 \x20     SELECT b.px, b.py, b.btag,\n\
                 \x20            ABS(SQRT(GREATEST(0.0, b.e * b.e - (b.px * b.px + b.py * b.py + b.pz * b.pz))) - 172.5) AS dist\n\
                 \x20     FROM (\n\
                 \x20       SELECT c.px1 + c.px2 + c.px3 AS px, c.py1 + c.py2 + c.py3 AS py, c.pz1 + c.pz2 + c.pz3 AS pz,\n\
                 \x20              SQRT(c.px1 * c.px1 + c.py1 * c.py1 + c.pz1 * c.pz1 + c.m1 * c.m1)\n\
                 \x20              + SQRT(c.px2 * c.px2 + c.py2 * c.py2 + c.pz2 * c.pz2 + c.m2 * c.m2)\n\
                 \x20              + SQRT(c.px3 * c.px3 + c.py3 * c.py3 + c.pz3 * c.pz3 + c.m3 * c.m3) AS e,\n\
                 \x20              GREATEST(c.b1, c.b2, c.b3) AS btag\n\
                 \x20       FROM (\n\
                 \x20         SELECT j1.pt * COS(j1.phi) AS px1, j1.pt * SIN(j1.phi) AS py1, j1.pt * SINH(j1.eta) AS pz1, j1.mass AS m1, j1.btag AS b1,\n\
                 \x20                j2.pt * COS(j2.phi) AS px2, j2.pt * SIN(j2.phi) AS py2, j2.pt * SINH(j2.eta) AS pz2, j2.mass AS m2, j2.btag AS b2,\n\
                 \x20                j3.pt * COS(j3.phi) AS px3, j3.pt * SIN(j3.phi) AS py3, j3.pt * SINH(j3.eta) AS pz3, j3.mass AS m3, j3.btag AS b3\n\
                 \x20         FROM UNNEST(ev.Jet) j1 WITH OFFSET i1,\n\
                 \x20              UNNEST(ev.Jet) j2 WITH OFFSET i2,\n\
                 \x20              UNNEST(ev.Jet) j3 WITH OFFSET i3\n\
                 \x20         WHERE i1 < i2 AND i2 < i3) c) b) t\n\
                 \x20   ORDER BY t.dist\n\
                 \x20   LIMIT 1) AS best\n\
                 \x20 FROM events ev\n\
                 \x20 WHERE ARRAY_LENGTH(ev.Jet) >= 3)\n\
                 SELECT {bin} AS bin, COUNT(*) AS n\n\
                 FROM selected s\n\
                 WHERE s.best IS NOT NULL\n\
                 GROUP BY bin",
                bin = bq_binof_call(plot, spec),
            )
        }
        QueryId::Q7 => format!(
            "{drfn}\
             WITH plotted AS (\n\
             \x20 SELECT (\n\
             \x20   SELECT SUM(j.pt) FROM UNNEST(ev.Jet) j\n\
             \x20   WHERE j.pt > 30.0\n\
             \x20     AND NOT EXISTS (SELECT 1 FROM UNNEST(ev.Muon) m\n\
             \x20                     WHERE m.pt > 10.0 AND DeltaR(j.eta, j.phi, m.eta, m.phi) < 0.4)\n\
             \x20     AND NOT EXISTS (SELECT 1 FROM UNNEST(ev.Electron) el\n\
             \x20                     WHERE el.pt > 10.0 AND DeltaR(j.eta, j.phi, el.eta, el.phi) < 0.4)\n\
             \x20 ) AS x\n\
             \x20 FROM events ev)\n\
             SELECT {bin} AS bin, COUNT(*) AS n\n\
             FROM plotted p\n\
             WHERE p.x IS NOT NULL\n\
             GROUP BY bin",
            drfn = delta_r_fn(),
            bin = bq_binof_call("p.x", spec),
        ),
        QueryId::Q8 => format!(
            "{massfn}\
             WITH lep AS (\n\
             \x20 SELECT ev.MET.pt AS met, ev.MET.phi AS metphi,\n\
             \x20   ARRAY_CONCAT(\n\
             \x20     ARRAY(SELECT AS STRUCT m.pt, m.eta, m.phi, m.mass, m.charge, 0 AS flavor FROM UNNEST(ev.Muon) m),\n\
             \x20     ARRAY(SELECT AS STRUCT el.pt, el.eta, el.phi, el.mass, el.charge, 1 AS flavor FROM UNNEST(ev.Electron) el)\n\
             \x20   ) AS leptons\n\
             \x20 FROM events ev\n\
             \x20 WHERE ARRAY_LENGTH(ev.Muon) + ARRAY_LENGTH(ev.Electron) >= 3),\n\
             best AS (\n\
             \x20 SELECT l.met, l.metphi, l.leptons,\n\
             \x20   (SELECT AS STRUCT i, k\n\
             \x20    FROM UNNEST(l.leptons) l1 WITH OFFSET i, UNNEST(l.leptons) l2 WITH OFFSET k\n\
             \x20    WHERE i < k AND l1.flavor = l2.flavor AND l1.charge != l2.charge\n\
             \x20    ORDER BY ABS(PairMass(STRUCT(l1.pt, l1.eta, l1.phi, l1.mass),\n\
             \x20                          STRUCT(l2.pt, l2.eta, l2.phi, l2.mass)) - 91.2)\n\
             \x20    LIMIT 1) AS pair\n\
             \x20 FROM lep l),\n\
             lead AS (\n\
             \x20 SELECT b.met, b.metphi,\n\
             \x20   (SELECT l3.pt FROM UNNEST(b.leptons) l3 WITH OFFSET x\n\
             \x20    WHERE x != b.pair.i AND x != b.pair.k ORDER BY l3.pt DESC LIMIT 1) AS lpt,\n\
             \x20   (SELECT l3.phi FROM UNNEST(b.leptons) l3 WITH OFFSET x\n\
             \x20    WHERE x != b.pair.i AND x != b.pair.k ORDER BY l3.pt DESC LIMIT 1) AS lphi\n\
             \x20 FROM best b\n\
             \x20 WHERE b.pair IS NOT NULL)\n\
             SELECT {bin} AS bin, COUNT(*) AS n\n\
             FROM lead d\n\
             GROUP BY bin",
            massfn = pair_mass_fn(),
            bin = bq_binof_call(
                "SQRT(GREATEST(0.0, 2.0 * d.lpt * d.met * (1.0 - COS(d.lphi - d.metphi))))",
                spec
            ),
        ),
    }
}
