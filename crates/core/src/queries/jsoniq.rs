//! JSONiq implementations of the benchmark queries (Rumble).
//!
//! The paper's §3 singles JSONiq out for natural nested-data handling:
//! FLWOR `let` variables eliminate the repeated sub-expressions the SQL
//! dialects suffer from, `for … at` clauses express particle combinations
//! directly, and functions take objects without declaring member lists.
//!
//! Output contract: each module returns the flat sequence of **bin
//! indices** (one per plotted value) computed by the declared `hep:bin`
//! function — the engine-side equivalent of Rumble collecting per-record
//! results from Spark and counting them into the final histogram.

use super::{jq_bin_call, jq_bin_fn};
use crate::spec::QueryId;

/// `hep:pair-mass` — invariant mass with the reference float path.
fn pair_mass_fn() -> &'static str {
    "declare function hep:pair-mass($p1, $p2) {\n\
     \x20 let $px1 := $p1.pt * cos($p1.phi) let $py1 := $p1.pt * sin($p1.phi) let $pz1 := $p1.pt * sinh($p1.eta)\n\
     \x20 let $px2 := $p2.pt * cos($p2.phi) let $py2 := $p2.pt * sin($p2.phi) let $pz2 := $p2.pt * sinh($p2.eta)\n\
     \x20 let $e1 := sqrt($px1 * $px1 + $py1 * $py1 + $pz1 * $pz1 + $p1.mass * $p1.mass)\n\
     \x20 let $e2 := sqrt($px2 * $px2 + $py2 * $py2 + $pz2 * $pz2 + $p2.mass * $p2.mass)\n\
     \x20 let $e := $e1 + $e2 let $px := $px1 + $px2 let $py := $py1 + $py2 let $pz := $pz1 + $pz2\n\
     \x20 return sqrt(max((0.0, $e * $e - ($px * $px + $py * $py + $pz * $pz))))\n\
     };\n"
}

/// `hep:delta-r` — ΔR with the closed-form Δφ wrap of
/// [`physics::delta_phi`].
fn delta_r_fn() -> &'static str {
    "declare function hep:delta-r($eta1, $phi1, $eta2, $phi2) {\n\
     \x20 let $tau := 2.0 * pi()\n\
     \x20 let $dphi := (($phi1 - $phi2 + pi()) mod $tau + $tau) mod $tau - pi()\n\
     \x20 let $deta := $eta1 - $eta2\n\
     \x20 return sqrt($deta * $deta + $dphi * $dphi)\n\
     };\n"
}

/// Returns the JSONiq text for a query output.
pub fn text(q: QueryId) -> String {
    let spec = q.hist_spec();
    match q {
        QueryId::Q1 => format!(
            "{binfn}\
             for $e in parquet-file(\"events\")\n\
             return {bin}",
            binfn = jq_bin_fn(),
            bin = jq_bin_call("$e.MET.pt", spec),
        ),
        QueryId::Q2 => format!(
            "{binfn}\
             for $e in parquet-file(\"events\")\n\
             return for $j in $e.Jet[] return {bin}",
            binfn = jq_bin_fn(),
            bin = jq_bin_call("$j.pt", spec),
        ),
        QueryId::Q3 => format!(
            "{binfn}\
             for $e in parquet-file(\"events\")\n\
             return for $j in $e.Jet[][abs($$.eta) < 1.0] return {bin}",
            binfn = jq_bin_fn(),
            bin = jq_bin_call("$j.pt", spec),
        ),
        QueryId::Q4 => format!(
            "{binfn}\
             for $e in parquet-file(\"events\")\n\
             where count($e.Jet[][$$.pt > 40.0]) ge 2\n\
             return {bin}",
            binfn = jq_bin_fn(),
            bin = jq_bin_call("$e.MET.pt", spec),
        ),
        QueryId::Q5 => format!(
            "{binfn}{massfn}\
             for $e in parquet-file(\"events\")\n\
             where exists(\n\
             \x20 for $m1 at $i in $e.Muon[]\n\
             \x20 for $m2 at $k in $e.Muon[]\n\
             \x20 where $i lt $k and $m1.charge ne $m2.charge\n\
             \x20 let $m := hep:pair-mass($m1, $m2)\n\
             \x20 where $m ge 60.0 and $m le 120.0\n\
             \x20 return 1)\n\
             return {bin}",
            binfn = jq_bin_fn(),
            massfn = pair_mass_fn(),
            bin = jq_bin_call("$e.MET.pt", spec),
        ),
        QueryId::Q6a | QueryId::Q6b => {
            let member = if q == QueryId::Q6a { "pt" } else { "btag" };
            format!(
                "{binfn}\
                 declare function hep:best-trijet($jets) {{\n\
                 \x20 let $candidates := (\n\
                 \x20   for $j1 at $i in $jets\n\
                 \x20   for $j2 at $j in $jets\n\
                 \x20   for $j3 at $k in $jets\n\
                 \x20   where $i lt $j and $j lt $k\n\
                 \x20   let $px1 := $j1.pt * cos($j1.phi) let $py1 := $j1.pt * sin($j1.phi) let $pz1 := $j1.pt * sinh($j1.eta)\n\
                 \x20   let $px2 := $j2.pt * cos($j2.phi) let $py2 := $j2.pt * sin($j2.phi) let $pz2 := $j2.pt * sinh($j2.eta)\n\
                 \x20   let $px3 := $j3.pt * cos($j3.phi) let $py3 := $j3.pt * sin($j3.phi) let $pz3 := $j3.pt * sinh($j3.eta)\n\
                 \x20   let $e := sqrt($px1 * $px1 + $py1 * $py1 + $pz1 * $pz1 + $j1.mass * $j1.mass)\n\
                 \x20          + sqrt($px2 * $px2 + $py2 * $py2 + $pz2 * $pz2 + $j2.mass * $j2.mass)\n\
                 \x20          + sqrt($px3 * $px3 + $py3 * $py3 + $pz3 * $pz3 + $j3.mass * $j3.mass)\n\
                 \x20   let $px := $px1 + $px2 + $px3 let $py := $py1 + $py2 + $py3 let $pz := $pz1 + $pz2 + $pz3\n\
                 \x20   let $mass := sqrt(max((0.0, $e * $e - ($px * $px + $py * $py + $pz * $pz))))\n\
                 \x20   order by abs($mass - 172.5)\n\
                 \x20   return {{ \"pt\": sqrt($px * $px + $py * $py), \"btag\": max(($j1.btag, $j2.btag, $j3.btag)) }})\n\
                 \x20 return $candidates[1]\n\
                 }};\n\
                 for $e in parquet-file(\"events\")\n\
                 where size($e.Jet) ge 3\n\
                 return {bin}",
                binfn = jq_bin_fn(),
                bin = jq_bin_call(&format!("hep:best-trijet($e.Jet[]).{member}"), spec),
            )
        }
        QueryId::Q7 => format!(
            "{binfn}{drfn}\
             for $e in parquet-file(\"events\")\n\
             let $leptons := ($e.Muon[], $e.Electron[])\n\
             let $good := (\n\
             \x20 for $j in $e.Jet[]\n\
             \x20 where $j.pt > 30.0 and empty(\n\
             \x20   for $l in $leptons\n\
             \x20   where $l.pt > 10.0 and hep:delta-r($j.eta, $j.phi, $l.eta, $l.phi) < 0.4\n\
             \x20   return 1)\n\
             \x20 return $j.pt)\n\
             where exists($good)\n\
             return {bin}",
            binfn = jq_bin_fn(),
            drfn = delta_r_fn(),
            bin = jq_bin_call("sum($good)", spec),
        ),
        QueryId::Q8 => format!(
            "{binfn}{massfn}\
             for $e in parquet-file(\"events\")\n\
             let $leptons := (\n\
             \x20 for $m in $e.Muon[] return {{ \"pt\": $m.pt, \"eta\": $m.eta, \"phi\": $m.phi, \"mass\": $m.mass, \"charge\": $m.charge, \"flavor\": 0 }},\n\
             \x20 for $el in $e.Electron[] return {{ \"pt\": $el.pt, \"eta\": $el.eta, \"phi\": $el.phi, \"mass\": $el.mass, \"charge\": $el.charge, \"flavor\": 1 }})\n\
             where count($leptons) ge 3\n\
             let $best := (\n\
             \x20 for $l1 at $i in $leptons\n\
             \x20 for $l2 at $k in $leptons\n\
             \x20 where $i lt $k and $l1.flavor eq $l2.flavor and $l1.charge ne $l2.charge\n\
             \x20 order by abs(hep:pair-mass($l1, $l2) - 91.2)\n\
             \x20 return {{ \"i\": $i, \"k\": $k }})\n\
             let $b := $best[1]\n\
             where exists($b)\n\
             let $rest := (\n\
             \x20 for $l at $x in $leptons\n\
             \x20 where $x ne $b.i and $x ne $b.k\n\
             \x20 order by $l.pt descending\n\
             \x20 return $l)\n\
             let $lead := $rest[1]\n\
             let $mt := sqrt(max((0.0, 2.0 * $lead.pt * $e.MET.pt * (1.0 - cos($lead.phi - $e.MET.phi)))))\n\
             return {bin}",
            binfn = jq_bin_fn(),
            massfn = pair_mass_fn(),
            bin = jq_bin_call("$mt", spec),
        ),
    }
}
