//! RDataFrame (ROOT/C++) implementations of the benchmark queries —
//! the texts a physicist writes against ROOT 6.22.
//!
//! These texts are what Table 1's conciseness metrics count for the
//! RDataFrame column (the paper measured the C++ sources of its reference
//! implementations). They are *executed* through the equivalent
//! `engine-rdf` programs in [`crate::rdf_programs`], which implement the
//! same dataflow with the same kernels. Note how the columnar storage
//! layout (`Jet_pt`, `Muon_charge`, …) is part of the programming model —
//! the usability point §3.7 makes.

use crate::spec::QueryId;

/// Returns the RDataFrame C++ text for a query output.
pub fn text(q: QueryId) -> &'static str {
    match q {
        QueryId::Q1 => {
            r#"auto df = ROOT::RDataFrame("Events", path);
auto h = df.Histo1D({"q1", ";MET;N", 100, 0., 200.}, "MET_pt");"#
        }
        QueryId::Q2 => {
            r#"auto df = ROOT::RDataFrame("Events", path);
auto h = df.Histo1D({"q2", ";Jet pT;N", 100, 15., 60.}, "Jet_pt");"#
        }
        QueryId::Q3 => {
            r#"auto df = ROOT::RDataFrame("Events", path);
auto h = df.Define("goodJet_pt", "Jet_pt[abs(Jet_eta) < 1.0f]")
           .Histo1D({"q3", ";Jet pT;N", 100, 15., 60.}, "goodJet_pt");"#
        }
        QueryId::Q4 => {
            r#"auto df = ROOT::RDataFrame("Events", path);
auto h = df.Filter([](const RVec<float> &pt) { return Sum(pt > 40.0f) >= 2; }, {"Jet_pt"})
           .Histo1D({"q4", ";MET;N", 100, 0., 200.}, "MET_pt");"#
        }
        QueryId::Q5 => {
            r#"auto df = ROOT::RDataFrame("Events", path);
auto pass = [](const RVec<float> &pt, const RVec<float> &eta, const RVec<float> &phi,
               const RVec<float> &mass, const RVec<int> &charge) {
  for (size_t i = 0; i < pt.size(); ++i)
    for (size_t k = i + 1; k < pt.size(); ++k) {
      if (charge[i] == charge[k]) continue;
      auto m = InvariantMass(pt[i], eta[i], phi[i], mass[i], pt[k], eta[k], phi[k], mass[k]);
      if (m >= 60.0 && m <= 120.0) return true;
    }
  return false;
};
auto h = df.Filter(pass, {"Muon_pt", "Muon_eta", "Muon_phi", "Muon_mass", "Muon_charge"})
           .Histo1D({"q5", ";MET;N", 100, 0., 200.}, "MET_pt");"#
        }
        QueryId::Q6a => {
            r#"auto df = ROOT::RDataFrame("Events", path);
auto best = [](const RVec<float> &pt, const RVec<float> &eta, const RVec<float> &phi,
               const RVec<float> &mass, const RVec<float> &btag) {
  double bestDist = 1e99, bestPt = 0., bestTag = 0.;
  auto p4 = Construct<PtEtaPhiMVector>(pt, eta, phi, mass);
  for (size_t i = 0; i < p4.size(); ++i)
    for (size_t j = i + 1; j < p4.size(); ++j)
      for (size_t k = j + 1; k < p4.size(); ++k) {
        auto tri = p4[i] + p4[j] + p4[k];
        auto dist = std::abs(tri.M() - 172.5);
        if (dist < bestDist) {
          bestDist = dist; bestPt = tri.Pt();
          bestTag = std::max({btag[i], btag[j], btag[k]});
        }
      }
  return RVec<double>{bestPt, bestTag};
};
auto h = df.Filter([](const RVec<float> &pt) { return pt.size() >= 3; }, {"Jet_pt"})
           .Define("tri", best, {"Jet_pt", "Jet_eta", "Jet_phi", "Jet_mass", "Jet_btag"})
           .Define("tri_pt", "tri[0]")
           .Histo1D({"q6a", ";Trijet pT;N", 100, 0., 250.}, "tri_pt");"#
        }
        QueryId::Q6b => {
            r#"auto df = ROOT::RDataFrame("Events", path);
auto best = [](const RVec<float> &pt, const RVec<float> &eta, const RVec<float> &phi,
               const RVec<float> &mass, const RVec<float> &btag) {
  double bestDist = 1e99, bestPt = 0., bestTag = 0.;
  auto p4 = Construct<PtEtaPhiMVector>(pt, eta, phi, mass);
  for (size_t i = 0; i < p4.size(); ++i)
    for (size_t j = i + 1; j < p4.size(); ++j)
      for (size_t k = j + 1; k < p4.size(); ++k) {
        auto tri = p4[i] + p4[j] + p4[k];
        auto dist = std::abs(tri.M() - 172.5);
        if (dist < bestDist) {
          bestDist = dist; bestPt = tri.Pt();
          bestTag = std::max({btag[i], btag[j], btag[k]});
        }
      }
  return RVec<double>{bestPt, bestTag};
};
auto h = df.Filter([](const RVec<float> &pt) { return pt.size() >= 3; }, {"Jet_pt"})
           .Define("tri", best, {"Jet_pt", "Jet_eta", "Jet_phi", "Jet_mass", "Jet_btag"})
           .Define("tri_btag", "tri[1]")
           .Histo1D({"q6b", ";Max b-tag;N", 100, 0., 1.}, "tri_btag");"#
        }
        QueryId::Q7 => {
            r#"auto df = ROOT::RDataFrame("Events", path);
auto sumIso = [](const RVec<float> &jpt, const RVec<float> &jeta, const RVec<float> &jphi,
                 const RVec<float> &mpt, const RVec<float> &meta, const RVec<float> &mphi,
                 const RVec<float> &ept, const RVec<float> &eeta, const RVec<float> &ephi) {
  double sum = 0.;
  for (size_t j = 0; j < jpt.size(); ++j) {
    if (jpt[j] <= 30.0f) continue;
    bool iso = true;
    for (size_t l = 0; l < mpt.size() && iso; ++l)
      if (mpt[l] > 10.0f && DeltaR(jeta[j], meta[l], jphi[j], mphi[l]) < 0.4) iso = false;
    for (size_t l = 0; l < ept.size() && iso; ++l)
      if (ept[l] > 10.0f && DeltaR(jeta[j], eeta[l], jphi[j], ephi[l]) < 0.4) iso = false;
    if (iso) sum += jpt[j];
  }
  return sum;
};
auto h = df.Define("ht", sumIso, {"Jet_pt", "Jet_eta", "Jet_phi", "Muon_pt", "Muon_eta",
                                  "Muon_phi", "Electron_pt", "Electron_eta", "Electron_phi"})
           .Filter("ht > 0.0")
           .Histo1D({"q7", ";Sum pT;N", 100, 15., 200.}, "ht");"#
        }
        QueryId::Q8 => {
            r#"auto df = ROOT::RDataFrame("Events", path);
auto mt = [](float met, float metphi,
             const RVec<float> &mpt, const RVec<float> &meta, const RVec<float> &mphi,
             const RVec<float> &mm, const RVec<int> &mq,
             const RVec<float> &ept, const RVec<float> &eeta, const RVec<float> &ephi,
             const RVec<float> &em, const RVec<int> &eq) {
  auto lep = ConcatLeptons(mpt, meta, mphi, mm, mq, ept, eeta, ephi, em, eq);
  if (lep.size() < 3) return -1.0;
  double bestDist = 1e99; int bi = -1, bk = -1;
  for (size_t i = 0; i < lep.size(); ++i)
    for (size_t k = i + 1; k < lep.size(); ++k) {
      if (lep[i].flavor != lep[k].flavor || lep[i].charge == lep[k].charge) continue;
      auto dist = std::abs((lep[i].p4 + lep[k].p4).M() - 91.2);
      if (dist < bestDist) { bestDist = dist; bi = i; bk = k; }
    }
  if (bi < 0) return -1.0;
  int lead = -1;
  for (size_t x = 0; x < lep.size(); ++x) {
    if ((int)x == bi || (int)x == bk) continue;
    if (lead < 0 || lep[x].pt > lep[lead].pt) lead = x;
  }
  return std::sqrt(std::max(0.0, 2.0 * lep[lead].pt * met * (1.0 - std::cos(lep[lead].phi - metphi))));
};
auto h = df.Define("mt", mt, {"MET_pt", "MET_phi", "Muon_pt", "Muon_eta", "Muon_phi",
                              "Muon_mass", "Muon_charge", "Electron_pt", "Electron_eta",
                              "Electron_phi", "Electron_mass", "Electron_charge"})
           .Filter("mt >= 0.0")
           .Histo1D({"q8", ";mT;N", 100, 0., 250.}, "mt");"#
        }
    }
}
