//! Table-2 query complexity: analytic formulas and empirical ops/event.

use hep_model::Event;

use crate::reference;
use crate::spec::QueryId;

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct ComplexityRow {
    /// Query output.
    pub query: &'static str,
    /// The analytic formula (paper notation: E/J/M = electrons/jets/muons
    /// per event, σ = the Q7 jet filter).
    pub formula: &'static str,
    /// Ops/event predicted by evaluating the formula on the data set.
    pub analytic_ops_per_event: f64,
    /// Ops/event actually counted by the instrumented reference run.
    pub measured_ops_per_event: f64,
    /// The value the paper reports for the CMS data set.
    pub paper_ops_per_event: f64,
}

fn c2(n: usize) -> u64 {
    (n * n.saturating_sub(1) / 2) as u64
}

fn c3(n: usize) -> u64 {
    (n * n.saturating_sub(1) * n.saturating_sub(2) / 6) as u64
}

/// Evaluates the analytic Table-2 formula for one event.
pub fn analytic_ops(q: QueryId, e: &Event) -> u64 {
    let (jets, muons, electrons) = (e.jets.len(), e.muons.len(), e.electrons.len());
    match q {
        QueryId::Q1 => 1,
        QueryId::Q2 | QueryId::Q3 => jets as u64,
        QueryId::Q4 => 1 + jets as u64,
        QueryId::Q5 => 1 + c2(muons),
        QueryId::Q6a | QueryId::Q6b => 1 + c3(jets),
        QueryId::Q7 => {
            // (E + M) · σ(J): lepton comparisons for each jet passing the
            // pt > 30 filter.
            let passing = e.jets.iter().filter(|j| j.pt > 30.0).count() as u64;
            (electrons + muons) as u64 * passing
        }
        QueryId::Q8 => {
            // E·M + E + M + 1 (the paper's formula for the pair scan plus
            // the remaining-lepton scan).
            (electrons * muons + electrons + muons) as u64 + 1
        }
    }
}

/// The paper's reported ops/event (Table 2) for the CMS data set.
pub fn paper_ops(q: QueryId) -> f64 {
    match q {
        QueryId::Q1 => 1.0,
        QueryId::Q2 | QueryId::Q3 => 3.2,
        QueryId::Q4 => 4.2,
        QueryId::Q5 => 1.6,
        QueryId::Q6a | QueryId::Q6b => 42.8,
        QueryId::Q7 => 1.5,
        QueryId::Q8 => 11.6,
    }
}

/// The paper's formula string.
pub fn formula(q: QueryId) -> &'static str {
    match q {
        QueryId::Q1 => "1",
        QueryId::Q2 | QueryId::Q3 => "J",
        QueryId::Q4 => "1 + J",
        QueryId::Q5 => "1 + C(M,2)",
        QueryId::Q6a | QueryId::Q6b => "1 + C(J,3)",
        QueryId::Q7 => "(E + M) * sigma(J)",
        QueryId::Q8 => "E*M + E + M + 1",
    }
}

/// Builds the full Table-2 row for a query over a data set.
pub fn row(q: QueryId, events: &[Event]) -> ComplexityRow {
    let n = events.len() as f64;
    let analytic: u64 = events.iter().map(|e| analytic_ops(q, e)).sum();
    let measured = reference::run(q, events).ops;
    ComplexityRow {
        query: q.name(),
        formula: formula(q),
        analytic_ops_per_event: analytic as f64 / n,
        measured_ops_per_event: measured as f64 / n,
        paper_ops_per_event: paper_ops(q),
    }
}

/// Particle-multiplicity distribution (Figure 3): fraction of events with
/// exactly `i` particles, for i in `0..=max`.
pub fn multiplicity_distribution(
    events: &[Event],
    count: impl Fn(&Event) -> usize,
    max: usize,
) -> Vec<f64> {
    let mut bins = vec![0u64; max + 1];
    for e in events {
        let n = count(e).min(max);
        bins[n] += 1;
    }
    bins.iter()
        .map(|&b| b as f64 / events.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ALL_QUERIES;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;

    fn events() -> Vec<Event> {
        build_dataset(DatasetSpec {
            n_events: 10_000,
            row_group_size: 2_048,
            seed: 42,
        })
        .0
    }

    #[test]
    fn measured_matches_analytic_for_exact_queries() {
        let evs = events();
        for q in [
            QueryId::Q1,
            QueryId::Q2,
            QueryId::Q3,
            QueryId::Q4,
            QueryId::Q5,
            QueryId::Q6a,
        ] {
            let r = row(q, &evs);
            assert!(
                (r.analytic_ops_per_event - r.measured_ops_per_event).abs() < 1e-9,
                "{}: analytic {} vs measured {}",
                r.query,
                r.analytic_ops_per_event,
                r.measured_ops_per_event
            );
        }
    }

    #[test]
    fn q6_dominates_like_in_the_paper() {
        let evs = events();
        let q6 = row(QueryId::Q6a, &evs).measured_ops_per_event;
        for q in ALL_QUERIES {
            if matches!(q, QueryId::Q6a | QueryId::Q6b) {
                continue;
            }
            let other = row(*q, &evs).measured_ops_per_event;
            assert!(q6 > other, "{}: {other} >= Q6's {q6}", q.name());
        }
        // Within a factor ~2 of the paper's 42.8.
        assert!((15.0..90.0).contains(&q6), "Q6 ops/event {q6}");
    }

    #[test]
    fn multiplicities_shape() {
        let evs = events();
        let jets = multiplicity_distribution(&evs, |e| e.jets.len(), 40);
        let muons = multiplicity_distribution(&evs, |e| e.muons.len(), 40);
        let electrons = multiplicity_distribution(&evs, |e| e.electrons.len(), 40);
        assert!((jets.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Figure 3: jets have the heaviest tail, electrons the lightest.
        let tail = |d: &[f64]| d[8..].iter().sum::<f64>();
        assert!(tail(&jets) > tail(&muons));
        assert!(tail(&muons) <= tail(&jets));
        let mean = |d: &[f64]| d.iter().enumerate().map(|(i, p)| i as f64 * p).sum::<f64>();
        assert!(mean(&muons) > mean(&electrons));
    }
}
