//! Random query plans for differential fuzzing, with an interpreter
//! oracle.
//!
//! A [`FuzzPlan`] is a tiny declarative query over the CMS schema —
//! projections, a mix of filterable (scalar) and unfilterable
//! (nested-list) predicates, and a histogram spec — that **lowers to every
//! system under test**: the three SQL dialects (through their
//! characteristic idioms: BigQuery correlated `UNNEST` subqueries, Presto
//! full-column-list `CROSS JOIN UNNEST` + `FILTER` lambdas, Athena
//! whole-struct aliases), JSONiq, and an `engine-rdf` dataframe chain.
//! [`FuzzPlan::reference`] is the ground-truth interpreter over the
//! in-memory [`Event`]s — the same oracle role [`crate::reference`] plays
//! for Q1–Q8. Any divergence between an engine and the oracle is a bug by
//! construction: the float comparisons and the binning float path are
//! bit-identical across all lowerings (the generated literals round-trip
//! through [`crate::queries::flit`], and events are f32-quantized exactly
//! like the stored columns).
//!
//! The plan *generator* (seeded, deterministic) lives in the `chaos`
//! crate; this module owns the semantics so the oracle and the lowerings
//! cannot drift apart.

use std::sync::Arc;

use engine_flwor::FlworEngine;
use engine_rdf::{ColValue, RDataFrame};
use engine_sql::{Dialect, SqlEngine};
use hep_model::{Event, Jet};
use nf2_columnar::{SelCmp, SelValue, Table};
use physics::{HistSpec, Histogram};

use crate::adapters::{AdapterError, ExecEnv};
use crate::queries::{bq_binof_call, flit, jq_bin_call, jq_bin_fn, presto_hist_tail, Language};

/// A per-event scalar leaf (non-repeated) of the CMS schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalarLeaf {
    /// `MET.pt`
    MetPt,
    /// `MET.phi`
    MetPhi,
    /// `MET.sumet`
    MetSumet,
    /// `MET.significance`
    MetSignificance,
}

/// All scalar leaves the generator draws from.
pub const ALL_SCALAR_LEAVES: &[ScalarLeaf] = &[
    ScalarLeaf::MetPt,
    ScalarLeaf::MetPhi,
    ScalarLeaf::MetSumet,
    ScalarLeaf::MetSignificance,
];

impl ScalarLeaf {
    /// Dotted SQL path (`MET.pt`).
    pub fn sql(&self) -> &'static str {
        match self {
            ScalarLeaf::MetPt => "MET.pt",
            ScalarLeaf::MetPhi => "MET.phi",
            ScalarLeaf::MetSumet => "MET.sumet",
            ScalarLeaf::MetSignificance => "MET.significance",
        }
    }

    /// RDataFrame flat column name (`MET_pt`).
    pub fn rdf(&self) -> &'static str {
        match self {
            ScalarLeaf::MetPt => "MET_pt",
            ScalarLeaf::MetPhi => "MET_phi",
            ScalarLeaf::MetSumet => "MET_sumet",
            ScalarLeaf::MetSignificance => "MET_significance",
        }
    }

    /// Value on an in-memory event.
    pub fn get(&self, e: &Event) -> f64 {
        match self {
            ScalarLeaf::MetPt => e.met.pt,
            ScalarLeaf::MetPhi => e.met.phi,
            ScalarLeaf::MetSumet => e.met.sumet,
            ScalarLeaf::MetSignificance => e.met.significance,
        }
    }

    /// A plausible `(lo, hi)` value range (for literals and hist specs).
    pub fn range(&self) -> (f64, f64) {
        match self {
            ScalarLeaf::MetPt => (0.0, 120.0),
            ScalarLeaf::MetPhi => (-3.2, 3.2),
            ScalarLeaf::MetSumet => (100.0, 2200.0),
            ScalarLeaf::MetSignificance => (0.0, 12.0),
        }
    }
}

/// A numeric field of the repeated `Jet` list. Restricted to `Jet`
/// because Presto's `CROSS JOIN UNNEST` spells the full column list,
/// which this module knows for jets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JetField {
    /// `Jet.pt`
    Pt,
    /// `Jet.eta`
    Eta,
    /// `Jet.phi`
    Phi,
    /// `Jet.mass`
    Mass,
    /// `Jet.btag`
    Btag,
}

/// All jet fields the generator draws from.
pub const ALL_JET_FIELDS: &[JetField] = &[
    JetField::Pt,
    JetField::Eta,
    JetField::Phi,
    JetField::Mass,
    JetField::Btag,
];

/// Presto's full `UNNEST(Jet)` column list (every leaf must be named).
pub const PRESTO_JET_COLS: &str = "(jpt, jeta, jphi, jmass, jbtag, jpuid)";

impl JetField {
    /// Struct member name (`pt`).
    pub fn member(&self) -> &'static str {
        match self {
            JetField::Pt => "pt",
            JetField::Eta => "eta",
            JetField::Phi => "phi",
            JetField::Mass => "mass",
            JetField::Btag => "btag",
        }
    }

    /// Presto unnested column alias (`jpt`).
    pub fn presto(&self) -> &'static str {
        match self {
            JetField::Pt => "jpt",
            JetField::Eta => "jeta",
            JetField::Phi => "jphi",
            JetField::Mass => "jmass",
            JetField::Btag => "jbtag",
        }
    }

    /// RDataFrame flat column name (`Jet_pt`).
    pub fn rdf(&self) -> &'static str {
        match self {
            JetField::Pt => "Jet_pt",
            JetField::Eta => "Jet_eta",
            JetField::Phi => "Jet_phi",
            JetField::Mass => "Jet_mass",
            JetField::Btag => "Jet_btag",
        }
    }

    /// Value on an in-memory jet.
    pub fn get(&self, j: &Jet) -> f64 {
        match self {
            JetField::Pt => j.pt,
            JetField::Eta => j.eta,
            JetField::Phi => j.phi,
            JetField::Mass => j.mass,
            JetField::Btag => j.btag,
        }
    }

    /// A plausible `(lo, hi)` value range.
    pub fn range(&self) -> (f64, f64) {
        match self {
            JetField::Pt => (15.0, 70.0),
            JetField::Eta => (-3.5, 3.5),
            JetField::Phi => (-3.2, 3.2),
            JetField::Mass => (0.0, 25.0),
            JetField::Btag => (0.0, 1.0),
        }
    }
}

/// Comparison operator (ordered comparisons only: equality on floats is
/// degenerate for fuzzing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// All comparison operators.
pub const ALL_CMPS: &[Cmp] = &[Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge];

impl Cmp {
    /// SQL operator token.
    pub fn sql(&self) -> &'static str {
        match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        }
    }

    /// JSONiq word-form operator.
    pub fn jsoniq(&self) -> &'static str {
        match self {
            Cmp::Lt => "lt",
            Cmp::Le => "le",
            Cmp::Gt => "gt",
            Cmp::Ge => "ge",
        }
    }

    /// Kernel-level comparison for `filter_scalar`.
    pub fn sel(&self) -> SelCmp {
        match self {
            Cmp::Lt => SelCmp::Lt,
            Cmp::Le => SelCmp::Le,
            Cmp::Gt => SelCmp::Gt,
            Cmp::Ge => SelCmp::Ge,
        }
    }

    /// Evaluates `a cmp b`.
    pub fn eval(&self, a: f64, b: f64) -> bool {
        match self {
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// A filterable per-event predicate: `scalar_leaf cmp literal`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalarPred {
    /// The scalar leaf compared.
    pub leaf: ScalarLeaf,
    /// The comparison.
    pub cmp: Cmp,
    /// The literal (always emitted via [`flit`], so it round-trips).
    pub lit: f64,
}

impl ScalarPred {
    fn eval(&self, e: &Event) -> bool {
        self.cmp.eval(self.leaf.get(e), self.lit)
    }
}

/// A per-element predicate on jets: `jet_field cmp literal`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElemPred {
    /// The jet field compared.
    pub field: JetField,
    /// The comparison.
    pub cmp: Cmp,
    /// The literal.
    pub lit: f64,
}

impl ElemPred {
    fn eval(&self, j: &Jet) -> bool {
        self.cmp.eval(self.field.get(j), self.lit)
    }
}

/// An unfilterable nested-list predicate: *count of jets passing
/// `elem` ≥ `min_count`* — the Q4 shape, which no scalar kernel can
/// pre-evaluate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CountPred {
    /// Per-jet qualification.
    pub elem: ElemPred,
    /// Minimum number of qualifying jets.
    pub min_count: u32,
}

impl CountPred {
    fn eval(&self, e: &Event) -> bool {
        e.jets.iter().filter(|j| self.elem.eval(j)).count() as u32 >= self.min_count
    }
}

/// What the histogram is filled with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FillSource {
    /// One fill per passing event, with a scalar leaf.
    Scalar(ScalarLeaf),
    /// One fill per (optionally element-filtered) jet of each passing
    /// event.
    Jets {
        /// The filled field.
        field: JetField,
        /// Optional per-element filter on the filled jets.
        elem_pred: Option<ElemPred>,
    },
}

/// One randomly generated query plan.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzPlan {
    /// Generator sequence number (for labels and replay).
    pub id: u64,
    /// What gets plotted.
    pub fill: FillSource,
    /// Filterable conjuncts (scalar leaf vs literal).
    pub scalar_preds: Vec<ScalarPred>,
    /// Optional unfilterable nested-list conjunct.
    pub count_pred: Option<CountPred>,
    /// The histogram binning.
    pub spec: HistSpec,
}

impl FuzzPlan {
    /// Short label for reports (`fuzz-17`).
    pub fn label(&self) -> String {
        format!("fuzz-{}", self.id)
    }

    // ---------------------------------------------------------------- oracle

    /// The interpreter oracle: ground truth over in-memory events.
    pub fn reference(&self, events: &[Event]) -> Histogram {
        let mut h = Histogram::new(self.spec);
        for e in events {
            if !self.scalar_preds.iter().all(|p| p.eval(e)) {
                continue;
            }
            if let Some(cp) = &self.count_pred {
                if !cp.eval(e) {
                    continue;
                }
            }
            match &self.fill {
                FillSource::Scalar(leaf) => h.fill(leaf.get(e)),
                FillSource::Jets { field, elem_pred } => {
                    for j in &e.jets {
                        if elem_pred.is_none_or(|p| p.eval(j)) {
                            h.fill(field.get(j));
                        }
                    }
                }
            }
        }
        h
    }

    // ------------------------------------------------------------- lowerings

    /// Lowers the plan to a SQL dialect or JSONiq.
    pub fn text(&self, lang: Language) -> String {
        match lang {
            Language::BigQuery => self.bigquery(),
            Language::Presto => self.presto_like(false),
            Language::Athena => self.presto_like(true),
            Language::Jsoniq => self.jsoniq(),
            Language::RDataFrame => format!("// engine-rdf chain {}", self.label()),
        }
    }

    /// BigQuery: correlated `UNNEST` subquery for the count predicate,
    /// comma-`UNNEST` for the list fill, inline CASE binning.
    fn bigquery(&self) -> String {
        let mut from = String::from("FROM events ev");
        let mut conj: Vec<String> = Vec::new();
        for p in &self.scalar_preds {
            conj.push(format!(
                "ev.{} {} {}",
                p.leaf.sql(),
                p.cmp.sql(),
                flit(p.lit)
            ));
        }
        if let Some(cp) = &self.count_pred {
            conj.push(format!(
                "(SELECT COUNT(*) FROM UNNEST(ev.Jet) jc WHERE jc.{} {} {}) >= {}",
                cp.elem.field.member(),
                cp.elem.cmp.sql(),
                flit(cp.elem.lit),
                cp.min_count
            ));
        }
        let value = match &self.fill {
            FillSource::Scalar(leaf) => format!("ev.{}", leaf.sql()),
            FillSource::Jets { field, elem_pred } => {
                from.push_str(", UNNEST(ev.Jet) AS j");
                if let Some(p) = elem_pred {
                    conj.push(format!(
                        "j.{} {} {}",
                        p.field.member(),
                        p.cmp.sql(),
                        flit(p.lit)
                    ));
                }
                format!("j.{}", field.member())
            }
        };
        let where_clause = if conj.is_empty() {
            String::new()
        } else {
            format!("WHERE {}\n", conj.join(" AND "))
        };
        format!(
            "SELECT {bin} AS bin, COUNT(*) AS n\n{from}\n{where_clause}GROUP BY bin",
            bin = bq_binof_call(&value, self.spec),
        )
    }

    /// Presto (`athena: false`) / Athena (`athena: true`): a `plotted(x)`
    /// CTE plus the shared two-level binning tail. Presto must spell the
    /// full UNNEST column list; Athena has whole-struct aliases.
    fn presto_like(&self, athena: bool) -> String {
        let mut from = String::from("FROM events");
        let mut conj: Vec<String> = Vec::new();
        for p in &self.scalar_preds {
            conj.push(format!("{} {} {}", p.leaf.sql(), p.cmp.sql(), flit(p.lit)));
        }
        if let Some(cp) = &self.count_pred {
            conj.push(format!(
                "CARDINALITY(FILTER(Jet, jf -> jf.{} {} {})) >= {}",
                cp.elem.field.member(),
                cp.elem.cmp.sql(),
                flit(cp.elem.lit),
                cp.min_count
            ));
        }
        let value = match &self.fill {
            FillSource::Scalar(leaf) => leaf.sql().to_string(),
            FillSource::Jets { field, elem_pred } => {
                if athena {
                    from.push_str(" CROSS JOIN UNNEST(Jet) AS j");
                } else {
                    from.push_str(&format!(
                        "\n\x20 CROSS JOIN UNNEST(Jet) AS j {PRESTO_JET_COLS}"
                    ));
                }
                if let Some(p) = elem_pred {
                    let col = if athena {
                        format!("j.{}", p.field.member())
                    } else {
                        p.field.presto().to_string()
                    };
                    conj.push(format!("{col} {} {}", p.cmp.sql(), flit(p.lit)));
                }
                if athena {
                    format!("j.{}", field.member())
                } else {
                    field.presto().to_string()
                }
            }
        };
        let where_clause = if conj.is_empty() {
            String::new()
        } else {
            format!("\n\x20 WHERE {}", conj.join(" AND "))
        };
        format!(
            "WITH plotted AS (\n\x20 SELECT {value} AS x {from}{where_clause})\n{tail}",
            tail = presto_hist_tail(self.spec),
        )
    }

    /// JSONiq: word-form comparisons, `$$` context-item member predicates,
    /// the shared `hep:bin` function.
    fn jsoniq(&self) -> String {
        let mut conj: Vec<String> = Vec::new();
        for p in &self.scalar_preds {
            conj.push(format!(
                "$e.{} {} {}",
                p.leaf.sql(),
                p.cmp.jsoniq(),
                flit(p.lit)
            ));
        }
        if let Some(cp) = &self.count_pred {
            conj.push(format!(
                "count($e.Jet[][$$.{} {} {}]) ge {}",
                cp.elem.field.member(),
                cp.elem.cmp.jsoniq(),
                flit(cp.elem.lit),
                cp.min_count
            ));
        }
        let where_clause = if conj.is_empty() {
            String::new()
        } else {
            format!("where {}\n", conj.join(" and "))
        };
        let ret = match &self.fill {
            FillSource::Scalar(leaf) => format!(
                "return {}",
                jq_bin_call(&format!("$e.{}", leaf.sql()), self.spec)
            ),
            FillSource::Jets { field, elem_pred } => {
                let seq = match elem_pred {
                    Some(p) => format!(
                        "$e.Jet[][$$.{} {} {}]",
                        p.field.member(),
                        p.cmp.jsoniq(),
                        flit(p.lit)
                    ),
                    None => "$e.Jet[]".to_string(),
                };
                format!(
                    "return for $j in {seq} return {}",
                    jq_bin_call(&format!("$j.{}", field.member()), self.spec)
                )
            }
        };
        format!(
            "{binfn}for $e in parquet-file(\"events\")\n{where_clause}{ret}",
            binfn = jq_bin_fn(),
        )
    }

    /// Lowers the plan to the shared physical IR. Unlike the engine-side
    /// recognizers (which must prove a parsed query matches a template),
    /// every fuzz plan lowers: the plan's node set is a subset of the
    /// IR's by construction, which makes this the differential oracle
    /// for the compiled executor itself.
    pub fn physical(&self) -> physical_ir::PhysPlan {
        use nested_value::Path;
        let jet_leaf = |f: JetField| Path::parse(&format!("Jet.{}", f.member()));
        let mut filters: Vec<physical_ir::FilterNode> = self
            .scalar_preds
            .iter()
            .map(|p| {
                physical_ir::FilterNode::Scalar(nf2_columnar::ScalarPredicate {
                    leaf: Path::parse(p.leaf.sql()),
                    cmp: p.cmp.sel(),
                    value: SelValue::Float(p.lit),
                })
            })
            .collect();
        if let Some(cp) = &self.count_pred {
            filters.push(physical_ir::FilterNode::ListCount {
                leaf: jet_leaf(cp.elem.field),
                elem: Some(physical_ir::ElemPredicate {
                    leaf: jet_leaf(cp.elem.field),
                    cmp: cp.elem.cmp.sel(),
                    value: cp.elem.lit,
                }),
                cmp: SelCmp::Ge,
                count: cp.min_count as i64,
            });
        }
        let compute = match &self.fill {
            FillSource::Scalar(leaf) => physical_ir::ComputeNode::ScalarFill {
                leaf: Path::parse(leaf.sql()),
            },
            FillSource::Jets { field, elem_pred } => physical_ir::ComputeNode::ListFill {
                leaf: jet_leaf(*field),
                elem: elem_pred.map(|p| physical_ir::ElemPredicate {
                    leaf: jet_leaf(p.field),
                    cmp: p.cmp.sel(),
                    value: p.lit,
                }),
            },
        };
        physical_ir::PhysPlan {
            filters,
            compute,
            spec: self.spec,
        }
    }

    /// Lowers the plan to an `engine-rdf` dataframe chain over `table`.
    pub fn rdf(&self, table: Arc<Table>, options: engine_rdf::Options) -> RDataFrame {
        let mut df = RDataFrame::new(table, options);
        for p in &self.scalar_preds {
            df = df.filter_scalar(p.leaf.rdf(), p.cmp.sel(), SelValue::Float(p.lit));
        }
        if let Some(cp) = self.count_pred {
            let col = cp.elem.field.rdf();
            df = df.filter(&[col], move |v| {
                v.arr(col)
                    .iter()
                    .filter(|&&x| cp.elem.cmp.eval(x, cp.elem.lit))
                    .count() as u32
                    >= cp.min_count
            });
        }
        match &self.fill {
            FillSource::Scalar(leaf) => df.histo1d(self.spec, leaf.rdf()).dataframe().clone(),
            FillSource::Jets { field, elem_pred } => match elem_pred {
                None => df.histo1d(self.spec, field.rdf()).dataframe().clone(),
                Some(p) => {
                    let p = *p;
                    let fill_col = field.rdf();
                    let pred_col = p.field.rdf();
                    df.define("fuzz_fill", &[fill_col, pred_col], move |v| {
                        let fills = v.arr(fill_col);
                        let preds = v.arr(pred_col);
                        ColValue::Arr(
                            fills
                                .iter()
                                .zip(preds.iter())
                                .filter(|(_, &q)| p.cmp.eval(q, p.lit))
                                .map(|(&f, _)| f)
                                .collect(),
                        )
                    })
                    .histo1d(self.spec, "fuzz_fill")
                    .dataframe()
                    .clone()
                }
            },
        }
    }

    // ------------------------------------------------------------- execution

    /// Executes the plan on the SQL engine under a dialect, in an
    /// [`ExecEnv`] (cache, threads, fault injector).
    pub fn run_sql(
        &self,
        dialect: Dialect,
        table: &Arc<Table>,
        env: &ExecEnv,
    ) -> Result<Histogram, AdapterError> {
        let lang = match dialect.name {
            engine_sql::DialectName::BigQuery => Language::BigQuery,
            engine_sql::DialectName::Presto => Language::Presto,
            engine_sql::DialectName::Athena => Language::Athena,
        };
        let mut options = engine_sql::SqlOptions::default();
        if let Some(n) = env.intra_query_threads {
            options.n_threads = n;
        }
        if let Some(p) = env.zone_map_pruning {
            options.zone_map_pruning = p;
        }
        let mut engine = SqlEngine::new(dialect, options);
        engine.register(table.clone());
        engine.set_chunk_cache(env.chunk_cache.clone());
        engine.set_fault_injector(env.fault_injector.clone());
        engine.set_cancel(env.cancel.clone());
        let out = engine.execute(&self.text(lang)).map_err(|e| {
            let mut err = AdapterError::new(lang.name(), self.label(), &e, e.scan_error());
            err.cancelled = e.cancelled().copied().map(Box::new);
            err
        })?;
        let mut histogram = Histogram::new(self.spec);
        for row in &out.relation.rows {
            let (bin, n) = crate::adapters::bin_count_row(row)
                .map_err(|e| AdapterError::new(lang.name(), self.label(), e, None))?;
            histogram.add_bin_count(bin, n);
        }
        Ok(histogram)
    }

    /// Executes the plan on the JSONiq engine in an [`ExecEnv`].
    pub fn run_jsoniq(&self, table: &Arc<Table>, env: &ExecEnv) -> Result<Histogram, AdapterError> {
        let mut options = engine_flwor::FlworOptions::default();
        if let Some(n) = env.intra_query_threads {
            options.n_threads = n;
        }
        if let Some(p) = env.zone_map_pruning {
            options.zone_map_pruning = p;
        }
        let mut engine = FlworEngine::new(options);
        engine.register(table.clone());
        engine.set_chunk_cache(env.chunk_cache.clone());
        engine.set_fault_injector(env.fault_injector.clone());
        engine.set_cancel(env.cancel.clone());
        let out = engine.execute(&self.jsoniq()).map_err(|e| {
            let mut err = AdapterError::new("JSONiq", self.label(), &e, e.scan_error());
            err.cancelled = e.cancelled().copied().map(Box::new);
            err
        })?;
        let mut histogram = Histogram::new(self.spec);
        for item in &out.items {
            let bin = item.as_i64().map_err(|e| {
                AdapterError::new("JSONiq", self.label(), format!("bin item {e}"), None)
            })?;
            histogram.add_bin_count(bin, 1);
        }
        Ok(histogram)
    }

    /// Executes the plan on the RDataFrame engine in an [`ExecEnv`].
    pub fn run_rdf(&self, table: &Arc<Table>, env: &ExecEnv) -> Result<Histogram, AdapterError> {
        let mut options = engine_rdf::Options::default();
        if let Some(n) = env.intra_query_threads {
            options.n_threads = n;
        }
        if let Some(p) = env.zone_map_pruning {
            options.zone_map_pruning = p;
        }
        let mut df = self.rdf(table.clone(), options);
        df.set_chunk_cache(env.chunk_cache.clone());
        df.set_fault_injector(env.fault_injector.clone());
        df.set_cancel(env.cancel.clone());
        let out = df.run_all().map_err(|e| {
            let mut err = AdapterError::new("RDataFrame", self.label(), &e, e.scan_error());
            err.cancelled = e.cancelled().copied().map(Box::new);
            err
        })?;
        Ok(out.histograms.into_iter().next().expect("one booking"))
    }

    /// Executes the plan on the compiled physical-IR executor in an
    /// [`ExecEnv`]. The executor reads decoded chunks directly (scan
    /// accounting and the chunk-level fault path are engine concerns),
    /// so only the environment's trace and cancel token apply.
    pub fn run_compiled(
        &self,
        table: &Arc<Table>,
        env: &ExecEnv,
    ) -> Result<Histogram, AdapterError> {
        let plan = self.physical();
        let skip = compiled_skip_mask(&plan, table, env);
        let bins = physical_ir::execute(&plan, table, skip.as_deref(), &env.trace, &env.cancel)
            .map_err(|e| AdapterError::from_engine("Compiled", self.label(), &e))?;
        let mut histogram = Histogram::new(self.spec);
        for b in bins {
            histogram.add_bin_count(b, 1);
        }
        Ok(histogram)
    }

    /// Executes the plan on the morsel-parallel compiled executor
    /// ([`exec_par`]) with `workers` threads and the given steal seed.
    /// Must produce exactly the bins of [`FuzzPlan::run_compiled`] at
    /// any worker count — the differential fuzzer holds it to that.
    pub fn run_compiled_parallel(
        &self,
        table: &Arc<Table>,
        env: &ExecEnv,
        workers: usize,
        steal_seed: u64,
    ) -> Result<Histogram, AdapterError> {
        let plan = self.physical();
        let opts = exec_par::ParOptions {
            workers,
            steal_seed,
            recovery: None,
        };
        let skip = compiled_skip_mask(&plan, table, env);
        let (bins, _stats) = exec_par::execute(
            &plan,
            table,
            skip.as_deref(),
            &env.trace,
            &env.cancel,
            None,
            &opts,
        )
        .map_err(|e| AdapterError::from_engine("Compiled-parallel", self.label(), &e))?;
        let mut histogram = Histogram::new(self.spec);
        for b in bins {
            histogram.add_bin_count(b, 1);
        }
        Ok(histogram)
    }
}

/// The zone-map skip mask the bare compiled executors run with: the
/// plan's scalar filters, evaluated against per-chunk statistics — the
/// same mask an engine's scan layer would hand them — when the
/// environment explicitly enables pruning, `None` otherwise (the
/// executors have no scan layer of their own, so the default stays the
/// unpruned seed path).
fn compiled_skip_mask(
    plan: &physical_ir::PhysPlan,
    table: &Table,
    env: &ExecEnv,
) -> Option<Vec<bool>> {
    if env.zone_map_pruning != Some(true) {
        return None;
    }
    let preds: Vec<nf2_columnar::ScalarPredicate> = plan
        .filters
        .iter()
        .filter_map(|f| match f {
            physical_ir::FilterNode::Scalar(p) => Some(p.clone()),
            _ => None,
        })
        .collect();
    Some(nf2_columnar::stats::skip_mask(table, &preds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::{generator::build_dataset, DatasetSpec};

    fn sample_plans() -> Vec<FuzzPlan> {
        vec![
            // Scalar fill, no predicates.
            FuzzPlan {
                id: 0,
                fill: FillSource::Scalar(ScalarLeaf::MetPt),
                scalar_preds: vec![],
                count_pred: None,
                spec: HistSpec::new(100, 0.0, 200.0),
            },
            // Scalar fill, scalar + count predicates (the Q4 family).
            FuzzPlan {
                id: 1,
                fill: FillSource::Scalar(ScalarLeaf::MetSumet),
                scalar_preds: vec![ScalarPred {
                    leaf: ScalarLeaf::MetPt,
                    cmp: Cmp::Gt,
                    lit: 20.0,
                }],
                count_pred: Some(CountPred {
                    elem: ElemPred {
                        field: JetField::Pt,
                        cmp: Cmp::Ge,
                        lit: 35.0,
                    },
                    min_count: 2,
                }),
                spec: HistSpec::new(50, 0.0, 2000.0),
            },
            // List fill with element predicate (the Q3 family).
            FuzzPlan {
                id: 2,
                fill: FillSource::Jets {
                    field: JetField::Pt,
                    elem_pred: Some(ElemPred {
                        field: JetField::Eta,
                        cmp: Cmp::Lt,
                        lit: 1.0,
                    }),
                },
                scalar_preds: vec![ScalarPred {
                    leaf: ScalarLeaf::MetPhi,
                    cmp: Cmp::Le,
                    lit: 2.5,
                }],
                count_pred: None,
                spec: HistSpec::new(20, 15.0, 60.0),
            },
        ]
    }

    #[test]
    fn lowerings_parse_and_validate() {
        for plan in sample_plans() {
            for (lang, dialect) in [
                (Language::BigQuery, Dialect::bigquery()),
                (Language::Presto, Dialect::presto()),
                (Language::Athena, Dialect::athena()),
            ] {
                let t = plan.text(lang);
                let script = engine_sql::parser::parse_script(&t)
                    .unwrap_or_else(|e| panic!("{:?} {}: {e}\n{t}", lang, plan.label()));
                dialect
                    .validate(&script)
                    .unwrap_or_else(|e| panic!("{:?} {}: {e}\n{t}", lang, plan.label()));
            }
            let jq = plan.jsoniq();
            engine_flwor::parser::parse_module(&jq)
                .unwrap_or_else(|e| panic!("jsoniq {}: {e}\n{jq}", plan.label()));
        }
    }

    #[test]
    fn all_engines_match_the_oracle_on_sample_plans() {
        let (events, table) = build_dataset(DatasetSpec {
            n_events: 600,
            row_group_size: 128,
            seed: 0xFACE,
        });
        let table = Arc::new(table);
        let env = ExecEnv::seed();
        for plan in sample_plans() {
            let oracle = plan.reference(&events);
            for dialect in [Dialect::bigquery(), Dialect::presto(), Dialect::athena()] {
                let h = plan.run_sql(dialect, &table, &env).unwrap();
                assert!(
                    h.counts_equal(&oracle),
                    "{} {:?} diverged from oracle",
                    plan.label(),
                    dialect.name
                );
            }
            let h = plan.run_jsoniq(&table, &env).unwrap();
            assert!(h.counts_equal(&oracle), "{} jsoniq diverged", plan.label());
            let h = plan.run_rdf(&table, &env).unwrap();
            assert!(h.counts_equal(&oracle), "{} rdf diverged", plan.label());
            let h = plan.run_compiled(&table, &env).unwrap();
            assert!(
                h.counts_equal(&oracle),
                "{} compiled diverged",
                plan.label()
            );
        }
    }
}
