//! Ground-truth implementations of the benchmark queries.
//!
//! Every kernel here is written so that its floating-point operation
//! sequence can be reproduced *verbatim* in the SQL and JSONiq query texts
//! (component sums before subtraction, `GREATEST(0, …)` clamps, raw-angle
//! cosines) — making exact, bin-for-bin cross-engine validation possible.
//! The RDataFrame programs call these kernels directly.
//!
//! Each run also counts the **records or record combinations explored per
//! event**, the quantity of the paper's Table 2.

use hep_model::{Electron, Event, Muon};
use physics::{FourMomentum, Histogram};

use crate::spec::{masses, QueryId};

/// Result of a reference run.
#[derive(Clone, Debug)]
pub struct RefOutput {
    /// The filled histogram.
    pub hist: Histogram,
    /// Total records/record-combinations explored (Table 2 numerator).
    pub ops: u64,
}

/// A light lepton in (Q7)/(Q8): the merged muon+electron view.
#[derive(Clone, Copy, Debug)]
pub struct Lepton {
    /// Transverse momentum.
    pub pt: f64,
    /// Pseudorapidity.
    pub eta: f64,
    /// Azimuth.
    pub phi: f64,
    /// Rest mass.
    pub mass: f64,
    /// Charge (±1).
    pub charge: i32,
    /// Flavor tag: 0 = muon, 1 = electron (the merge order is muons then
    /// electrons, fixed across all engines).
    pub flavor: i32,
}

/// Merged light-lepton list: muons first, then electrons (order matters
/// for deterministic tie-breaking and must match every query text).
pub fn light_leptons(muons: &[Muon], electrons: &[Electron]) -> Vec<Lepton> {
    let mut out = Vec::with_capacity(muons.len() + electrons.len());
    for m in muons {
        out.push(Lepton {
            pt: m.pt,
            eta: m.eta,
            phi: m.phi,
            mass: m.mass,
            charge: m.charge,
            flavor: 0,
        });
    }
    for e in electrons {
        out.push(Lepton {
            pt: e.pt,
            eta: e.eta,
            phi: e.phi,
            mass: e.mass,
            charge: e.charge,
            flavor: 1,
        });
    }
    out
}

/// Invariant mass of two particles via explicit component sums — the
/// formula the SQL/JSONiq texts spell out.
#[allow(clippy::too_many_arguments)]
pub fn pair_mass(
    pt1: f64,
    eta1: f64,
    phi1: f64,
    m1: f64,
    pt2: f64,
    eta2: f64,
    phi2: f64,
    m2: f64,
) -> f64 {
    let a = FourMomentum::from_pt_eta_phi_m(pt1, eta1, phi1, m1);
    let b = FourMomentum::from_pt_eta_phi_m(pt2, eta2, phi2, m2);
    let e = a.e + b.e;
    let px = a.px + b.px;
    let py = a.py + b.py;
    let pz = a.pz + b.pz;
    let m2sum = e * e - (px * px + py * py + pz * pz);
    m2sum.max(0.0).sqrt()
}

/// Best trijet of an event: the 3-jet combination (in `i<j<k` enumeration
/// order, first-minimum wins) whose invariant mass is closest to the top
/// mass. Returns `(system_pt, max_btag, combinations_explored)`.
pub fn best_trijet(jets: &[hep_model::Jet]) -> Option<(f64, f64, u64)> {
    let n = jets.len();
    if n < 3 {
        return None;
    }
    let vecs: Vec<FourMomentum> = jets
        .iter()
        .map(|j| FourMomentum::from_pt_eta_phi_m(j.pt, j.eta, j.phi, j.mass))
        .collect();
    let mut best: Option<(f64, f64, f64)> = None; // (dist, pt, btag)
    let mut ops = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            for k in (j + 1)..n {
                ops += 1;
                let e = vecs[i].e + vecs[j].e + vecs[k].e;
                let px = vecs[i].px + vecs[j].px + vecs[k].px;
                let py = vecs[i].py + vecs[j].py + vecs[k].py;
                let pz = vecs[i].pz + vecs[j].pz + vecs[k].pz;
                let mass = (e * e - (px * px + py * py + pz * pz)).max(0.0).sqrt();
                let dist = (mass - masses::TOP).abs();
                let better = match &best {
                    None => true,
                    Some((d, _, _)) => dist < *d,
                };
                if better {
                    let pt = (px * px + py * py).sqrt();
                    let btag = jets[i].btag.max(jets[j].btag).max(jets[k].btag);
                    best = Some((dist, pt, btag));
                }
            }
        }
    }
    best.map(|(_, pt, btag)| (pt, btag, ops))
}

/// (Q7)'s per-event scalar sum: pt of jets with pt > 30 that are ≥ 0.4 in
/// ΔR away from every light lepton with pt > 10. Returns `None` when no
/// jet qualifies; also reports lepton-comparison ops.
pub fn q7_sum(event: &Event) -> (Option<f64>, u64) {
    let leptons = light_leptons(&event.muons, &event.electrons);
    let mut sum = 0.0;
    let mut any = false;
    let mut ops = 0u64;
    for j in &event.jets {
        if j.pt <= 30.0 {
            continue;
        }
        let mut isolated = true;
        for l in &leptons {
            ops += 1;
            if l.pt > 10.0 && physics::delta_r(j.eta, j.phi, l.eta, l.phi) < 0.4 {
                isolated = false;
                break;
            }
        }
        if isolated {
            sum += j.pt;
            any = true;
        }
    }
    (any.then_some(sum), ops)
}

/// (Q8)'s per-event value: the transverse mass of the MET system and the
/// hardest lepton outside the best same-flavor opposite-charge pair.
pub fn q8_value(event: &Event) -> (Option<f64>, u64) {
    let leptons = light_leptons(&event.muons, &event.electrons);
    let mut ops = 1u64;
    if leptons.len() < 3 {
        return (None, ops);
    }
    let n = leptons.len();
    let mut best: Option<(f64, usize, usize)> = None; // (dist, i, k)
    for i in 0..n {
        for k in (i + 1)..n {
            ops += 1;
            let (a, b) = (&leptons[i], &leptons[k]);
            if a.flavor != b.flavor || a.charge == b.charge {
                continue;
            }
            let m = pair_mass(a.pt, a.eta, a.phi, a.mass, b.pt, b.eta, b.phi, b.mass);
            let dist = (m - masses::Z).abs();
            let better = match &best {
                None => true,
                Some((d, _, _)) => dist < *d,
            };
            if better {
                best = Some((dist, i, k));
            }
        }
    }
    let Some((_, bi, bk)) = best else {
        return (None, ops);
    };
    let mut lead: Option<&Lepton> = None;
    for (idx, l) in leptons.iter().enumerate() {
        ops += 1;
        if idx == bi || idx == bk {
            continue;
        }
        lead = Some(match lead {
            None => l,
            Some(cur) => {
                if l.pt > cur.pt {
                    l
                } else {
                    cur
                }
            }
        });
    }
    let lead = lead.expect("n >= 3 leaves at least one lepton");
    let mt = physics::transverse_mass(lead.pt, lead.phi, event.met.pt, event.met.phi);
    (Some(mt), ops)
}

/// Runs the reference implementation of a query output.
pub fn run(q: QueryId, events: &[Event]) -> RefOutput {
    let mut hist = Histogram::new(q.hist_spec());
    let mut ops = 0u64;
    match q {
        QueryId::Q1 => {
            for e in events {
                ops += 1;
                hist.fill(e.met.pt);
            }
        }
        QueryId::Q2 => {
            for e in events {
                for j in &e.jets {
                    ops += 1;
                    hist.fill(j.pt);
                }
            }
        }
        QueryId::Q3 => {
            for e in events {
                for j in &e.jets {
                    ops += 1;
                    if j.eta.abs() < 1.0 {
                        hist.fill(j.pt);
                    }
                }
            }
        }
        QueryId::Q4 => {
            for e in events {
                ops += 1;
                let mut n = 0;
                for j in &e.jets {
                    ops += 1;
                    if j.pt > 40.0 {
                        n += 1;
                    }
                }
                if n >= 2 {
                    hist.fill(e.met.pt);
                }
            }
        }
        QueryId::Q5 => {
            for e in events {
                ops += 1;
                let mut pass = false;
                for i in 0..e.muons.len() {
                    for k in (i + 1)..e.muons.len() {
                        ops += 1;
                        let (a, b) = (&e.muons[i], &e.muons[k]);
                        if a.charge == b.charge {
                            continue;
                        }
                        let m = pair_mass(a.pt, a.eta, a.phi, a.mass, b.pt, b.eta, b.phi, b.mass);
                        if (60.0..=120.0).contains(&m) {
                            pass = true;
                        }
                    }
                }
                if pass {
                    hist.fill(e.met.pt);
                }
            }
        }
        QueryId::Q6a | QueryId::Q6b => {
            for e in events {
                ops += 1;
                if let Some((pt, btag, combos)) = best_trijet(&e.jets) {
                    ops += combos;
                    hist.fill(if q == QueryId::Q6a { pt } else { btag });
                }
            }
        }
        QueryId::Q7 => {
            for e in events {
                let (v, o) = q7_sum(e);
                ops += o;
                if let Some(sum) = v {
                    hist.fill(sum);
                }
            }
        }
        QueryId::Q8 => {
            for e in events {
                let (v, o) = q8_value(e);
                ops += o;
                if let Some(mt) = v {
                    hist.fill(mt);
                }
            }
        }
    }
    RefOutput { hist, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ALL_QUERIES;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;

    fn events() -> Vec<Event> {
        build_dataset(DatasetSpec {
            n_events: 3_000,
            row_group_size: 512,
            seed: 77,
        })
        .0
    }

    #[test]
    fn q1_counts_every_event() {
        let evs = events();
        let out = run(QueryId::Q1, &evs);
        assert_eq!(out.hist.total(), evs.len() as u64);
        assert_eq!(out.ops, evs.len() as u64);
    }

    #[test]
    fn q2_counts_every_jet() {
        let evs = events();
        let out = run(QueryId::Q2, &evs);
        let jets: u64 = evs.iter().map(|e| e.jets.len() as u64).sum();
        assert_eq!(out.hist.total(), jets);
        assert_eq!(out.ops, jets);
    }

    #[test]
    fn q3_subset_of_q2() {
        let evs = events();
        let q2 = run(QueryId::Q2, &evs);
        let q3 = run(QueryId::Q3, &evs);
        assert!(q3.hist.total() < q2.hist.total());
        assert!(q3.hist.total() > 0);
    }

    #[test]
    fn q4_selects_multijet_events() {
        let evs = events();
        let out = run(QueryId::Q4, &evs);
        let expect = evs
            .iter()
            .filter(|e| e.jets.iter().filter(|j| j.pt > 40.0).count() >= 2)
            .count() as u64;
        assert_eq!(out.hist.total(), expect);
    }

    #[test]
    fn q5_finds_z_candidates() {
        let evs = events();
        let out = run(QueryId::Q5, &evs);
        // The generator injects Z → μμ in ~6.7% of events; with background
        // pairs the selection should land in single-digit percent.
        let frac = out.hist.total() as f64 / evs.len() as f64;
        assert!((0.01..0.2).contains(&frac), "selected fraction {frac}");
    }

    #[test]
    fn q6_shares_selection_between_outputs() {
        let evs = events();
        let a = run(QueryId::Q6a, &evs);
        let b = run(QueryId::Q6b, &evs);
        assert_eq!(a.hist.total(), b.hist.total());
        assert_eq!(a.ops, b.ops);
        let expect = evs.iter().filter(|e| e.jets.len() >= 3).count() as u64;
        assert_eq!(a.hist.total(), expect);
        // Q6b is a discriminant in [0, 1]: no out-of-range fills.
        assert_eq!(b.hist.underflow(), 0);
    }

    #[test]
    fn q7_sums_exceed_single_jet_cut() {
        let evs = events();
        let out = run(QueryId::Q7, &evs);
        assert!(out.hist.total() > 0);
        // Every plotted sum is > 30 (at least one jet above the cut).
        assert_eq!(out.hist.underflow(), 0); // spec lo = 15 < 30
    }

    #[test]
    fn q8_requires_three_leptons() {
        let evs = events();
        let out = run(QueryId::Q8, &evs);
        let upper = evs.iter().filter(|e| e.n_light_leptons() >= 3).count() as u64;
        assert!(out.hist.total() <= upper);
        assert!(out.hist.total() > 0, "no trilepton events selected");
    }

    #[test]
    fn best_trijet_deterministic_and_counts() {
        let evs = events();
        let e = evs.iter().find(|e| e.jets.len() >= 4).unwrap();
        let (pt1, b1, ops1) = best_trijet(&e.jets).unwrap();
        let (pt2, b2, ops2) = best_trijet(&e.jets).unwrap();
        assert_eq!((pt1, b1, ops1), (pt2, b2, ops2));
        let n = e.jets.len() as u64;
        assert_eq!(ops1, n * (n - 1) * (n - 2) / 6);
    }

    #[test]
    fn ops_per_event_match_table2_shape() {
        let evs = events();
        let n = evs.len() as f64;
        let per_event = |q: QueryId| run(q, &evs).ops as f64 / n;
        // Q1 = 1 exactly; Q2 ≈ mean jets; Q6 dominates everything.
        assert_eq!(per_event(QueryId::Q1), 1.0);
        let q2 = per_event(QueryId::Q2);
        assert!((2.0..5.0).contains(&q2), "Q2 ops/event {q2}");
        let q6 = per_event(QueryId::Q6a);
        assert!(q6 > 10.0, "Q6 ops/event {q6}");
        assert!(q6 > per_event(QueryId::Q8));
    }

    #[test]
    fn all_queries_produce_output() {
        let evs = events();
        for q in ALL_QUERIES {
            let out = run(*q, &evs);
            assert!(out.hist.total() > 0, "{} empty", q.name());
        }
    }
}
