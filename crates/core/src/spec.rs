//! Benchmark query identities and histogram specifications.

use physics::HistSpec;

/// Reference masses used by the selections (GeV).
pub mod masses {
    /// The Z boson mass targeted by (Q8)'s best-pair search.
    pub const Z: f64 = 91.2;
    /// The top quark mass targeted by (Q6)'s best-trijet search.
    pub const TOP: f64 = 172.5;
}

/// The benchmark's query outputs. (Q6) produces two plots from one event
/// selection, counted separately like in the paper's Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// MET of all events.
    Q1,
    /// pt of all jets.
    Q2,
    /// pt of jets with |η| < 1.
    Q3,
    /// MET of events with ≥ 2 jets with pt > 40 GeV.
    Q4,
    /// MET of events with an opposite-charge muon pair with invariant mass
    /// in [60, 120] GeV.
    Q5,
    /// pt of the trijet system closest in mass to 172.5 GeV.
    Q6a,
    /// Maximum b-tag discriminant among that trijet's jets.
    Q6b,
    /// Scalar sum of pt of jets (pt > 30) isolated (ΔR ≥ 0.4) from all
    /// light leptons with pt > 10, per event with at least one such jet.
    Q7,
    /// Transverse mass of MET and the hardest light lepton outside the
    /// best same-flavor opposite-charge pair, in events with ≥ 3 leptons.
    Q8,
}

/// All query outputs in benchmark order.
pub const ALL_QUERIES: &[QueryId] = &[
    QueryId::Q1,
    QueryId::Q2,
    QueryId::Q3,
    QueryId::Q4,
    QueryId::Q5,
    QueryId::Q6a,
    QueryId::Q6b,
    QueryId::Q7,
    QueryId::Q8,
];

impl QueryId {
    /// Short name, e.g. `Q6a`.
    pub fn name(&self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q2 => "Q2",
            QueryId::Q3 => "Q3",
            QueryId::Q4 => "Q4",
            QueryId::Q5 => "Q5",
            QueryId::Q6a => "Q6a",
            QueryId::Q6b => "Q6b",
            QueryId::Q7 => "Q7",
            QueryId::Q8 => "Q8",
        }
    }

    /// One-line description (the paper's §2.2 definitions).
    pub fn description(&self) -> &'static str {
        match self {
            QueryId::Q1 => "MET of all events",
            QueryId::Q2 => "pt of all jets",
            QueryId::Q3 => "pt of jets with |eta| < 1",
            QueryId::Q4 => "MET of events with >=2 jets with pt > 40 GeV",
            QueryId::Q5 => "MET of events with an OS muon pair with mass in [60,120] GeV",
            QueryId::Q6a => "pt of the trijet closest in mass to 172.5 GeV",
            QueryId::Q6b => "max b-tag among the jets of that trijet",
            QueryId::Q7 => "scalar sum of pt of jets (pt>30) isolated from leptons (pt>10)",
            QueryId::Q8 => "transverse mass of MET + hardest lepton outside the best SFOS pair",
        }
    }

    /// The plot's histogram specification (100 equi-width bins with
    /// statically chosen bounds, as the benchmark prescribes; under- and
    /// overflow get dedicated bins).
    pub fn hist_spec(&self) -> HistSpec {
        match self {
            QueryId::Q1 | QueryId::Q4 | QueryId::Q5 => HistSpec::new(100, 0.0, 200.0),
            QueryId::Q2 | QueryId::Q3 => HistSpec::new(100, 15.0, 60.0),
            QueryId::Q6a => HistSpec::new(100, 0.0, 250.0),
            QueryId::Q6b => HistSpec::new(100, 0.0, 1.0),
            QueryId::Q7 => HistSpec::new(100, 15.0, 200.0),
            QueryId::Q8 => HistSpec::new(100, 0.0, 250.0),
        }
    }

    /// The underlying query (Q6a and Q6b share selection and CPU work).
    pub fn base_query(&self) -> &'static str {
        match self {
            QueryId::Q6a | QueryId::Q6b => "Q6",
            other => other.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_outputs_eight_queries() {
        assert_eq!(ALL_QUERIES.len(), 9);
        let bases: std::collections::HashSet<_> =
            ALL_QUERIES.iter().map(|q| q.base_query()).collect();
        assert_eq!(bases.len(), 8);
    }

    #[test]
    fn specs_are_100_bins() {
        for q in ALL_QUERIES {
            assert_eq!(q.hist_spec().bins, 100);
            assert!(q.hist_spec().lo < q.hist_spec().hi);
        }
    }
}
