//! The unified engine API: one trait, one output shape, every engine.
//!
//! Historically each engine exposed its own entry point and result type
//! (`SqlEngine::execute → QueryOutput`, `FlworEngine::execute →
//! FlworOutput`, `engine-rdf` `RunOutput`) and the adapter layer papered
//! over the differences with per-engine `run_*` functions. The
//! [`QueryEngine`] trait is the supported extension point instead: an
//! engine implements `system()` and `execute()`, returns the shared
//! [`EngineRun`] (histogram + [`nf2_columnar::ScanStats`] + span tree),
//! and the runner, the bench harness, and the query service all
//! dispatch through `dyn QueryEngine` without knowing which engine
//! backs a [`System`].
//!
//! Every `execute` opens a [`obs::Stage::Query`] root span on the
//! environment's trace context, runs the engine with stage spans
//! parented under it, and drains the recorded spans into
//! [`EngineRun::trace`] — so observability comes with the trait, not
//! per engine.

use std::sync::Arc;

use engine_flwor::FlworOptions;
use engine_sql::{Dialect, SqlOptions};
use nf2_columnar::Table;

use crate::adapters::{self, AdapterError, EngineRun, ExecEnv};
use crate::runner::System;
use crate::spec::QueryId;

/// A query to execute: today always one of the benchmark's Q1–Q8
/// outputs, carried as a struct so the trait surface can grow (ad-hoc
/// texts, parameters) without breaking implementors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// The benchmark query to run.
    pub id: QueryId,
}

impl QuerySpec {
    /// A benchmark query.
    pub fn benchmark(id: QueryId) -> QuerySpec {
        QuerySpec { id }
    }

    /// The query's output name (`Q1` … `Q8`).
    pub fn name(&self) -> &'static str {
        self.id.name()
    }
}

impl From<QueryId> for QuerySpec {
    fn from(id: QueryId) -> QuerySpec {
        QuerySpec { id }
    }
}

/// A query engine deployed as one of the benchmark's systems.
///
/// Object-safe and `Send + Sync`: the query service keeps a
/// `Box<dyn QueryEngine>` per system and serves concurrent requests
/// through shared references.
pub trait QueryEngine: Send + Sync {
    /// Which deployed system this engine instance represents.
    fn system(&self) -> System;

    /// Executes a query under an execution environment, returning the
    /// shared run shape. When `env.trace` is enabled, the result's
    /// [`EngineRun::trace`] holds the query's span tree (rooted at a
    /// [`obs::Stage::Query`] span).
    fn execute(&self, query: &QuerySpec, env: &ExecEnv) -> Result<EngineRun, AdapterError>;
}

/// The SQL dialect profile a system deploys, when it is SQL-backed.
fn dialect_for(system: System) -> Option<Dialect> {
    match system {
        System::BigQuery | System::BigQueryExternal => Some(Dialect::bigquery()),
        System::AthenaV2 | System::AthenaV1 => Some(Dialect::athena()),
        System::Presto => Some(Dialect::presto()),
        _ => None,
    }
}

/// Opens the query-level root span, runs `body` under a child
/// environment, then drains the recorded spans into the run.
fn with_query_span(
    system: System,
    query: &QuerySpec,
    env: &ExecEnv,
    body: impl FnOnce(&ExecEnv) -> Result<EngineRun, AdapterError>,
) -> Result<EngineRun, AdapterError> {
    let root = env.trace.span_with(obs::Stage::Query, || {
        format!("{} on {}", query.name(), system.name())
    });
    let child_env = ExecEnv {
        trace: root.ctx(),
        ..env.clone()
    };
    let result = body(&child_env);
    root.finish();
    // Re-label with the deployed system's name (several systems share
    // one engine/dialect, and service logs must identify the
    // deployment), and attach the span tree on success. On failure the
    // spans stay in `env.trace` for the caller (e.g. the service retry
    // path) to drain alongside later attempts.
    match result {
        Ok(mut run) => {
            run.trace = env.trace.take_tree();
            Ok(run)
        }
        Err(mut e) => {
            e.system = system.name().to_string();
            Err(e)
        }
    }
}

/// The SQL engine deployed as a QaaS or self-managed SQL system
/// (BigQuery / BigQuery external / Athena v1+v2 / Presto).
pub struct SqlQueryEngine {
    system: System,
    dialect: Dialect,
    table: Arc<Table>,
    options: SqlOptions,
}

impl SqlQueryEngine {
    /// An engine for an SQL-backed system with default options.
    ///
    /// # Panics
    /// If `system` is not SQL-backed.
    pub fn new(system: System, table: Arc<Table>) -> SqlQueryEngine {
        SqlQueryEngine::with_options(system, table, SqlOptions::default())
    }

    /// [`SqlQueryEngine::new`] with explicit engine options.
    pub fn with_options(system: System, table: Arc<Table>, options: SqlOptions) -> SqlQueryEngine {
        let dialect = dialect_for(system)
            .unwrap_or_else(|| panic!("{} is not an SQL-backed system", system.name()));
        SqlQueryEngine {
            system,
            dialect,
            table,
            options,
        }
    }
}

impl QueryEngine for SqlQueryEngine {
    fn system(&self) -> System {
        self.system
    }

    fn execute(&self, query: &QuerySpec, env: &ExecEnv) -> Result<EngineRun, AdapterError> {
        with_query_span(self.system, query, env, |child| {
            adapters::run_sql_env(self.dialect, &self.table, query.id, self.options, child)
        })
    }
}

/// The FLWOR engine deployed as Rumble (JSONiq on Spark).
pub struct FlworQueryEngine {
    table: Arc<Table>,
    options: FlworOptions,
}

impl FlworQueryEngine {
    /// An engine with default options.
    pub fn new(table: Arc<Table>) -> FlworQueryEngine {
        FlworQueryEngine::with_options(table, FlworOptions::default())
    }

    /// [`FlworQueryEngine::new`] with explicit engine options.
    pub fn with_options(table: Arc<Table>, options: FlworOptions) -> FlworQueryEngine {
        FlworQueryEngine { table, options }
    }
}

impl QueryEngine for FlworQueryEngine {
    fn system(&self) -> System {
        System::Rumble
    }

    fn execute(&self, query: &QuerySpec, env: &ExecEnv) -> Result<EngineRun, AdapterError> {
        with_query_span(System::Rumble, query, env, |child| {
            adapters::run_jsoniq_env(&self.table, query.id, self.options, child)
        })
    }
}

/// The RDataFrame-style engine deployed as ROOT 6.22 or the fixed
/// development version.
pub struct RdfQueryEngine {
    system: System,
    table: Arc<Table>,
    options: engine_rdf::Options,
}

impl RdfQueryEngine {
    /// An engine for an RDataFrame system with default options.
    ///
    /// # Panics
    /// If `system` is not an RDataFrame deployment.
    pub fn new(system: System, table: Arc<Table>) -> RdfQueryEngine {
        RdfQueryEngine::with_options(system, table, engine_rdf::Options::default())
    }

    /// [`RdfQueryEngine::new`] with explicit engine options.
    pub fn with_options(
        system: System,
        table: Arc<Table>,
        options: engine_rdf::Options,
    ) -> RdfQueryEngine {
        assert!(
            matches!(system, System::RDataFrame | System::RDataFrameDev),
            "{} is not an RDataFrame deployment",
            system.name()
        );
        RdfQueryEngine {
            system,
            table,
            options,
        }
    }
}

impl QueryEngine for RdfQueryEngine {
    fn system(&self) -> System {
        self.system
    }

    fn execute(&self, query: &QuerySpec, env: &ExecEnv) -> Result<EngineRun, AdapterError> {
        with_query_span(self.system, query, env, |child| {
            adapters::run_rdf_env(&self.table, query.id, self.options, child)
        })
    }
}

/// The engine deployment behind a [`System`], over one registered
/// table — the single construction point the runner and the query
/// service share.
///
/// The deployments modeled here are the paper's studied systems, all of
/// which interpret their queries — the cost model behind Table 1 and
/// the figures is calibrated against interpreted CPU profiles, so these
/// engines pin `compile: false`, and — for the same reason — pin
/// `parallel_workers: 0`: the morsel-parallel executor only applies to
/// compiled plans, but pinning it explicitly keeps the paper simulation
/// byte-identical even if the option's default ever changes. The
/// workspace's own compiled IR path (default-on for direct engine use,
/// e.g. the golden tests and the bench harness's `compiled` section) is
/// opted into via the `with_options` constructors.
pub fn engine_for(system: System, table: Arc<Table>) -> Box<dyn QueryEngine> {
    match system {
        System::BigQuery
        | System::BigQueryExternal
        | System::AthenaV2
        | System::AthenaV1
        | System::Presto => Box::new(SqlQueryEngine::with_options(
            system,
            table,
            SqlOptions {
                compile: false,
                parallel_workers: 0,
                ..SqlOptions::default()
            },
        )),
        System::Rumble => Box::new(FlworQueryEngine::with_options(
            table,
            FlworOptions {
                compile: false,
                parallel_workers: 0,
                ..FlworOptions::default()
            },
        )),
        System::RDataFrame | System::RDataFrameDev => Box::new(RdfQueryEngine::with_options(
            system,
            table,
            engine_rdf::Options {
                compile: false,
                parallel_workers: 0,
                ..engine_rdf::Options::default()
            },
        )),
    }
}

/// The compiled-execution deployment of a system: the same engine and
/// dialect as [`engine_for`], but with the physical-IR compile path on
/// (`compile: true`). Queries the frontends cannot lower fall back to
/// interpretation, so results stay byte-identical to the interpreted
/// path (the PR 6 fuzz gate). `parallel_workers` stays pinned at 0 —
/// the serving layer threads a per-request override through
/// [`ExecEnv::parallel_workers`], which the adapters apply on top of
/// the engine options. The paper simulation never uses these
/// deployments; they exist for the serving layer's opt-in
/// compiled/parallel request paths.
pub fn engine_for_compiled(system: System, table: Arc<Table>) -> Box<dyn QueryEngine> {
    match system {
        System::BigQuery
        | System::BigQueryExternal
        | System::AthenaV2
        | System::AthenaV1
        | System::Presto => Box::new(SqlQueryEngine::with_options(
            system,
            table,
            SqlOptions {
                compile: true,
                parallel_workers: 0,
                ..SqlOptions::default()
            },
        )),
        System::Rumble => Box::new(FlworQueryEngine::with_options(
            table,
            FlworOptions {
                compile: true,
                parallel_workers: 0,
                ..FlworOptions::default()
            },
        )),
        System::RDataFrame | System::RDataFrameDev => Box::new(RdfQueryEngine::with_options(
            system,
            table,
            engine_rdf::Options {
                compile: true,
                parallel_workers: 0,
                ..engine_rdf::Options::default()
            },
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ALL_SYSTEMS;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;

    fn table() -> Arc<Table> {
        Arc::new(
            build_dataset(DatasetSpec {
                n_events: 1_000,
                row_group_size: 256,
                seed: 3,
            })
            .1,
        )
    }

    #[test]
    fn dyn_engines_agree_through_one_object_type() {
        let t = table();
        // Object use: heterogeneous engines behind one vtable, driven
        // uniformly.
        let engines: Vec<Box<dyn QueryEngine>> = ALL_SYSTEMS
            .iter()
            .map(|s| engine_for(*s, t.clone()))
            .collect();
        let env = ExecEnv::seed();
        let spec = QuerySpec::benchmark(QueryId::Q1);
        let mut totals = Vec::new();
        for e in &engines {
            let run = e.execute(&spec, &env).unwrap();
            totals.push((e.system().name(), run.histogram.total()));
        }
        assert_eq!(totals.len(), ALL_SYSTEMS.len());
        for (name, total) in &totals {
            assert_eq!(*total, 1_000, "{name} disagrees on Q1 totals");
        }
    }

    #[test]
    fn trait_is_dyn_safe_and_boxable() {
        // Compile-time dyn-safety check plus a trait-object call.
        fn takes_dyn(e: &dyn QueryEngine) -> System {
            e.system()
        }
        let t = table();
        let boxed: Box<dyn QueryEngine> = Box::new(FlworQueryEngine::new(t));
        assert_eq!(takes_dyn(boxed.as_ref()), System::Rumble);
    }

    #[test]
    fn compiled_deployments_match_interpreted_results() {
        let t = table();
        // Q6a lowers to the specialized trijet kernel on every capable
        // frontend; Q5 exercises the fall-back-to-interpreter path on
        // engines that cannot lower it. Both must match the interpreted
        // deployment bin for bin.
        for q in [QueryId::Q5, QueryId::Q6a] {
            let spec = QuerySpec::benchmark(q);
            for &system in ALL_SYSTEMS {
                let interp = engine_for(system, t.clone())
                    .execute(&spec, &ExecEnv::seed())
                    .unwrap();
                let compiled = engine_for_compiled(system, t.clone())
                    .execute(&spec, &ExecEnv::seed())
                    .unwrap();
                assert_eq!(
                    interp.histogram,
                    compiled.histogram,
                    "{} {}: compiled deployment diverges",
                    system.name(),
                    q.name()
                );
            }
        }
    }

    #[test]
    fn expired_deadline_stops_every_engine_within_one_row_group() {
        // Acceptance pin: a query whose deadline expired before it
        // started (rows_at_deadline = 0) must surface a typed
        // cancellation with rows_processed ≤ one row group, on every
        // engine.
        let row_group = 256u64;
        let t = table();
        let spec = QuerySpec::benchmark(QueryId::Q1);
        for system in ALL_SYSTEMS {
            let engine = engine_for(*system, t.clone());
            let env = ExecEnv {
                cancel: obs::CancelToken::with_deadline(
                    std::time::Instant::now() - std::time::Duration::from_millis(1),
                ),
                ..ExecEnv::seed()
            };
            let err = match engine.execute(&spec, &env) {
                Err(e) => e,
                Ok(_) => panic!("{}: ran to completion past deadline", system.name()),
            };
            let c = err
                .cancelled
                .as_deref()
                .unwrap_or_else(|| panic!("{}: expected typed cancellation", system.name()));
            assert_eq!(c.reason, obs::CancelReason::DeadlineExceeded);
            assert!(
                c.rows_processed <= row_group,
                "{}: {} rows processed past an expired deadline",
                system.name(),
                c.rows_processed
            );
            assert!(!err.retryable(), "{}: cancellation retried", system.name());
        }
    }

    #[test]
    fn explicit_cancel_stops_every_engine() {
        let t = table();
        let spec = QuerySpec::benchmark(QueryId::Q1);
        for system in ALL_SYSTEMS {
            let engine = engine_for(*system, t.clone());
            let token = obs::CancelToken::new();
            token.cancel();
            let env = ExecEnv {
                cancel: token,
                ..ExecEnv::seed()
            };
            let err = match engine.execute(&spec, &env) {
                Err(e) => e,
                Ok(_) => panic!("{}: ran to completion despite cancel", system.name()),
            };
            let c = err
                .cancelled
                .as_deref()
                .unwrap_or_else(|| panic!("{}: expected typed cancellation", system.name()));
            assert_eq!(c.reason, obs::CancelReason::Explicit);
        }
    }

    #[test]
    fn traced_execute_yields_span_tree() {
        let t = table();
        let engine = SqlQueryEngine::new(System::Presto, t);
        let env = ExecEnv {
            trace: obs::TraceCtx::enabled(),
            intra_query_threads: Some(1),
            ..ExecEnv::seed()
        };
        let run = engine
            .execute(&QuerySpec::benchmark(QueryId::Q1), &env)
            .unwrap();
        assert_eq!(run.trace.roots.len(), 1);
        let root = &run.trace.roots[0];
        assert_eq!(root.span.stage, obs::Stage::Query);
        assert!(root.span.label.contains("Q1"));
        let stages: Vec<obs::Stage> = run.trace.flatten().iter().map(|s| s.stage).collect();
        assert!(stages.contains(&obs::Stage::Parse));
        assert!(stages.contains(&obs::Stage::Plan));
        assert!(stages.contains(&obs::Stage::Scan));
        assert!(stages.contains(&obs::Stage::Aggregate));
        // Disabled env yields an empty tree.
        let untraced = engine
            .execute(&QuerySpec::benchmark(QueryId::Q1), &ExecEnv::seed())
            .unwrap();
        assert!(untraced.trace.is_empty());
    }
}
