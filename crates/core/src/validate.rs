//! Cross-engine result validation.
//!
//! Because the query texts replicate the reference kernels' float paths
//! exactly, validation demands **bin-for-bin equality** against the
//! reference for every engine and dialect. A rich diff is produced on
//! mismatch so divergence is debuggable.

use std::sync::Arc;

use engine_sql::Dialect;
use nf2_columnar::Table;
use physics::Histogram;

use crate::adapters::{self, ExecEnv};
use crate::reference;
use crate::spec::QueryId;

/// One engine's validation outcome for one query.
#[derive(Debug)]
pub struct Validation {
    /// Engine/dialect label.
    pub system: &'static str,
    /// Query output.
    pub query: &'static str,
    /// Exact bin-for-bin match?
    pub exact: bool,
    /// Total-entries difference (signed).
    pub total_delta: i64,
    /// Largest per-bin absolute difference.
    pub max_bin_delta: u64,
}

/// Compares a histogram against the reference.
pub fn diff(system: &'static str, q: QueryId, got: &Histogram, expect: &Histogram) -> Validation {
    let exact = got.counts_equal(expect);
    let max_bin_delta = got
        .counts()
        .iter()
        .zip(expect.counts().iter())
        .map(|(a, b)| a.abs_diff(*b))
        .chain([
            got.underflow().abs_diff(expect.underflow()),
            got.overflow().abs_diff(expect.overflow()),
        ])
        .max()
        .unwrap_or(0);
    Validation {
        system,
        query: q.name(),
        exact,
        total_delta: got.total() as i64 - expect.total() as i64,
        max_bin_delta,
    }
}

/// Runs one query on every engine and validates against the reference.
/// Returns one entry per system.
pub fn validate_query(
    q: QueryId,
    events: &[hep_model::Event],
    table: &Arc<Table>,
) -> Result<Vec<Validation>, adapters::AdapterError> {
    let expect = reference::run(q, events).hist;
    let env = ExecEnv::seed();
    let mut out = Vec::new();
    for (label, dialect) in [
        ("BigQuery", Dialect::bigquery()),
        ("Presto", Dialect::presto()),
        ("Athena", Dialect::athena()),
    ] {
        let run =
            adapters::run_sql_env(dialect, table, q, engine_sql::SqlOptions::default(), &env)?;
        out.push(diff(label, q, &run.histogram, &expect));
    }
    let run = adapters::run_jsoniq_env(table, q, engine_flwor::FlworOptions::default(), &env)?;
    out.push(diff("JSONiq", q, &run.histogram, &expect));
    let run = adapters::run_rdf_env(table, q, engine_rdf::Options::default(), &env)?;
    out.push(diff("RDataFrame", q, &run.histogram, &expect));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ALL_QUERIES;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;

    /// The headline correctness property of the whole workspace: five
    /// independent implementations of each query produce identical
    /// histograms.
    #[test]
    fn all_engines_agree_with_reference() {
        let (events, table) = build_dataset(DatasetSpec {
            n_events: 2_000,
            row_group_size: 512,
            seed: 1234,
        });
        let table = Arc::new(table);
        let mut failures = Vec::new();
        for q in ALL_QUERIES {
            for v in validate_query(*q, &events, &table).unwrap() {
                if !v.exact {
                    failures.push(format!(
                        "{} {}: total Δ {}, max bin Δ {}",
                        v.system, v.query, v.total_delta, v.max_bin_delta
                    ));
                }
            }
        }
        assert!(failures.is_empty(), "mismatches:\n{}", failures.join("\n"));
    }
}
