//! # hepbench-core
//!
//! The ADL (Analysis Description Languages) benchmark — the paper's
//! workload — implemented end to end:
//!
//! * [`spec`] — the eight benchmark queries (Q1–Q8, with Q6's two plots as
//!   `Q6a`/`Q6b`), their physics definitions and histogram specifications;
//! * [`mod@reference`] — ground-truth Rust implementations over the in-memory
//!   event model, instrumented with the Table-2 "ops/event" counters;
//! * [`queries`] — the query *texts* for every system under test: three
//!   SQL dialects (BigQuery / Presto / Athena profiles of `engine-sql`),
//!   JSONiq (for `engine-flwor`), and RDataFrame C++ (counted for Table 1;
//!   executed via the equivalent `engine-rdf` programs in
//!   [`rdf_programs`]);
//! * [`adapters`] — uniform execution of any query on any engine, with
//!   histogram extraction and [`nf2_columnar::ExecStats`] collection;
//! * [`engine_api`] — the unified [`engine_api::QueryEngine`] trait every
//!   engine implements, with per-query span trees from [`obs`];
//! * [`validate`] — cross-engine result validation against the reference;
//! * [`fuzzplan`] — seeded random query plans with an interpreter oracle,
//!   lowering to every system under test (differential fuzzing);
//! * [`metrics`] — the Table-1 conciseness metrics (characters, lines,
//!   clauses, unique clauses) computed from the embedded query texts;
//! * [`complexity`] — Table-2 analytic formulas and empirical measurement;
//! * [`capabilities`] — the Table-1 functionality matrix as data;
//! * [`runner`] — the benchmark orchestrator behind Figures 1, 2 and 4.

pub mod adapters;
pub mod capabilities;
pub mod complexity;
pub mod engine_api;
pub mod fuzzplan;
pub mod metrics;
pub mod queries;
pub mod rdf_programs;
pub mod reference;
pub mod runner;
pub mod spec;
pub mod validate;

pub use spec::{QueryId, ALL_QUERIES};
