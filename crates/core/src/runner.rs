//! Benchmark orchestration: one measured execution per (system, query),
//! mapped through the cloud simulator onto the paper's deployment space.
//!
//! For every system we **really execute** the corresponding engine on the
//! columnar data (the work and I/O are measured, and the result histogram
//! is validated), then derive:
//!
//! * QaaS wall time via [`cloud_sim::QaasProfile`] (startup floor + slot
//!   pool), and cost via the BigQuery/Athena pricing models;
//! * self-managed wall time via [`cloud_sim::SelfManagedProfile`]'s USL
//!   scaling on the chosen `m5d` instance, and cost as wall × $/s.

use std::sync::Arc;

use cloud_sim::{InstanceType, QaasProfile, SelfManagedProfile};
use nf2_columnar::{ScanStats, Table};

use crate::adapters::{AdapterError, EngineRun, ExecEnv};
use crate::engine_api::{engine_for, QuerySpec};
use crate::spec::QueryId;

/// The systems under test (Figure 1's legend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum System {
    /// BigQuery with pre-loaded tables.
    BigQuery,
    /// BigQuery over external (federated) tables.
    BigQueryExternal,
    /// Amazon Athena v2.
    AthenaV2,
    /// Amazon Athena v1 (slower executor; not priced in the paper).
    AthenaV1,
    /// PrestoDB, self-managed.
    Presto,
    /// Rumble (JSONiq on Spark), self-managed.
    Rumble,
    /// ROOT 6.22 RDataFrame, self-managed.
    RDataFrame,
    /// RDataFrame with the contention fix (development version).
    RDataFrameDev,
}

/// All systems in display order.
pub const ALL_SYSTEMS: &[System] = &[
    System::BigQuery,
    System::BigQueryExternal,
    System::AthenaV2,
    System::AthenaV1,
    System::Presto,
    System::Rumble,
    System::RDataFrame,
    System::RDataFrameDev,
];

impl System {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::BigQuery => "BigQuery",
            System::BigQueryExternal => "BigQuery (external)",
            System::AthenaV2 => "Athena v2",
            System::AthenaV1 => "Athena v1",
            System::Presto => "Presto",
            System::Rumble => "Rumble",
            System::RDataFrame => "RDataFrame",
            System::RDataFrameDev => "RDataFrame (dev)",
        }
    }

    /// Is this a Query-as-a-Service system (no instance choice)?
    pub fn is_qaas(&self) -> bool {
        matches!(
            self,
            System::BigQuery | System::BigQueryExternal | System::AthenaV2 | System::AthenaV1
        )
    }
}

/// One data point of Figure 1/2.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// System name.
    pub system: &'static str,
    /// Query output name.
    pub query: &'static str,
    /// Instance name for self-managed systems.
    pub instance: Option<&'static str>,
    /// Simulated end-to-end wall seconds.
    pub wall_seconds: f64,
    /// Query cost in USD.
    pub cost_usd: f64,
    /// Locally measured CPU seconds (Figure 4a).
    pub cpu_seconds: f64,
    /// Scan accounting (Figure 4b).
    pub scan: ScanStats,
    /// Total histogram entries (for sanity checks).
    pub hist_entries: u64,
    /// Per-stage exclusive CPU seconds from the run's span tree
    /// (stage name → seconds, descending). Empty unless the execution
    /// environment enabled tracing.
    pub stage_seconds: Vec<(&'static str, f64)>,
}

impl Measurement {
    /// Scan throughput per core in MB/s (Figure 4c): bytes scanned divided
    /// by total CPU time.
    pub fn throughput_mb_per_core_second(&self) -> f64 {
        if self.cpu_seconds <= 0.0 {
            return 0.0;
        }
        self.scan.bytes_scanned as f64 / 1e6 / self.cpu_seconds
    }
}

/// Executes the engine behind a system under an execution environment —
/// the primitive the query service serves requests through, and the one
/// every `run_*` orchestration below delegates to. Failures carry the
/// system name and query id, so a concurrent server's error log
/// identifies the failing request without extra context.
pub fn execute_engine(
    system: System,
    table: &Arc<Table>,
    q: QueryId,
    env: &ExecEnv,
) -> Result<EngineRun, AdapterError> {
    engine_for(system, table.clone()).execute(&QuerySpec::benchmark(q), env)
}

fn qaas_profile(system: System) -> QaasProfile {
    match system {
        System::BigQuery => QaasProfile::bigquery(),
        System::BigQueryExternal => QaasProfile::bigquery_external(),
        System::AthenaV2 => QaasProfile::athena(),
        System::AthenaV1 => QaasProfile::athena_v1(),
        _ => unreachable!("not QaaS"),
    }
}

fn self_managed_profile(system: System) -> SelfManagedProfile {
    match system {
        System::Presto => SelfManagedProfile::presto(),
        System::Rumble => SelfManagedProfile::rumble(),
        System::RDataFrame => SelfManagedProfile::rdataframe_v622(),
        System::RDataFrameDev => SelfManagedProfile::rdataframe_dev(),
        _ => unreachable!("not self-managed"),
    }
}

/// Runs one (system, query) on the data set under an execution
/// environment. `instance` is required for self-managed systems and
/// ignored for QaaS. With `env.trace` enabled, the measurement's
/// [`Measurement::stage_seconds`] carries the per-stage breakdown.
pub fn run_one(
    system: System,
    instance: Option<&'static InstanceType>,
    table: &Arc<Table>,
    q: QueryId,
    env: &ExecEnv,
) -> Result<Measurement, AdapterError> {
    let run = execute_engine(system, table, q, env)?;
    let row_groups = table.row_groups().len();
    let cpu = run.stats.cpu_seconds;
    let (wall, cost, iname) = if system.is_qaas() {
        let profile = qaas_profile(system);
        let wall = profile.wall_seconds(cpu, row_groups);
        let cost = match system {
            System::BigQuery | System::BigQueryExternal => {
                cloud_sim::bigquery_cost_usd(&run.stats.scan)
            }
            _ => cloud_sim::athena_cost_usd(&run.stats.scan),
        };
        (wall, cost, None)
    } else {
        let inst = instance.expect("self-managed systems need an instance");
        let profile = self_managed_profile(system);
        let wall = profile.wall_seconds(cpu, inst, row_groups);
        let cost = cloud_sim::self_managed_cost_usd(wall, inst);
        (wall, cost, Some(inst.name))
    };
    Ok(Measurement {
        system: system.name(),
        query: q.name(),
        instance: iname,
        wall_seconds: wall,
        cost_usd: cost,
        cpu_seconds: cpu,
        scan: run.stats.scan,
        hist_entries: run.histogram.total(),
        stage_seconds: run
            .trace
            .stage_seconds()
            .into_iter()
            .map(|(s, secs)| (s.name(), secs))
            .collect(),
    })
}

/// Scales a measurement from the local data-set size to the paper's full
/// 53.4 M events (work and bytes scale linearly; the startup floors do
/// not, so only the work term is scaled).
pub fn scale_to_paper(m: &Measurement, factor: f64) -> Measurement {
    let mut scaled = m.clone();
    scaled.cpu_seconds *= factor;
    scaled.wall_seconds *= factor; // conservative: floors also scaled
    scaled.cost_usd *= factor;
    scaled.scan.bytes_scanned = (m.scan.bytes_scanned as f64 * factor) as u64;
    scaled.scan.logical_bytes = (m.scan.logical_bytes as f64 * factor) as u64;
    for (_, secs) in &mut scaled.stage_seconds {
        *secs *= factor;
    }
    scaled
}

/// Runs a self-managed system once and maps the measured work across the
/// whole `m5d` instance sweep (the measured CPU work and scan do not
/// depend on the simulated instance, so one execution suffices for the
/// Figure 1 sweep).
pub fn run_sweep(
    system: System,
    table: &Arc<Table>,
    q: QueryId,
    env: &ExecEnv,
) -> Result<Vec<Measurement>, AdapterError> {
    assert!(!system.is_qaas(), "QaaS systems have no instance sweep");
    let run = execute_engine(system, table, q, env)?;
    let row_groups = table.row_groups().len();
    let profile = self_managed_profile(system);
    let stage_seconds: Vec<(&'static str, f64)> = run
        .trace
        .stage_seconds()
        .into_iter()
        .map(|(s, secs)| (s.name(), secs))
        .collect();
    Ok(cloud_sim::M5D_CATALOG
        .iter()
        .map(|inst| {
            let wall = profile.wall_seconds(run.stats.cpu_seconds, inst, row_groups);
            Measurement {
                system: system.name(),
                query: q.name(),
                instance: Some(inst.name),
                wall_seconds: wall,
                cost_usd: cloud_sim::self_managed_cost_usd(wall, inst),
                cpu_seconds: run.stats.cpu_seconds,
                scan: run.stats.scan,
                hist_entries: run.histogram.total(),
                stage_seconds: stage_seconds.clone(),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;

    fn table() -> Arc<Table> {
        Arc::new(
            build_dataset(DatasetSpec {
                n_events: 2_000,
                row_group_size: 256,
                seed: 7,
            })
            .1,
        )
    }

    #[test]
    fn qaas_measurements() {
        let t = table();
        let m = run_one(System::BigQuery, None, &t, QueryId::Q1, &ExecEnv::seed()).unwrap();
        assert!(m.wall_seconds >= 1.5);
        assert!(m.cost_usd > 0.0);
        assert_eq!(m.hist_entries, 2_000);
        assert!(m.instance.is_none());
        // Athena pays for the whole MET struct on Q1; BigQuery for one
        // logical column — but BigQuery's min-billing floor dominates at
        // this tiny scale, so compare the raw scan accounting instead.
        let a = run_one(System::AthenaV2, None, &t, QueryId::Q1, &ExecEnv::seed()).unwrap();
        assert!(a.scan.bytes_scanned > m.scan.bytes_scanned);
    }

    #[test]
    fn self_managed_measurements() {
        let t = table();
        let inst = cloud_sim::instances::by_name("m5d.4xlarge").unwrap();
        let m = run_one(
            System::RDataFrame,
            Some(inst),
            &t,
            QueryId::Q1,
            &ExecEnv::seed(),
        )
        .unwrap();
        assert_eq!(m.instance, Some("m5d.4xlarge"));
        assert!(m.wall_seconds > 0.0);
        assert!(m.cost_usd > 0.0);
        let p = run_one(
            System::Presto,
            Some(inst),
            &t,
            QueryId::Q1,
            &ExecEnv::seed(),
        )
        .unwrap();
        assert_eq!(p.hist_entries, m.hist_entries);
    }

    #[test]
    fn rdataframe_retrogrades_on_large_instances() {
        let t = table();
        let big = cloud_sim::instances::by_name("m5d.24xlarge").unwrap();
        let mid = cloud_sim::instances::by_name("m5d.8xlarge").unwrap();
        // Fix the measured CPU by running once, then compare the model's
        // instance mapping for a compute-heavy query.
        let m_mid = run_one(
            System::RDataFrame,
            Some(mid),
            &t,
            QueryId::Q6a,
            &ExecEnv::seed(),
        )
        .unwrap();
        let m_big = run_one(
            System::RDataFrame,
            Some(big),
            &t,
            QueryId::Q6a,
            &ExecEnv::seed(),
        )
        .unwrap();
        // CPU measurement noise exists; compare the modeled *ratio* using
        // the same cpu for both.
        let prof = SelfManagedProfile::rdataframe_v622();
        let w_mid = prof.wall_seconds(m_mid.cpu_seconds.max(1e-3), mid, 8);
        let w_big = prof.wall_seconds(m_mid.cpu_seconds.max(1e-3), big, 8);
        // With only 8 row groups parallelism is capped — equal times.
        assert!((w_mid - w_big).abs() < 1e-9);
        let w_mid_many = prof.wall_seconds(100.0, mid, 10_000);
        let w_big_many = prof.wall_seconds(100.0, big, 10_000);
        assert!(w_big_many > w_mid_many, "no retrograde region");
        let _ = m_big;
    }

    #[test]
    fn scaling_helper() {
        let t = table();
        let m = run_one(System::BigQuery, None, &t, QueryId::Q1, &ExecEnv::seed()).unwrap();
        let s = scale_to_paper(&m, 10.0);
        assert!((s.cpu_seconds / m.cpu_seconds - 10.0).abs() < 1e-9);
        assert!(s.scan.bytes_scanned >= 9 * m.scan.bytes_scanned);
    }
}
