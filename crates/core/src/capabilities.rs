//! The Table-1 functionality matrix as data.
//!
//! Star ratings follow the paper (0–3 stars; `None` = unsupported). Where
//! a rating concerns our *executable* dialect profiles, a consistency test
//! asserts the matrix agrees with `engine-sql`'s capability enforcement.

use crate::queries::Language;

/// One functional requirement from §3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Requirement {
    /// R1.1 unnesting arrays.
    UnnestArrays,
    /// R1.2 asymmetric combinations.
    AsymCombinations,
    /// R1.3 symmetric combinations.
    SymCombinations,
    /// R1.4 user-defined functions.
    Udfs,
    /// R2.1 structured data types.
    StructuredTypes,
    /// R2.2 nested sub-queries.
    NestedSubqueries,
    /// R2.3 variables.
    Variables,
    /// R2.4 group by variable/alias.
    GroupByVariable,
    /// R2.5 struct parameters in UDFs.
    StructParamsInUdfs,
    /// R2.6 tables in UDFs.
    TablesInUdfs,
    /// R3.1 inline struct types.
    InlineStructTypes,
    /// R3.2 anonymous structs.
    AnonymousStructs,
    /// R3.3 array functions.
    ArrayFunctions,
    /// R3.4 array construction.
    ArrayConstruction,
    /// R3.5 unnesting whole structs.
    UnnestWholeStructs,
}

/// All requirements in Table-1 order.
pub const ALL_REQUIREMENTS: &[Requirement] = &[
    Requirement::UnnestArrays,
    Requirement::AsymCombinations,
    Requirement::SymCombinations,
    Requirement::Udfs,
    Requirement::StructuredTypes,
    Requirement::NestedSubqueries,
    Requirement::Variables,
    Requirement::GroupByVariable,
    Requirement::StructParamsInUdfs,
    Requirement::TablesInUdfs,
    Requirement::InlineStructTypes,
    Requirement::AnonymousStructs,
    Requirement::ArrayFunctions,
    Requirement::ArrayConstruction,
    Requirement::UnnestWholeStructs,
];

impl Requirement {
    /// Table-1 row label.
    pub fn label(&self) -> &'static str {
        match self {
            Requirement::UnnestArrays => "(R1.1) unnest arrays",
            Requirement::AsymCombinations => "(R1.2) asym. combination",
            Requirement::SymCombinations => "(R1.3) sym. combination",
            Requirement::Udfs => "(R1.4) UDFs",
            Requirement::StructuredTypes => "(R2.1) structured types",
            Requirement::NestedSubqueries => "(R2.2) nested sub-query",
            Requirement::Variables => "(R2.3) variables",
            Requirement::GroupByVariable => "(R2.4) group by variable",
            Requirement::StructParamsInUdfs => "(R2.5) struct params in UDFs",
            Requirement::TablesInUdfs => "(R2.6) tables in UDFs",
            Requirement::InlineStructTypes => "(R3.1) inline struct types",
            Requirement::AnonymousStructs => "(R3.2) anonymous structs",
            Requirement::ArrayFunctions => "(R3.3) array functions",
            Requirement::ArrayConstruction => "(R3.4) array construction",
            Requirement::UnnestWholeStructs => "(R3.5) unnest whole structs",
        }
    }
}

/// Star rating for `(language, requirement)` — `None` is the paper's dash.
pub fn stars(lang: Language, req: Requirement) -> Option<u8> {
    use Language::*;
    use Requirement::*;
    let v = match (lang, req) {
        (Athena, UnnestArrays) => 2,
        (BigQuery, UnnestArrays) => 2,
        (Presto, UnnestArrays) => 1,
        (Jsoniq, UnnestArrays) => 3,
        (RDataFrame, UnnestArrays) => 2,

        (Athena, AsymCombinations) | (BigQuery, AsymCombinations) => 3,
        (Presto, AsymCombinations) => 2,
        (Jsoniq, AsymCombinations) => 3,
        (RDataFrame, AsymCombinations) => 2,

        (Athena, SymCombinations) | (BigQuery, SymCombinations) => 3,
        (Presto, SymCombinations) => 2,
        (Jsoniq, SymCombinations) => 3,
        (RDataFrame, SymCombinations) => 2,

        (Athena, Udfs) => return None,
        (BigQuery, Udfs) => 2,
        (Presto, Udfs) => 2, // parenthesized in the paper: experimental
        (Jsoniq, Udfs) => 3,
        (RDataFrame, Udfs) => 3,

        (Athena, StructuredTypes) | (Presto, StructuredTypes) => 2,
        (BigQuery, StructuredTypes) => 3,
        (Jsoniq, StructuredTypes) => 3,
        (RDataFrame, StructuredTypes) => return None,

        (BigQuery, NestedSubqueries) => 3,
        (Jsoniq, NestedSubqueries) => 3,
        (RDataFrame, NestedSubqueries) => 3,
        (_, NestedSubqueries) => return None,

        (Jsoniq, Variables) | (RDataFrame, Variables) => 3,
        (_, Variables) => return None,

        (BigQuery, GroupByVariable) => 3,
        (Jsoniq, GroupByVariable) => 3,
        (RDataFrame, GroupByVariable) => 3,
        (_, GroupByVariable) => return None,

        (Athena, StructParamsInUdfs)
        | (BigQuery, StructParamsInUdfs)
        | (Presto, StructParamsInUdfs) => 1,
        (Jsoniq, StructParamsInUdfs) => 3,
        (RDataFrame, StructParamsInUdfs) => 3,

        (Jsoniq, TablesInUdfs) | (RDataFrame, TablesInUdfs) => 3,
        (_, TablesInUdfs) => return None,

        (BigQuery, InlineStructTypes) => 3,
        (Jsoniq, InlineStructTypes) => 3,
        (_, InlineStructTypes) => return None,

        (Athena, AnonymousStructs) => 2,
        (BigQuery, AnonymousStructs) => 3,
        (Presto, AnonymousStructs) => 3,
        (Jsoniq, AnonymousStructs) => return None,
        (RDataFrame, AnonymousStructs) => 3,

        (Athena, ArrayFunctions) | (BigQuery, ArrayFunctions) => 2,
        (Presto, ArrayFunctions) => 3,
        (Jsoniq, ArrayFunctions) => 2,
        (RDataFrame, ArrayFunctions) => 3,

        (BigQuery, ArrayConstruction) => 2,
        (Jsoniq, ArrayConstruction) => 3,
        (RDataFrame, ArrayConstruction) => 3,
        (_, ArrayConstruction) => return None,

        (Athena, UnnestWholeStructs) | (BigQuery, UnnestWholeStructs) => 3,
        (Jsoniq, UnnestWholeStructs) => 3,
        (_, UnnestWholeStructs) => return None,
    };
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_sql::{Dialect, UdfSupport};

    #[test]
    fn matrix_is_total() {
        for lang in crate::queries::ALL_LANGUAGES {
            let rated = ALL_REQUIREMENTS
                .iter()
                .filter(|r| stars(*lang, **r).is_some())
                .count();
            assert!(rated >= 6, "{lang:?} has too few ratings");
        }
    }

    #[test]
    fn matrix_agrees_with_dialect_enforcement() {
        // UDFs.
        assert_eq!(stars(Language::Athena, Requirement::Udfs), None);
        assert_eq!(Dialect::athena().udf_support, UdfSupport::None);
        assert!(stars(Language::Presto, Requirement::Udfs).is_some());
        assert_eq!(Dialect::presto().udf_support, UdfSupport::NoNestedCalls);
        assert_eq!(Dialect::bigquery().udf_support, UdfSupport::Full);
        // Nested subqueries.
        assert!(stars(Language::BigQuery, Requirement::NestedSubqueries).is_some());
        assert!(Dialect::bigquery().nested_subqueries);
        assert!(stars(Language::Presto, Requirement::NestedSubqueries).is_none());
        assert!(!Dialect::presto().nested_subqueries);
        // Group by alias.
        assert!(stars(Language::BigQuery, Requirement::GroupByVariable).is_some());
        assert!(Dialect::bigquery().group_by_alias);
        assert!(!Dialect::athena().group_by_alias);
        // Whole-struct unnest.
        assert!(stars(Language::Presto, Requirement::UnnestWholeStructs).is_none());
        assert!(!Dialect::presto().unnest_struct_alias);
        assert!(Dialect::athena().unnest_struct_alias);
        // Inline struct types.
        assert!(stars(Language::BigQuery, Requirement::InlineStructTypes).is_some());
        assert!(Dialect::bigquery().struct_ctor);
        assert!(!Dialect::presto().struct_ctor);
    }
}
