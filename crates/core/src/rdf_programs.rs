//! Runnable `engine-rdf` programs equivalent to the RDataFrame C++ texts.
//!
//! The programs use the same flat column names (`Jet_pt`, `MET_phi`, …)
//! and call the exact reference kernels of [`crate::reference`], so their
//! histograms are bit-identical to the ground truth by construction —
//! which is precisely how RDataFrame relates to hand-written event loops.

use std::sync::Arc;

use engine_rdf::{ColValue, EventView, Options, RDataFrame};
use hep_model::{Electron, Jet, Muon};
use nf2_columnar::Table;

use crate::reference;
use crate::spec::QueryId;

/// Jet dependency columns.
const JET_COLS: &[&str] = &["Jet_pt", "Jet_eta", "Jet_phi", "Jet_mass", "Jet_btag"];
/// Muon dependency columns.
const MUON_COLS: &[&str] = &[
    "Muon_pt",
    "Muon_eta",
    "Muon_phi",
    "Muon_mass",
    "Muon_charge",
];
/// Electron dependency columns.
const ELECTRON_COLS: &[&str] = &[
    "Electron_pt",
    "Electron_eta",
    "Electron_phi",
    "Electron_mass",
    "Electron_charge",
];

fn jets_of(v: &EventView) -> Vec<Jet> {
    let pt = v.arr("Jet_pt");
    let eta = v.arr("Jet_eta");
    let phi = v.arr("Jet_phi");
    let mass = v.arr("Jet_mass");
    let btag = v.arr("Jet_btag");
    (0..pt.len())
        .map(|i| Jet {
            pt: pt[i],
            eta: eta[i],
            phi: phi[i],
            mass: mass[i],
            btag: btag[i],
            pu_id: false,
        })
        .collect()
}

fn muons_of(v: &EventView) -> Vec<Muon> {
    let pt = v.arr("Muon_pt");
    let eta = v.arr("Muon_eta");
    let phi = v.arr("Muon_phi");
    let mass = v.arr("Muon_mass");
    let charge = v.arr("Muon_charge");
    (0..pt.len())
        .map(|i| Muon {
            pt: pt[i],
            eta: eta[i],
            phi: phi[i],
            mass: mass[i],
            charge: charge[i] as i32,
            ..Muon::default()
        })
        .collect()
}

fn electrons_of(v: &EventView) -> Vec<Electron> {
    let pt = v.arr("Electron_pt");
    let eta = v.arr("Electron_eta");
    let phi = v.arr("Electron_phi");
    let mass = v.arr("Electron_mass");
    let charge = v.arr("Electron_charge");
    (0..pt.len())
        .map(|i| Electron {
            pt: pt[i],
            eta: eta[i],
            phi: phi[i],
            mass: mass[i],
            charge: charge[i] as i32,
            ..Electron::default()
        })
        .collect()
}

/// Builds the dataframe program for one query output. The returned frame
/// has exactly one booking; run it with `run_all()`.
pub fn build(q: QueryId, table: Arc<Table>, options: Options) -> RDataFrame {
    let df = RDataFrame::new(table, options);
    let spec = q.hist_spec();
    match q {
        QueryId::Q1 => df.also_histo1d(spec, "MET_pt"),
        QueryId::Q2 => df.also_histo1d(spec, "Jet_pt"),
        QueryId::Q3 => df
            .define("goodJet_pt", &["Jet_pt", "Jet_eta"], |v| {
                let pt = v.arr("Jet_pt");
                let eta = v.arr("Jet_eta");
                ColValue::Arr(
                    (0..pt.len())
                        .filter(|&i| eta[i].abs() < 1.0)
                        .map(|i| pt[i])
                        .collect(),
                )
            })
            .also_histo1d(spec, "goodJet_pt"),
        QueryId::Q4 => df
            .filter(&["Jet_pt"], |v| {
                v.arr("Jet_pt").iter().filter(|&&pt| pt > 40.0).count() >= 2
            })
            .also_histo1d(spec, "MET_pt"),
        QueryId::Q5 => df
            .filter(MUON_COLS, |v| {
                let muons = muons_of(v);
                muons.iter().enumerate().any(|(i, a)| {
                    muons[i + 1..].iter().any(|b| {
                        a.charge != b.charge && {
                            let m = reference::pair_mass(
                                a.pt, a.eta, a.phi, a.mass, b.pt, b.eta, b.phi, b.mass,
                            );
                            (60.0..=120.0).contains(&m)
                        }
                    })
                })
            })
            .also_histo1d(spec, "MET_pt"),
        QueryId::Q6a | QueryId::Q6b => {
            let idx = if q == QueryId::Q6a { 0 } else { 1 };
            let col = if q == QueryId::Q6a {
                "tri_pt"
            } else {
                "tri_btag"
            };
            df.filter(&["Jet_pt"], |v| v.arr("Jet_pt").len() >= 3)
                .define("tri", JET_COLS, |v| {
                    let jets = jets_of(v);
                    let (pt, btag, _) = reference::best_trijet(&jets).expect(">=3 jets");
                    ColValue::Arr(vec![pt, btag])
                })
                .define(col, &["tri"], move |v| ColValue::F64(v.arr("tri")[idx]))
                .also_histo1d(spec, col)
        }
        QueryId::Q7 => {
            let mut deps: Vec<&str> = JET_COLS.to_vec();
            deps.extend(MUON_COLS);
            deps.extend(ELECTRON_COLS);
            df.define("ht", &deps, |v| {
                let event = hep_model::Event {
                    jets: jets_of(v),
                    muons: muons_of(v),
                    electrons: electrons_of(v),
                    ..hep_model::Event::default()
                };
                let (sum, _) = reference::q7_sum(&event);
                ColValue::F64(sum.unwrap_or(-1.0))
            })
            .filter(&["ht"], |v| v.f64("ht") >= 0.0)
            .also_histo1d(spec, "ht")
        }
        QueryId::Q8 => {
            let mut deps: Vec<&str> = vec!["MET_pt", "MET_phi"];
            deps.extend(MUON_COLS);
            deps.extend(ELECTRON_COLS);
            df.define("mt", &deps, |v| {
                let event = hep_model::Event {
                    met: hep_model::Met {
                        pt: v.f64("MET_pt"),
                        phi: v.f64("MET_phi"),
                        ..hep_model::Met::default()
                    },
                    muons: muons_of(v),
                    electrons: electrons_of(v),
                    ..hep_model::Event::default()
                };
                let (mt, _) = reference::q8_value(&event);
                ColValue::F64(mt.unwrap_or(-1.0))
            })
            .filter(&["mt"], |v| v.f64("mt") >= 0.0)
            .also_histo1d(spec, "mt")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ALL_QUERIES;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;

    #[test]
    fn rdf_programs_match_reference_exactly() {
        let (events, table) = build_dataset(DatasetSpec {
            n_events: 2_000,
            row_group_size: 256,
            seed: 99,
        });
        let table = Arc::new(table);
        for q in ALL_QUERIES {
            let df = build(*q, table.clone(), Options::default());
            let out = df.run_all().unwrap();
            let expect = crate::reference::run(*q, &events);
            assert!(
                out.histograms[0].counts_equal(&expect.hist),
                "{} differs: rdf total {} vs ref total {}",
                q.name(),
                out.histograms[0].total(),
                expect.hist.total()
            );
        }
    }
}
