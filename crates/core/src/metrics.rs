//! Table-1 conciseness metrics: characters, lines, clauses, and unique
//! clauses per query implementation.
//!
//! Definitions follow the paper: characters and lines exclude whitespace,
//! blank lines and comments; "clauses" count language constructs and calls
//! to built-in functions; "unique clauses" count how many *different*
//! constructs are used.

use std::collections::BTreeSet;

use crate::queries::{self, Language};
use crate::spec::ALL_QUERIES;

/// Conciseness metrics for one language across the whole benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct LanguageMetrics {
    /// Language under test.
    pub language: Language,
    /// Non-whitespace characters over all queries.
    pub characters: usize,
    /// Non-blank lines over all queries.
    pub lines: usize,
    /// Total clauses over all queries.
    pub clauses: usize,
    /// Mean clauses per query output.
    pub avg_clauses_per_query: f64,
    /// Distinct clause kinds used anywhere.
    pub unique_clauses: usize,
    /// Mean distinct clause kinds per query output.
    pub avg_unique_clauses_per_query: f64,
}

/// SQL keywords counted as clauses.
const SQL_CLAUSES: &[&str] = &[
    "select",
    "from",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "with",
    "join",
    "unnest",
    "case",
    "cast",
    "exists",
    "between",
    "distinct",
    "create",
    "struct",
    "row",
    "array",
    "offset",
    "ordinality",
    "in",
    "not",
];

/// JSONiq keywords counted as clauses.
const JSONIQ_CLAUSES: &[&str] = &[
    "for",
    "let",
    "where",
    "group",
    "order",
    "count",
    "return",
    "declare",
    "if",
    "then",
    "else",
    "some",
    "every",
    "satisfies",
    "at",
    "in",
    "to",
];

/// C++/RDataFrame constructs counted as clauses.
const CPP_CLAUSES: &[&str] = &["for", "if", "return", "auto", "continue", "while", "else"];

/// Counts metrics for one query text in one language.
pub fn count_text(lang: Language, text: &str) -> (usize, usize, Vec<String>) {
    // The paper's JSONiq implementations import their physics helpers from
    // an external library module (§3.6: "import functions and constants
    // from external modules"), so helper declarations are not part of the
    // counted query text — unlike BigQuery, whose temp UDFs must be
    // declared inline and are counted. Reproduce that measurement setup.
    let text = if lang == Language::Jsoniq {
        match text.rfind("};") {
            Some(pos) => &text[pos + 2..],
            None => text,
        }
    } else {
        text
    };
    let stripped = strip_comments(lang, text);
    let characters = stripped.chars().filter(|c| !c.is_whitespace()).count();
    let lines = stripped.lines().filter(|l| !l.trim().is_empty()).count();
    let clauses = clause_list(lang, &stripped);
    (characters, lines, clauses)
}

fn strip_comments(lang: Language, text: &str) -> String {
    match lang {
        Language::Jsoniq => {
            // `(: … :)` block comments.
            let mut out = String::new();
            let mut rest = text;
            while let Some(start) = rest.find("(:") {
                out.push_str(&rest[..start]);
                match rest[start..].find(":)") {
                    Some(end) => rest = &rest[start + end + 2..],
                    None => return out,
                }
            }
            out.push_str(rest);
            out
        }
        _ => text
            .lines()
            .map(|l| {
                let cut = ["--", "//"]
                    .iter()
                    .filter_map(|c| l.find(c))
                    .min()
                    .unwrap_or(l.len());
                &l[..cut]
            })
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

/// Extracts the clause occurrences (keywords + function calls) of a text.
fn clause_list(lang: Language, text: &str) -> Vec<String> {
    let keywords: &[&str] = match lang {
        Language::Jsoniq => JSONIQ_CLAUSES,
        Language::RDataFrame => CPP_CLAUSES,
        _ => SQL_CLAUSES,
    };
    let mut clauses = Vec::new();
    let mut chars = text.char_indices().peekable();
    let mut word = String::new();
    let mut word_start = 0usize;
    while let Some((i, c)) = chars.next() {
        if c.is_alphanumeric() || c == '_' || c == '-' || c == ':' {
            if word.is_empty() {
                word_start = i;
            }
            word.push(c);
        } else {
            let _ = word_start;
            if !word.is_empty() {
                let lower = word.to_ascii_lowercase();
                let is_call =
                    c == '(' || (c == ' ' && chars.peek().is_some_and(|(_, n)| *n == '('));
                // A name directly followed by `(` is a call even when it
                // collides with a clause keyword (`count(...)` vs the
                // FLWOR `count` clause).
                if is_call && !lower.chars().next().is_some_and(|f| f.is_ascii_digit()) {
                    clauses.push(format!("{lower}()"));
                } else if keywords.contains(&lower.as_str()) {
                    clauses.push(lower);
                }
                word.clear();
            }
        }
    }
    if !word.is_empty() {
        let lower = word.to_ascii_lowercase();
        if keywords.contains(&lower.as_str()) {
            clauses.push(lower);
        }
    }
    clauses
}

/// Computes the Table-1 metrics row for a language over all queries.
pub fn language_metrics(lang: Language) -> LanguageMetrics {
    let mut characters = 0;
    let mut lines = 0;
    let mut clauses = 0;
    let mut all_kinds: BTreeSet<String> = BTreeSet::new();
    let mut unique_per_query = 0usize;
    for q in ALL_QUERIES {
        let text = queries::text(lang, *q);
        let (c, l, cl) = count_text(lang, &text);
        characters += c;
        lines += l;
        clauses += cl.len();
        let kinds: BTreeSet<String> = cl.into_iter().collect();
        unique_per_query += kinds.len();
        all_kinds.extend(kinds);
    }
    let n = ALL_QUERIES.len() as f64;
    LanguageMetrics {
        language: lang,
        characters,
        lines,
        clauses,
        avg_clauses_per_query: clauses as f64 / n,
        unique_clauses: all_kinds.len(),
        avg_unique_clauses_per_query: unique_per_query as f64 / n,
    }
}

/// Metrics for all five languages (the bottom block of Table 1).
pub fn all_language_metrics() -> Vec<LanguageMetrics> {
    queries::ALL_LANGUAGES
        .iter()
        .map(|l| language_metrics(*l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clause_counting_basics() {
        let (chars, lines, clauses) = count_text(
            Language::Presto,
            "SELECT COUNT(*) FROM t -- comment\nWHERE ABS(x) > 1",
        );
        assert!(chars > 0);
        assert_eq!(lines, 2);
        assert!(clauses.contains(&"select".to_string()));
        assert!(clauses.contains(&"from".to_string()));
        assert!(clauses.contains(&"where".to_string()));
        assert!(clauses.contains(&"count()".to_string()));
        assert!(clauses.contains(&"abs()".to_string()));
    }

    #[test]
    fn jsoniq_clause_counting() {
        let (_, _, clauses) = count_text(
            Language::Jsoniq,
            "for $x in $xs (: skip :) where count($x) gt 1 return $x",
        );
        assert!(clauses.contains(&"for".to_string()));
        assert!(clauses.contains(&"count()".to_string()));
        assert!(!clauses.contains(&"skip".to_string()));
    }

    #[test]
    fn table1_ordering_holds() {
        // The paper's qualitative finding: JSONiq is the most concise by
        // clauses, BigQuery beats Presto/Athena on characters, and the
        // verbose column lists make Presto/Athena the largest SQL texts.
        let m: std::collections::HashMap<_, _> = all_language_metrics()
            .into_iter()
            .map(|m| (m.language, m))
            .collect();
        let bq = &m[&Language::BigQuery];
        let presto = &m[&Language::Presto];
        let athena = &m[&Language::Athena];
        let jq = &m[&Language::Jsoniq];
        assert!(jq.avg_clauses_per_query < bq.avg_clauses_per_query);
        assert!(bq.characters < presto.characters);
        assert!(bq.characters < athena.characters);
        // Athena's inline ΔR (no UDFs) keeps it in the same size class as
        // Presto's column lists.
        let ratio = athena.characters as f64 / presto.characters as f64;
        assert!((0.6..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn metrics_are_nonzero_for_all_languages() {
        for m in all_language_metrics() {
            assert!(m.characters > 500, "{:?}", m.language);
            assert!(m.lines > 9, "{:?}", m.language);
            assert!(m.clauses > 9, "{:?}", m.language);
            assert!(m.unique_clauses >= 3, "{:?}", m.language);
        }
    }
}
