//! Uniform execution of any benchmark query on any engine.

use std::sync::Arc;

use engine_flwor::{FlworEngine, FlworOptions};
use engine_sql::{Dialect, SqlEngine, SqlOptions};
use nested_value::Value;
use nf2_columnar::{ChunkCache, ExecStats, FaultInjector, ScanError, Table};
use physics::Histogram;

use crate::queries::{self, Language};
use crate::spec::QueryId;

/// An adapter failure (engine error or malformed result shape), carrying
/// the executing system, the query id, and — for chaos-layer scan faults —
/// the typed [`ScanError`] with row group and leaf column.
#[derive(Clone, Debug, PartialEq)]
pub struct AdapterError {
    /// Name of the system (or language, below the system layer) that
    /// failed.
    pub system: String,
    /// Name of the benchmark query that failed.
    pub query: String,
    /// The underlying engine error, formatted.
    pub message: String,
    /// The typed scan fault when the failure was an injected fault;
    /// `None` for ordinary engine errors. The service retry path keys
    /// off this.
    pub scan: Option<Box<ScanError>>,
    /// The typed cancellation payload when the run was stopped by a
    /// tripped [`obs::CancelToken`] (expired deadline or explicit
    /// cancel); `None` for every other failure. Never retryable, and
    /// never billed: the error path computes no cost.
    pub cancelled: Option<Box<obs::Cancelled>>,
}

impl AdapterError {
    /// Builds an error from an engine failure, extracting the typed scan
    /// fault when there is one.
    pub fn new(
        system: impl Into<String>,
        query: impl Into<String>,
        message: impl ToString,
        scan: Option<&ScanError>,
    ) -> AdapterError {
        AdapterError {
            system: system.into(),
            query: query.into(),
            message: message.to_string(),
            scan: scan.cloned().map(Box::new),
            cancelled: None,
        }
    }

    /// Builds an error from any engine's error type, propagating its
    /// typed scan fault and cancellation payload. This is the single
    /// bridge every engine adapter uses — a new engine only implements
    /// [`EngineError`] and gets scan-fault propagation (and thus
    /// service-side retries) and typed cancellation for free.
    pub fn from_engine(
        system: impl Into<String>,
        query: impl Into<String>,
        e: &dyn EngineError,
    ) -> AdapterError {
        let mut err = AdapterError::new(system, query, e, e.scan_error());
        err.cancelled = e.cancel_error().copied().map(Box::new);
        err
    }

    /// Whether the service retry path should re-run the query. A
    /// cancelled run is never retryable: the token stays tripped.
    pub fn retryable(&self) -> bool {
        self.cancelled.is_none() && self.scan.as_ref().is_some_and(|s| s.retryable())
    }
}

/// The contract an engine's error type satisfies so the adapter layer
/// can wrap it uniformly: printable, and able to surface the typed
/// chaos-layer [`ScanError`] when the failure was an injected fault.
pub trait EngineError: std::fmt::Display {
    /// The typed scan fault, when this error is one.
    fn scan_error(&self) -> Option<&ScanError>;

    /// The typed cancellation payload, when this error is one.
    /// Defaults to `None` so engines without cooperative cancellation
    /// still satisfy the contract.
    fn cancel_error(&self) -> Option<&obs::Cancelled> {
        None
    }
}

impl EngineError for engine_sql::SqlError {
    fn scan_error(&self) -> Option<&ScanError> {
        self.scan_error()
    }

    fn cancel_error(&self) -> Option<&obs::Cancelled> {
        self.cancelled()
    }
}

impl EngineError for engine_flwor::FlworError {
    fn scan_error(&self) -> Option<&ScanError> {
        self.scan_error()
    }

    fn cancel_error(&self) -> Option<&obs::Cancelled> {
        self.cancelled()
    }
}

impl EngineError for physical_ir::PirError {
    fn scan_error(&self) -> Option<&ScanError> {
        match self {
            physical_ir::PirError::Columnar(e) => e.scan_error(),
            physical_ir::PirError::Cancelled(_) | physical_ir::PirError::MorselPanic { .. } => None,
        }
    }

    fn cancel_error(&self) -> Option<&obs::Cancelled> {
        match self {
            physical_ir::PirError::Cancelled(c) => Some(c),
            physical_ir::PirError::Columnar(e) => e.cancelled(),
            physical_ir::PirError::MorselPanic { .. } => None,
        }
    }
}

impl EngineError for engine_rdf::RdfError {
    fn scan_error(&self) -> Option<&ScanError> {
        self.scan_error()
    }

    fn cancel_error(&self) -> Option<&obs::Cancelled> {
        self.cancelled()
    }
}

impl std::fmt::Display for AdapterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {}: {}", self.query, self.system, self.message)
    }
}

impl std::error::Error for AdapterError {}

/// Result of running a query through an engine.
pub struct EngineRun {
    /// The query's histogram.
    pub histogram: Histogram,
    /// Execution statistics.
    pub stats: ExecStats,
    /// The span tree recorded during the run. Empty when the
    /// environment's [`obs::TraceCtx`] was disabled (the default).
    pub trace: obs::SpanTree,
}

/// Cross-engine execution environment: everything the serving layer
/// injects into a run that is not part of the query itself.
#[derive(Clone, Default)]
pub struct ExecEnv {
    /// Shared buffer pool fronting physical chunk reads (accounting-only;
    /// results and billing bytes are unchanged — see
    /// [`nf2_columnar::ScanStats`]). `None` reproduces the seed path
    /// byte-for-byte.
    pub chunk_cache: Option<Arc<ChunkCache>>,
    /// Worker threads *inside* one query (`None` ⇒ engine default, i.e.
    /// all cores). A multi-tenant server sets this to 1 and parallelizes
    /// across queries instead.
    pub intra_query_threads: Option<usize>,
    /// Morsel-parallel workers for *compiled* execution (`None` ⇒ engine
    /// option default, which is serial). Unlike `intra_query_threads`
    /// (the interpreters' partition parallelism), this drives the
    /// `exec_par` morsel executor on the compiled-IR path; results are
    /// byte-identical at any value, so it is purely a latency knob the
    /// serving layer can expose per query.
    pub parallel_workers: Option<usize>,
    /// Zone-map row-group pruning override (`None` ⇒ engine option
    /// default, which is on). Results are byte-identical either way;
    /// `Some(false)` reproduces the paper's configuration, where every
    /// system reads every row group and pruning never perturbs the
    /// measured scan bytes (see [`nf2_columnar::ScanStats`]).
    pub zone_map_pruning: Option<bool>,
    /// Morsel-level fault recovery override for compiled execution
    /// (`None` ⇒ engine option default, which is off). With
    /// `Some(true)`, transient scan faults are retried per morsel,
    /// panicking morsels are quarantined, dead workers' deques are
    /// reassigned and the pool degrades down to a serial fallback
    /// instead of failing the whole query (see `exec_par`); results are
    /// byte-identical, only failure handling changes.
    pub morsel_recovery: Option<bool>,
    /// Chaos-layer fault injector on physical chunk reads (`None`, the
    /// default, reproduces the fault-free path byte-for-byte; see
    /// [`nf2_columnar::fault`]).
    pub fault_injector: Option<Arc<FaultInjector>>,
    /// Tracing context. The default (disabled) context records nothing
    /// and costs near-zero; an enabled context collects a span tree the
    /// run returns in [`EngineRun::trace`].
    pub trace: obs::TraceCtx,
    /// Cooperative cancellation token, checked by every engine at
    /// row-group granularity. The default (disabled) token never trips
    /// and costs a single branch per check, keeping the seed path
    /// byte-identical.
    pub cancel: obs::CancelToken,
}

impl ExecEnv {
    /// The environment the single-query benchmarks run in (no caches,
    /// engine-default parallelism) — the paper's configuration.
    pub fn seed() -> ExecEnv {
        ExecEnv::default()
    }
}

/// Runs a query on the SQL engine under an explicit [`ExecEnv`].
///
/// This is the raw per-engine adapter the [`crate::engine_api`] trait
/// impls delegate to. It records stage spans into `env.trace` but does
/// not drain them: the caller owning the query-level root span (the
/// trait impl, or the serving layer) collects the tree, so
/// [`EngineRun::trace`] is empty here.
pub fn run_sql_env(
    dialect: Dialect,
    table: &Arc<Table>,
    q: QueryId,
    mut options: SqlOptions,
    env: &ExecEnv,
) -> Result<EngineRun, AdapterError> {
    let lang = match dialect.name {
        engine_sql::DialectName::BigQuery => Language::BigQuery,
        engine_sql::DialectName::Presto => Language::Presto,
        engine_sql::DialectName::Athena => Language::Athena,
    };
    if let Some(n) = env.intra_query_threads {
        options.n_threads = n;
    }
    if let Some(n) = env.parallel_workers {
        options.parallel_workers = n;
    }
    if let Some(p) = env.zone_map_pruning {
        options.zone_map_pruning = p;
    }
    if let Some(r) = env.morsel_recovery {
        options.morsel_recovery = r;
    }
    let setup_span = env
        .trace
        .span_with(obs::Stage::Plan, || "setup".to_string());
    let sql = queries::text(lang, q);
    let mut engine = SqlEngine::new(dialect, options);
    engine.register(table.clone());
    engine.set_chunk_cache(env.chunk_cache.clone());
    engine.set_fault_injector(env.fault_injector.clone());
    engine.set_trace(env.trace.clone());
    engine.set_cancel(env.cancel.clone());
    setup_span.finish();
    let out = engine
        .execute(&sql)
        .map_err(|e| AdapterError::from_engine(lang.name(), q.name(), &e))?;
    let hist_span = env
        .trace
        .span_with(obs::Stage::Materialize, || "histogram".to_string());
    let mut histogram = Histogram::new(q.hist_spec());
    for row in &out.relation.rows {
        let (bin, n) =
            bin_count_row(row).map_err(|e| AdapterError::new(lang.name(), q.name(), e, None))?;
        histogram.add_bin_count(bin, n);
    }
    hist_span.finish();
    Ok(EngineRun {
        histogram,
        stats: out.stats,
        trace: obs::SpanTree::default(),
    })
}

pub(crate) fn bin_count_row(row: &[Value]) -> Result<(i64, u64), String> {
    match row {
        [bin, n] => {
            let b = bin
                .as_i64()
                .map_err(|e| format!("bin column: {e} ({bin})"))?;
            let c = n.as_i64().map_err(|e| format!("count column: {e}"))?;
            Ok((b, c as u64))
        }
        other => Err(format!(
            "expected (bin, n) rows, got {} columns",
            other.len()
        )),
    }
}

/// Runs a query on the JSONiq engine under an explicit [`ExecEnv`].
/// Like [`run_sql_env`], records spans into `env.trace` but leaves
/// draining to the caller.
pub fn run_jsoniq_env(
    table: &Arc<Table>,
    q: QueryId,
    mut options: FlworOptions,
    env: &ExecEnv,
) -> Result<EngineRun, AdapterError> {
    if let Some(n) = env.intra_query_threads {
        options.n_threads = n;
    }
    if let Some(n) = env.parallel_workers {
        options.parallel_workers = n;
    }
    if let Some(p) = env.zone_map_pruning {
        options.zone_map_pruning = p;
    }
    if let Some(r) = env.morsel_recovery {
        options.morsel_recovery = r;
    }
    let setup_span = env
        .trace
        .span_with(obs::Stage::Plan, || "setup".to_string());
    let text = queries::text(Language::Jsoniq, q);
    let mut engine = FlworEngine::new(options);
    engine.register(table.clone());
    engine.set_chunk_cache(env.chunk_cache.clone());
    engine.set_fault_injector(env.fault_injector.clone());
    engine.set_trace(env.trace.clone());
    engine.set_cancel(env.cancel.clone());
    setup_span.finish();
    let out = engine
        .execute(&text)
        .map_err(|e| AdapterError::from_engine("JSONiq", q.name(), &e))?;
    let hist_span = env
        .trace
        .span_with(obs::Stage::Materialize, || "histogram".to_string());
    let mut histogram = Histogram::new(q.hist_spec());
    for item in &out.items {
        let bin = item
            .as_i64()
            .map_err(|e| AdapterError::new("JSONiq", q.name(), format!("bin item {e}"), None))?;
        histogram.add_bin_count(bin, 1);
    }
    hist_span.finish();
    Ok(EngineRun {
        histogram,
        stats: out.stats,
        trace: obs::SpanTree::default(),
    })
}

/// Runs a query on the RDataFrame-style engine under an explicit
/// [`ExecEnv`]. Like [`run_sql_env`], records spans into `env.trace`
/// but leaves draining to the caller.
pub fn run_rdf_env(
    table: &Arc<Table>,
    q: QueryId,
    mut options: engine_rdf::Options,
    env: &ExecEnv,
) -> Result<EngineRun, AdapterError> {
    if let Some(n) = env.intra_query_threads {
        options.n_threads = n;
    }
    if let Some(n) = env.parallel_workers {
        options.parallel_workers = n;
    }
    if let Some(p) = env.zone_map_pruning {
        options.zone_map_pruning = p;
    }
    if let Some(r) = env.morsel_recovery {
        options.morsel_recovery = r;
    }
    let setup_span = env
        .trace
        .span_with(obs::Stage::Plan, || "setup".to_string());
    let mut df = crate::rdf_programs::build(q, table.clone(), options);
    df.set_chunk_cache(env.chunk_cache.clone());
    df.set_fault_injector(env.fault_injector.clone());
    df.set_trace(env.trace.clone());
    df.set_cancel(env.cancel.clone());
    setup_span.finish();
    let out = df
        .run_all()
        .map_err(|e| AdapterError::from_engine("RDataFrame", q.name(), &e))?;
    let hist_span = env
        .trace
        .span_with(obs::Stage::Materialize, || "histogram".to_string());
    let histogram = out.histograms.into_iter().next().expect("one booking");
    hist_span.finish();
    Ok(EngineRun {
        histogram,
        stats: out.stats,
        trace: obs::SpanTree::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;

    #[test]
    fn q1_all_engines_agree_on_totals() {
        let (events, table) = build_dataset(DatasetSpec {
            n_events: 1_000,
            row_group_size: 256,
            seed: 3,
        });
        let table = Arc::new(table);
        let n = events.len() as u64;
        let env = ExecEnv::seed();
        let sql = run_sql_env(
            Dialect::presto(),
            &table,
            QueryId::Q1,
            SqlOptions::default(),
            &env,
        )
        .unwrap();
        assert_eq!(sql.histogram.total(), n);
        let jq = run_jsoniq_env(&table, QueryId::Q1, FlworOptions::default(), &env).unwrap();
        assert_eq!(jq.histogram.total(), n);
        let rdf = run_rdf_env(&table, QueryId::Q1, engine_rdf::Options::default(), &env).unwrap();
        assert_eq!(rdf.histogram.total(), n);
    }
}
