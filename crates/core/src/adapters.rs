//! Uniform execution of any benchmark query on any engine.

use std::sync::Arc;

use engine_flwor::{FlworEngine, FlworOptions};
use engine_sql::{Dialect, SqlEngine, SqlOptions};
use nested_value::Value;
use nf2_columnar::{ExecStats, Table};
use physics::Histogram;

use crate::queries::{self, Language};
use crate::spec::QueryId;

/// An adapter failure (engine error or malformed result shape).
#[derive(Debug)]
pub struct AdapterError(pub String);

impl std::fmt::Display for AdapterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for AdapterError {}

/// Result of running a query through an engine.
pub struct EngineRun {
    /// The query's histogram.
    pub histogram: Histogram,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// Runs a query on the SQL engine under a dialect profile.
pub fn run_sql(
    dialect: Dialect,
    table: &Arc<Table>,
    q: QueryId,
    options: SqlOptions,
) -> Result<EngineRun, AdapterError> {
    let lang = match dialect.name {
        engine_sql::DialectName::BigQuery => Language::BigQuery,
        engine_sql::DialectName::Presto => Language::Presto,
        engine_sql::DialectName::Athena => Language::Athena,
    };
    let sql = queries::text(lang, q);
    let mut engine = SqlEngine::new(dialect, options);
    engine.register(table.clone());
    let out = engine
        .execute(&sql)
        .map_err(|e| AdapterError(format!("{} {}: {e}", lang.name(), q.name())))?;
    let mut histogram = Histogram::new(q.hist_spec());
    for row in &out.relation.rows {
        let (bin, n) = bin_count_row(row)
            .map_err(|e| AdapterError(format!("{} {}: {e}", lang.name(), q.name())))?;
        histogram.add_bin_count(bin, n);
    }
    Ok(EngineRun {
        histogram,
        stats: out.stats,
    })
}

fn bin_count_row(row: &[Value]) -> Result<(i64, u64), String> {
    match row {
        [bin, n] => {
            let b = bin
                .as_i64()
                .map_err(|e| format!("bin column: {e} ({bin})"))?;
            let c = n.as_i64().map_err(|e| format!("count column: {e}"))?;
            Ok((b, c as u64))
        }
        other => Err(format!(
            "expected (bin, n) rows, got {} columns",
            other.len()
        )),
    }
}

/// Runs a query on the JSONiq engine (Rumble analog).
pub fn run_jsoniq(
    table: &Arc<Table>,
    q: QueryId,
    options: FlworOptions,
) -> Result<EngineRun, AdapterError> {
    let text = queries::text(Language::Jsoniq, q);
    let mut engine = FlworEngine::new(options);
    engine.register(table.clone());
    let out = engine
        .execute(&text)
        .map_err(|e| AdapterError(format!("JSONiq {}: {e}", q.name())))?;
    let mut histogram = Histogram::new(q.hist_spec());
    for item in &out.items {
        let bin = item
            .as_i64()
            .map_err(|e| AdapterError(format!("JSONiq {}: bin item {e}", q.name())))?;
        histogram.add_bin_count(bin, 1);
    }
    Ok(EngineRun {
        histogram,
        stats: out.stats,
    })
}

/// Runs a query on the RDataFrame-style engine.
pub fn run_rdf(
    table: &Arc<Table>,
    q: QueryId,
    options: engine_rdf::Options,
) -> Result<EngineRun, AdapterError> {
    let df = crate::rdf_programs::build(q, table.clone(), options);
    let out = df
        .run_all()
        .map_err(|e| AdapterError(format!("RDataFrame {}: {e}", q.name())))?;
    Ok(EngineRun {
        histogram: out.histograms.into_iter().next().expect("one booking"),
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;

    #[test]
    fn q1_all_engines_agree_on_totals() {
        let (events, table) = build_dataset(DatasetSpec {
            n_events: 1_000,
            row_group_size: 256,
            seed: 3,
        });
        let table = Arc::new(table);
        let n = events.len() as u64;
        let sql = run_sql(
            Dialect::presto(),
            &table,
            QueryId::Q1,
            SqlOptions::default(),
        )
        .unwrap();
        assert_eq!(sql.histogram.total(), n);
        let jq = run_jsoniq(&table, QueryId::Q1, FlworOptions::default()).unwrap();
        assert_eq!(jq.histogram.total(), n);
        let rdf = run_rdf(&table, QueryId::Q1, engine_rdf::Options::default()).unwrap();
        assert_eq!(rdf.histogram.total(), n);
    }
}
