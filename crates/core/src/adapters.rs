//! Uniform execution of any benchmark query on any engine.

use std::sync::Arc;

use engine_flwor::{FlworEngine, FlworOptions};
use engine_sql::{Dialect, SqlEngine, SqlOptions};
use nested_value::Value;
use nf2_columnar::{ChunkCache, ExecStats, FaultInjector, ScanError, Table};
use physics::Histogram;

use crate::queries::{self, Language};
use crate::spec::QueryId;

/// An adapter failure (engine error or malformed result shape), carrying
/// the executing system, the query id, and — for chaos-layer scan faults —
/// the typed [`ScanError`] with row group and leaf column.
#[derive(Clone, Debug, PartialEq)]
pub struct AdapterError {
    /// Name of the system (or language, below the system layer) that
    /// failed.
    pub system: String,
    /// Name of the benchmark query that failed.
    pub query: String,
    /// The underlying engine error, formatted.
    pub message: String,
    /// The typed scan fault when the failure was an injected fault;
    /// `None` for ordinary engine errors. The service retry path keys
    /// off this.
    pub scan: Option<Box<ScanError>>,
}

impl AdapterError {
    /// Builds an error from an engine failure, extracting the typed scan
    /// fault when there is one.
    pub fn new(
        system: impl Into<String>,
        query: impl Into<String>,
        message: impl ToString,
        scan: Option<&ScanError>,
    ) -> AdapterError {
        AdapterError {
            system: system.into(),
            query: query.into(),
            message: message.to_string(),
            scan: scan.cloned().map(Box::new),
        }
    }

    /// Whether the service retry path should re-run the query.
    pub fn retryable(&self) -> bool {
        self.scan.as_ref().is_some_and(|s| s.retryable())
    }
}

impl std::fmt::Display for AdapterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {}: {}", self.query, self.system, self.message)
    }
}

impl std::error::Error for AdapterError {}

/// Result of running a query through an engine.
pub struct EngineRun {
    /// The query's histogram.
    pub histogram: Histogram,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// Cross-engine execution environment: everything the serving layer
/// injects into a run that is not part of the query itself.
#[derive(Clone, Default)]
pub struct ExecEnv {
    /// Shared buffer pool fronting physical chunk reads (accounting-only;
    /// results and billing bytes are unchanged — see
    /// [`nf2_columnar::ScanStats`]). `None` reproduces the seed path
    /// byte-for-byte.
    pub chunk_cache: Option<Arc<ChunkCache>>,
    /// Worker threads *inside* one query (`None` ⇒ engine default, i.e.
    /// all cores). A multi-tenant server sets this to 1 and parallelizes
    /// across queries instead.
    pub intra_query_threads: Option<usize>,
    /// Chaos-layer fault injector on physical chunk reads (`None`, the
    /// default, reproduces the fault-free path byte-for-byte; see
    /// [`nf2_columnar::fault`]).
    pub fault_injector: Option<Arc<FaultInjector>>,
}

impl ExecEnv {
    /// The environment the single-query benchmarks run in (no caches,
    /// engine-default parallelism) — the paper's configuration.
    pub fn seed() -> ExecEnv {
        ExecEnv::default()
    }
}

/// Runs a query on the SQL engine under a dialect profile.
pub fn run_sql(
    dialect: Dialect,
    table: &Arc<Table>,
    q: QueryId,
    options: SqlOptions,
) -> Result<EngineRun, AdapterError> {
    run_sql_env(dialect, table, q, options, &ExecEnv::seed())
}

/// [`run_sql`] under an explicit [`ExecEnv`].
pub fn run_sql_env(
    dialect: Dialect,
    table: &Arc<Table>,
    q: QueryId,
    mut options: SqlOptions,
    env: &ExecEnv,
) -> Result<EngineRun, AdapterError> {
    let lang = match dialect.name {
        engine_sql::DialectName::BigQuery => Language::BigQuery,
        engine_sql::DialectName::Presto => Language::Presto,
        engine_sql::DialectName::Athena => Language::Athena,
    };
    if let Some(n) = env.intra_query_threads {
        options.n_threads = n;
    }
    let sql = queries::text(lang, q);
    let mut engine = SqlEngine::new(dialect, options);
    engine.register(table.clone());
    engine.set_chunk_cache(env.chunk_cache.clone());
    engine.set_fault_injector(env.fault_injector.clone());
    let out = engine
        .execute(&sql)
        .map_err(|e| AdapterError::new(lang.name(), q.name(), &e, e.scan_error()))?;
    let mut histogram = Histogram::new(q.hist_spec());
    for row in &out.relation.rows {
        let (bin, n) =
            bin_count_row(row).map_err(|e| AdapterError::new(lang.name(), q.name(), e, None))?;
        histogram.add_bin_count(bin, n);
    }
    Ok(EngineRun {
        histogram,
        stats: out.stats,
    })
}

pub(crate) fn bin_count_row(row: &[Value]) -> Result<(i64, u64), String> {
    match row {
        [bin, n] => {
            let b = bin
                .as_i64()
                .map_err(|e| format!("bin column: {e} ({bin})"))?;
            let c = n.as_i64().map_err(|e| format!("count column: {e}"))?;
            Ok((b, c as u64))
        }
        other => Err(format!(
            "expected (bin, n) rows, got {} columns",
            other.len()
        )),
    }
}

/// Runs a query on the JSONiq engine (Rumble analog).
pub fn run_jsoniq(
    table: &Arc<Table>,
    q: QueryId,
    options: FlworOptions,
) -> Result<EngineRun, AdapterError> {
    run_jsoniq_env(table, q, options, &ExecEnv::seed())
}

/// [`run_jsoniq`] under an explicit [`ExecEnv`].
pub fn run_jsoniq_env(
    table: &Arc<Table>,
    q: QueryId,
    mut options: FlworOptions,
    env: &ExecEnv,
) -> Result<EngineRun, AdapterError> {
    if let Some(n) = env.intra_query_threads {
        options.n_threads = n;
    }
    let text = queries::text(Language::Jsoniq, q);
    let mut engine = FlworEngine::new(options);
    engine.register(table.clone());
    engine.set_chunk_cache(env.chunk_cache.clone());
    engine.set_fault_injector(env.fault_injector.clone());
    let out = engine
        .execute(&text)
        .map_err(|e| AdapterError::new("JSONiq", q.name(), &e, e.scan_error()))?;
    let mut histogram = Histogram::new(q.hist_spec());
    for item in &out.items {
        let bin = item
            .as_i64()
            .map_err(|e| AdapterError::new("JSONiq", q.name(), format!("bin item {e}"), None))?;
        histogram.add_bin_count(bin, 1);
    }
    Ok(EngineRun {
        histogram,
        stats: out.stats,
    })
}

/// Runs a query on the RDataFrame-style engine.
pub fn run_rdf(
    table: &Arc<Table>,
    q: QueryId,
    options: engine_rdf::Options,
) -> Result<EngineRun, AdapterError> {
    run_rdf_env(table, q, options, &ExecEnv::seed())
}

/// [`run_rdf`] under an explicit [`ExecEnv`].
pub fn run_rdf_env(
    table: &Arc<Table>,
    q: QueryId,
    mut options: engine_rdf::Options,
    env: &ExecEnv,
) -> Result<EngineRun, AdapterError> {
    if let Some(n) = env.intra_query_threads {
        options.n_threads = n;
    }
    let mut df = crate::rdf_programs::build(q, table.clone(), options);
    df.set_chunk_cache(env.chunk_cache.clone());
    df.set_fault_injector(env.fault_injector.clone());
    let out = df
        .run_all()
        .map_err(|e| AdapterError::new("RDataFrame", q.name(), &e, e.scan_error()))?;
    Ok(EngineRun {
        histogram: out.histograms.into_iter().next().expect("one booking"),
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;

    #[test]
    fn q1_all_engines_agree_on_totals() {
        let (events, table) = build_dataset(DatasetSpec {
            n_events: 1_000,
            row_group_size: 256,
            seed: 3,
        });
        let table = Arc::new(table);
        let n = events.len() as u64;
        let sql = run_sql(
            Dialect::presto(),
            &table,
            QueryId::Q1,
            SqlOptions::default(),
        )
        .unwrap();
        assert_eq!(sql.histogram.total(), n);
        let jq = run_jsoniq(&table, QueryId::Q1, FlworOptions::default()).unwrap();
        assert_eq!(jq.histogram.total(), n);
        let rdf = run_rdf(&table, QueryId::Q1, engine_rdf::Options::default()).unwrap();
        assert_eq!(rdf.histogram.total(), n);
    }
}
