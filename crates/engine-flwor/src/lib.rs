//! # engine-flwor
//!
//! A JSONiq-subset interpreter over the NF² columnar substrate — the
//! workspace's analog of **Rumble**, the JSONiq-on-Spark system of the
//! paper.
//!
//! The implemented subset covers everything the paper's functional analysis
//! credits JSONiq with (§3, Table 1):
//!
//! * **FLWOR expressions** with `for` (incl. `at` position variables and
//!   multiple bindings — Cartesian products for particle combinations,
//!   R1.2/R1.3), `let` variables (R2.3), `where`, `order by`, `group by`
//!   (with non-grouping variables re-bound to sequences, enabling
//!   fully-encapsulated histogramming à la Listing 9b, R2.6), `count`, and
//!   `return`;
//! * **object and array navigation**: `.field` member lookup, `[]` array
//!   unboxing, `[[i]]` positional member access, and predicate filters
//!   `[…]` with the context item `$$` (R1.1);
//! * **object/array constructors** `{ … }` / `[ … ]` (R3.4);
//! * **user-declared functions** `declare function hep:…(…) { … }` with
//!   namespace-qualified names (R1.4) — function bodies take objects
//!   without declaring member lists, the flexibility §3.6 highlights;
//! * sequence semantics: everything is a flat sequence of items, general
//!   comparisons are existential, arithmetic propagates the empty sequence.
//!
//! ## Execution model (Rumble fidelity)
//!
//! Like Rumble, the engine reads input via a `parquet-file(…)` function
//! call and pushes **no projections** into the scan
//! ([`nf2_columnar::PushdownCapability::None`] — paper §4.1: "Rumble does
//! not seem to push any projections into the scan and thus reads the full
//! file"), and it interprets queries over dynamically typed items, which
//! is the structural reason for its order-of-magnitude slowdown in
//! Figure 1. Top-level map-like FLWORs are partitioned across row groups
//! (Spark's parallelism), falling back to serial evaluation when clauses
//! (group/order/count) make partitioning unsound.

pub mod ast;
pub mod builtins;
pub mod compile;
pub mod engine;
pub mod error;
pub mod interp;
pub mod parser;
pub mod token;

pub use engine::{FlworEngine, FlworOptions, FlworOutput};
pub use error::FlworError;

#[cfg(test)]
mod tests_lang;
