//! The public Rumble-like engine: register tables, execute modules.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use nested_value::Value;
use nf2_columnar::{
    ChunkCache, ExecStats, FaultInjector, Projection, PushdownCapability, ScalarPredicate,
    ScanCache, ScanFaults, Schema, SelCmp, SelValue, Table,
};
use parking_lot::Mutex;

use crate::ast::{Clause, CmpOp, Expr, Module};
use crate::error::FlworError;
use crate::interp::{Env, Interp, Seq, Source};
use crate::parser;

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct FlworOptions {
    /// Worker threads (0 ⇒ all cores). Parallelism applies only to
    /// partitionable top-level FLWORs (see crate docs).
    pub n_threads: usize,
    /// Per-item interpretation overhead injected per event, in *simulated*
    /// nanoseconds of busy work. Models Rumble's JVM/Spark per-record
    /// overhead beyond what a tree-walking interpreter already costs.
    /// 0 disables (default).
    pub overhead_ns_per_item: u64,
    /// Vectorized pre-filtering of scalar `where` conjuncts at scan time
    /// (late materialization). Purely an execution-speed knob: scan stats
    /// are defined by the projected columns (all of them, for Rumble), not
    /// by surviving rows, and the `where` clause still runs on survivors.
    pub vectorized_filter: bool,
    /// Zone-map row-group pruning: scalar `where` conjuncts extracted by
    /// the same analysis as `vectorized_filter` are also evaluated against
    /// per-chunk min/max statistics at scan time, skipping row groups that
    /// provably contain no matching events (billed as `bytes_pruned`, see
    /// [`nf2_columnar::ScanStats`]). Results are byte-identical either
    /// way; applies to interpreted and compiled execution alike.
    pub zone_map_pruning: bool,
    /// Compiled execution: modules recognized by [`crate::compile`] run
    /// as fused batch kernels over the shared physical IR instead of the
    /// tree-walking interpreter. Recognition is exact (canonical-template
    /// AST equality), so disabling this only costs speed; results are
    /// bit-identical either way.
    pub compile: bool,
    /// Morsel-driven intra-query parallelism for compiled execution:
    /// `> 1` runs compiled plans through `exec_par` with this many
    /// workers (row groups are the morsels); output is byte-identical at
    /// any value and scan accounting is unaffected. `0`/`1` keeps the
    /// serial compiled executor; ignored when `compile` is off or the
    /// module does not lower.
    pub parallel_workers: usize,
    /// Morsel-level fault recovery for compiled execution (default off):
    /// transient scan faults are retried per morsel, panicking morsels
    /// are quarantined and re-executed, dead workers' deques are
    /// reassigned and the pool degrades down to a serial fallback
    /// instead of failing the query (see `exec_par`). When active the
    /// fault injector is routed to the morsel fault surface instead of
    /// the scan pre-pass, keeping billing fault-free and byte-identical.
    /// Ignored when the module does not lower to the compiled path.
    pub morsel_recovery: bool,
}

impl Default for FlworOptions {
    fn default() -> Self {
        FlworOptions {
            n_threads: 0,
            overhead_ns_per_item: 0,
            vectorized_filter: true,
            zone_map_pruning: true,
            compile: true,
            parallel_workers: 0,
            morsel_recovery: false,
        }
    }
}

/// Result of executing a module.
#[derive(Clone, Debug)]
pub struct FlworOutput {
    /// The result sequence.
    pub items: Seq,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// The JSONiq engine (Rumble analog).
pub struct FlworEngine {
    options: FlworOptions,
    tables: Vec<Arc<Table>>,
    chunk_cache: Option<Arc<ChunkCache>>,
    fault_injector: Option<Arc<FaultInjector>>,
    trace: obs::TraceCtx,
    cancel: obs::CancelToken,
}

struct TableSource<'a> {
    rows: &'a [Value],
    name: &'a str,
}

impl<'a> Source for TableSource<'a> {
    fn read(&self, name: &str) -> Result<Seq, FlworError> {
        if name == self.name {
            Ok(self.rows.to_vec())
        } else {
            Err(FlworError::Unresolved(format!("input {name}")))
        }
    }
}

impl FlworEngine {
    /// Creates an engine.
    pub fn new(options: FlworOptions) -> FlworEngine {
        FlworEngine {
            options,
            tables: Vec::new(),
            chunk_cache: None,
            fault_injector: None,
            trace: obs::TraceCtx::disabled(),
            cancel: obs::CancelToken::none(),
        }
    }

    /// Registers a table; `parquet-file("<name>")` resolves to it.
    pub fn register(&mut self, table: Arc<Table>) {
        self.tables.push(table);
    }

    /// Attaches a shared buffer pool in front of physical chunk reads
    /// (accounting-only; results and billing bytes are unchanged).
    pub fn set_chunk_cache(&mut self, cache: Option<Arc<ChunkCache>>) {
        self.chunk_cache = cache;
    }

    /// Attaches a chaos-layer fault injector to physical chunk reads.
    /// `None` (the default) leaves the scan path byte-identical to the
    /// fault-free engine.
    pub fn set_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        self.fault_injector = injector;
    }

    /// Attaches a tracing context: execution stages record spans into
    /// it. The default (disabled) context makes instrumentation a
    /// near-no-op.
    pub fn set_trace(&mut self, trace: obs::TraceCtx) {
        self.trace = trace;
    }

    /// Attaches a cooperative cancellation token, checked at row-group
    /// granularity: the scan and the per-group evaluation loops abort
    /// with [`FlworError::Cancelled`] once it trips. The default
    /// (disabled) token costs a single branch per group.
    pub fn set_cancel(&mut self, cancel: obs::CancelToken) {
        self.cancel = cancel;
    }

    fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.iter().find(|t| t.name() == name)
    }

    /// Parses and executes a module.
    pub fn execute(&self, text: &str) -> Result<FlworOutput, FlworError> {
        let start = Instant::now();
        let parse_span = self.trace.span(obs::Stage::Parse);
        let module = parser::parse_module(text)?;
        parse_span.finish();

        let plan_span = self.trace.span(obs::Stage::Plan);
        // Which input does the module read?
        let input = find_input(&module);
        let Some(input_name) = input else {
            plan_span.finish();
            // Pure expression: no table access.
            let agg_span = self.trace.span(obs::Stage::Aggregate);
            let source = crate::interp::NoSource;
            let interp = Interp::new(&module, &source)?;
            let items = interp.eval_body(&module, &Env::new())?;
            agg_span.finish();
            return Ok(FlworOutput {
                items,
                stats: ExecStats {
                    wall_seconds: start.elapsed().as_secs_f64(),
                    cpu_seconds: start.elapsed().as_secs_f64(),
                    scan: Default::default(),
                    threads_used: 1,
                    row_groups_skipped: 0,
                    recovery: Default::default(),
                },
            });
        };
        let table = self
            .table(&input_name)
            .ok_or_else(|| FlworError::Unresolved(format!("input {input_name}")))?
            .clone();

        // Compiled path detection happens under the Plan span: modules
        // that are exact instances of the canonical template lower to a
        // fused-kernel physical plan; everything else interprets. Neither
        // detection nor compiled execution perturbs the scan accounting
        // below — scan stats are defined by the projected columns (all of
        // them, for Rumble), never by the execution strategy.
        let compiled = if self.options.compile {
            crate::compile::lower(&module)
        } else {
            None
        };

        // Scalar `where`-conjunct extraction feeds two independent
        // consumers: the vectorized pre-filter (interpreted path only —
        // compiled plans carry their own filters) and zone-map row-group
        // pruning (every path). Neither perturbs the per-row scan
        // accounting: scan stats are defined by the projected columns
        // (all of them, for Rumble), never by surviving rows; pruned
        // groups are billed separately as `bytes_pruned`.
        let want_filter = compiled.is_none() && self.options.vectorized_filter;
        let extracted = if want_filter || self.options.zone_map_pruning {
            prefilter_predicates(&module, table.schema())
        } else {
            Vec::new()
        };
        let preds: &[ScalarPredicate] = if want_filter { &extracted } else { &[] };
        let prune_preds: &[ScalarPredicate] = if self.options.zone_map_pruning {
            &extracted
        } else {
            &[]
        };

        let partitionable = compiled.is_none() && is_partitionable(&module);
        let n_groups = table.row_groups().len();
        let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
        let n_threads = if partitionable {
            let n = if self.options.n_threads == 0 {
                hw
            } else {
                self.options.n_threads
            };
            n.max(1).min(n_groups.max(1))
        } else {
            1
        };
        plan_span.finish();

        // Rumble pushes no projections: the scan reads every leaf column.
        let scan_cache = self.chunk_cache.as_deref().map(|cache| ScanCache {
            cache,
            table_fingerprint: table.fingerprint(),
        });
        // With morsel recovery active on the compiled path, the injector
        // moves to the morsel fault surface (exec_par probes the same
        // (fingerprint, group, leaf) coordinates per morsel) and the
        // billing pre-pass here stays fault-free, so ScanStats are
        // byte-identical under injected faults.
        let faults_at_morsels = self.options.morsel_recovery && compiled.is_some();
        let scan_faults = if faults_at_morsels {
            None
        } else {
            self.fault_injector.as_deref().map(|injector| ScanFaults {
                injector,
                table_name: table.name(),
                table_fingerprint: table.fingerprint(),
            })
        };
        let projection = Projection::all();
        let run = nf2_columnar::ScanRequest::new(&table, &projection)
            .capability(PushdownCapability::None)
            .cache(scan_cache)
            .faults(scan_faults)
            .trace(&self.trace)
            .cancel(&self.cancel)
            .prune(prune_preds)
            .run()?;
        let scan = run.stats;
        let skip = run.skip.expect("prune() was supplied");
        let leaves: Vec<_> = table.schema().leaves().iter().collect();

        let cpu = Mutex::new(0.0f64);
        let mut threads_used = n_threads;
        let mut morsel_rec = nf2_columnar::MorselRecovery::default();
        let items = if let Some(plan) = &compiled {
            // Fused batch kernels over decoded column chunks: no row
            // materialization, no per-record interpretation (and hence no
            // simulated per-record overhead — the modeled JVM record cost
            // is exactly what compilation eliminates). The executor emits
            // one bin index per selected event, in event order — the same
            // sequence the interpreter produces for the template.
            let t0 = Instant::now();
            let workers = self.options.parallel_workers;
            let recovering = self.options.morsel_recovery;
            let bins = if workers > 1 || recovering {
                let opts = exec_par::ParOptions {
                    recovery: recovering.then(exec_par::RecoveryOptions::default),
                    ..exec_par::ParOptions::new(workers.max(1))
                };
                let morsel_faults = recovering
                    .then(|| {
                        self.fault_injector.as_deref().map(|injector| ScanFaults {
                            injector,
                            table_name: table.name(),
                            table_fingerprint: table.fingerprint(),
                        })
                    })
                    .flatten();
                exec_par::execute_with_faults(
                    plan,
                    &table,
                    Some(&skip),
                    &self.trace,
                    &self.cancel,
                    None,
                    &opts,
                    morsel_faults,
                )
                .map(|(bins, stats)| {
                    threads_used = stats.workers;
                    morsel_rec = stats.recovery;
                    bins
                })
            } else {
                physical_ir::execute(plan, &table, Some(&skip), &self.trace, &self.cancel)
            }
            .map_err(|e| match e {
                physical_ir::PirError::Columnar(c) => FlworError::from(c),
                physical_ir::PirError::Cancelled(c) => FlworError::Cancelled(c),
                e @ physical_ir::PirError::MorselPanic { .. } => FlworError::Dynamic(e.to_string()),
            })?;
            let out: Seq = bins.into_iter().map(Value::Int).collect();
            *cpu.lock() += t0.elapsed().as_secs_f64();
            out
        } else if n_threads <= 1 {
            let t0 = Instant::now();
            let mut rows = Vec::with_capacity(table.n_rows());
            let mut rows_done = 0u64;
            for (idx, g) in table.row_groups().iter().enumerate() {
                if skip[idx] {
                    continue;
                }
                self.cancel.check(obs::Stage::Materialize, rows_done)?;
                rows.extend(materialize_group(
                    g,
                    idx,
                    table.schema(),
                    &leaves,
                    preds,
                    &self.trace,
                )?);
                rows_done += g.n_rows() as u64;
            }
            let agg_span = self.trace.span(obs::Stage::Aggregate);
            // Overhead models per-record cost of everything the simulated
            // engine *scans*, so it is charged for all scanned rows
            // regardless of how many the pre-filter admits — but not for
            // rows in pruned groups, which are never read at all.
            self.busy_overhead(scan.rows as usize);
            let source = TableSource {
                rows: &rows,
                name: table.name(),
            };
            let interp = Interp::new(&module, &source)?;
            let out = interp.eval_body(&module, &Env::new())?;
            // Freeing the materialized rows is charged to the aggregate
            // span: it is real work proportional to the input.
            drop(interp);
            drop(rows);
            agg_span.finish();
            *cpu.lock() += t0.elapsed().as_secs_f64();
            out
        } else {
            // Partition-parallel: evaluate the module per row group and
            // concatenate in group order (sound for map-like FLWORs).
            let next = AtomicUsize::new(0);
            let results: Mutex<Vec<(usize, Seq)>> = Mutex::new(Vec::new());
            let first_err: Mutex<Option<FlworError>> = Mutex::new(None);
            let rows_done = std::sync::atomic::AtomicU64::new(0);
            let worker = || {
                let t0 = Instant::now();
                loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= n_groups {
                        break;
                    }
                    if skip[g] {
                        continue;
                    }
                    if let Err(c) = self
                        .cancel
                        .check(obs::Stage::Materialize, rows_done.load(Ordering::Relaxed))
                    {
                        first_err.lock().get_or_insert(FlworError::Cancelled(c));
                        break;
                    }
                    let r = (|| -> Result<Seq, FlworError> {
                        let group = &table.row_groups()[g];
                        let rows = materialize_group(
                            group,
                            g,
                            table.schema(),
                            &leaves,
                            preds,
                            &self.trace,
                        )?;
                        let agg_span = self
                            .trace
                            .span_with(obs::Stage::Aggregate, || format!("group {g}"));
                        self.busy_overhead(group.n_rows());
                        let source = TableSource {
                            rows: &rows,
                            name: table.name(),
                        };
                        let interp = Interp::new(&module, &source)?;
                        let out = interp.eval_body(&module, &Env::new());
                        drop(interp);
                        drop(rows);
                        agg_span.finish();
                        out
                    })();
                    match r {
                        Ok(seq) => {
                            rows_done.fetch_add(
                                table.row_groups()[g].n_rows() as u64,
                                Ordering::Relaxed,
                            );
                            results.lock().push((g, seq));
                        }
                        Err(e) => {
                            first_err.lock().get_or_insert(e);
                            break;
                        }
                    }
                }
                *cpu.lock() += t0.elapsed().as_secs_f64();
            };
            crossbeam::thread::scope(|s| {
                for _ in 0..n_threads {
                    s.spawn(|_| worker());
                }
            })
            .expect("scope");
            if let Some(e) = first_err.into_inner() {
                return Err(e);
            }
            let mut parts = results.into_inner();
            parts.sort_by_key(|(g, _)| *g);
            parts.into_iter().flat_map(|(_, s)| s).collect()
        };

        Ok(FlworOutput {
            items,
            stats: ExecStats {
                wall_seconds: start.elapsed().as_secs_f64(),
                cpu_seconds: cpu.into_inner(),
                threads_used,
                row_groups_skipped: scan.groups_pruned,
                scan,
                recovery: morsel_rec,
            },
        })
    }

    /// Simulated per-record overhead (documented Rumble substitution; the
    /// spin models JVM serialization cost per record).
    fn busy_overhead(&self, n_items: usize) {
        if self.options.overhead_ns_per_item == 0 {
            return;
        }
        let total =
            std::time::Duration::from_nanos(self.options.overhead_ns_per_item * n_items as u64);
        let t0 = Instant::now();
        while t0.elapsed() < total {
            std::hint::spin_loop();
        }
    }
}

/// Reads a row group, applying the vectorized pre-filter when one exists
/// (late materialization: only surviving rows are assembled into `Value`s).
fn materialize_group(
    group: &nf2_columnar::RowGroup,
    group_idx: usize,
    schema: &Schema,
    leaves: &[&nf2_columnar::LeafInfo],
    preds: &[ScalarPredicate],
    trace: &obs::TraceCtx,
) -> Result<Vec<Value>, FlworError> {
    if preds.is_empty() {
        let mat_span = trace.span_with(obs::Stage::Materialize, || format!("group {group_idx}"));
        let rows = group.read_rows(schema, leaves)?;
        drop(mat_span);
        return Ok(rows);
    }
    let mut filter_span = trace.span_with(obs::Stage::Filter, || format!("group {group_idx}"));
    let sel = nf2_columnar::apply_predicates(group, preds)?;
    if filter_span.is_enabled() {
        filter_span.add_rows_in(sel.n_rows() as u64);
        filter_span.add_rows_out(sel.len() as u64);
    }
    filter_span.finish();
    let mat_span = trace.span_with(obs::Stage::Materialize, || format!("group {group_idx}"));
    let rows = if sel.is_full() {
        group.read_rows(schema, leaves)?
    } else {
        group.read_rows_selected(schema, leaves, &sel)?
    };
    drop(mat_span);
    Ok(rows)
}

/// Extracts scalar `where` conjuncts of the shape `$e.path cmp literal`
/// (or flipped) from the top-level FLWOR's leading clauses, where `$e` is
/// the variable bound by `for $e in parquet-file(…)`. Only `where`
/// clauses that directly follow the `for` are inspected (later clauses may
/// rebind variables or change tuple cardinality), and only non-repeated,
/// non-boolean leaves qualify — those are exactly the cases where the
/// interpreter's existential comparison degenerates to the same scalar
/// compare the kernels implement. Anything that does not fit is simply
/// left to the interpreter: the `where` clause still runs on survivors, so
/// a skipped conjunct costs speed, never correctness.
fn prefilter_predicates(module: &Module, schema: &Schema) -> Vec<ScalarPredicate> {
    let Expr::Flwor { clauses, .. } = &module.body else {
        return Vec::new();
    };
    let Some(Clause::For { var, at, source }) = clauses.first() else {
        return Vec::new();
    };
    if at.is_some() || !matches!(source, Expr::Call(n, _) if n == "parquet-file") {
        return Vec::new();
    }
    // The table rows are shared by every `parquet-file(…)` call in the
    // module; filtering is only sound when this `for` is the sole reader.
    let mut reads = 0usize;
    for f in &module.functions {
        walk(&f.body, &mut |e| {
            if matches!(e, Expr::Call(n, _) if n == "parquet-file") {
                reads += 1;
            }
        });
    }
    walk(&module.body, &mut |e| {
        if matches!(e, Expr::Call(n, _) if n == "parquet-file") {
            reads += 1;
        }
    });
    if reads != 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for c in clauses.iter().skip(1) {
        match c {
            Clause::Where(p) => collect_scalar_conjuncts(p, var, schema, &mut out),
            _ => break,
        }
    }
    out
}

/// Splits `and`-chains and converts each qualifying conjunct.
fn collect_scalar_conjuncts(p: &Expr, var: &str, schema: &Schema, out: &mut Vec<ScalarPredicate>) {
    match p {
        Expr::And(a, b) => {
            collect_scalar_conjuncts(a, var, schema, out);
            collect_scalar_conjuncts(b, var, schema, out);
        }
        Expr::Cmp(a, op, b) => {
            let sides = [(a, b, false), (b, a, true)];
            for (path_side, lit_side, flipped) in sides {
                let Some(path) = member_path(path_side, var) else {
                    continue;
                };
                let Some(value) = literal_sel(lit_side) else {
                    continue;
                };
                let Some(leaf) = schema.leaf(&path) else {
                    continue;
                };
                if leaf.repeated || leaf.ptype == nf2_columnar::PhysicalType::Bool {
                    continue;
                }
                let cmp = match (op, flipped) {
                    (CmpOp::Lt, false) | (CmpOp::Gt, true) => SelCmp::Lt,
                    (CmpOp::Le, false) | (CmpOp::Ge, true) => SelCmp::Le,
                    (CmpOp::Gt, false) | (CmpOp::Lt, true) => SelCmp::Gt,
                    (CmpOp::Ge, false) | (CmpOp::Le, true) => SelCmp::Ge,
                    (CmpOp::Eq, _) => SelCmp::Eq,
                    (CmpOp::Ne, _) => SelCmp::Ne,
                };
                out.push(ScalarPredicate {
                    leaf: leaf.path.clone(),
                    cmp,
                    value,
                });
                break;
            }
        }
        _ => {}
    }
}

/// `$var.a.b.…` as a schema path (member access is case-sensitive in
/// JSONiq, so no canonicalization is needed).
fn member_path(e: &Expr, var: &str) -> Option<nested_value::Path> {
    let mut segs = Vec::new();
    let mut cur = e;
    loop {
        match cur {
            Expr::Member(inner, name) => {
                segs.push(name.as_str());
                cur = inner;
            }
            Expr::Var(v) if v == var => break,
            _ => return None,
        }
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    Some(nested_value::Path::parse(&segs.join(".")))
}

/// Numeric literals (including unary minus) as predicate values.
fn literal_sel(e: &Expr) -> Option<SelValue> {
    match e {
        Expr::Int(i) => Some(SelValue::Int(*i)),
        Expr::Float(f) => Some(SelValue::Float(*f)),
        Expr::Neg(inner) => match &**inner {
            Expr::Int(i) => i.checked_neg().map(SelValue::Int),
            Expr::Float(f) => Some(SelValue::Float(-f)),
            _ => None,
        },
        _ => None,
    }
}

/// Finds the (single) `parquet-file("…")` input name, if any.
fn find_input(module: &Module) -> Option<String> {
    let mut found = None;
    for f in &module.functions {
        walk(&f.body, &mut |e| {
            if let Expr::Call(name, args) = e {
                if name == "parquet-file" {
                    if let Some(Expr::Str(s)) = args.first() {
                        found.get_or_insert(s.clone());
                    }
                }
            }
        });
    }
    walk(&module.body, &mut |e| {
        if let Expr::Call(name, args) = e {
            if name == "parquet-file" {
                if let Some(Expr::Str(s)) = args.first() {
                    found.get_or_insert(s.clone());
                }
            }
        }
    });
    found
}

/// True when the module's top-level expression is a FLWOR whose first
/// clause iterates `parquet-file(…)` and whose clause list is map-like
/// (no group/order/count), so per-partition evaluation + concatenation is
/// equivalent to serial evaluation.
fn is_partitionable(module: &Module) -> bool {
    let Expr::Flwor { clauses, ret } = &module.body else {
        return false;
    };
    let Some(Clause::For { source, .. }) = clauses.first() else {
        return false;
    };
    if !matches!(source, Expr::Call(name, _) if name == "parquet-file") {
        return false;
    }
    // No other parquet-file use and no order-sensitive clauses.
    let mut extra_reads = 0usize;
    for c in clauses.iter().skip(1) {
        match c {
            Clause::GroupBy(_) | Clause::OrderBy(_) | Clause::Count(_) => return false,
            Clause::For { source, .. } | Clause::Let { value: source, .. } => {
                walk(source, &mut |e| {
                    if matches!(e, Expr::Call(n, _) if n == "parquet-file") {
                        extra_reads += 1;
                    }
                });
            }
            Clause::Where(p) => {
                walk(p, &mut |e| {
                    if matches!(e, Expr::Call(n, _) if n == "parquet-file") {
                        extra_reads += 1;
                    }
                });
            }
        }
    }
    walk(ret, &mut |e| {
        if matches!(e, Expr::Call(n, _) if n == "parquet-file") {
            extra_reads += 1;
        }
    });
    extra_reads == 0
}

/// Pre-order expression walk.
pub(crate) fn walk(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Sequence(items) => {
            for i in items {
                walk(i, f);
            }
        }
        Expr::Flwor { clauses, ret } => {
            for c in clauses {
                match c {
                    Clause::For { source, .. } => walk(source, f),
                    Clause::Let { value, .. } => walk(value, f),
                    Clause::Where(p) => walk(p, f),
                    Clause::GroupBy(keys) => {
                        for (_, ke) in keys {
                            if let Some(ke) = ke {
                                walk(ke, f);
                            }
                        }
                    }
                    Clause::OrderBy(keys) => {
                        for (ke, _) in keys {
                            walk(ke, f);
                        }
                    }
                    Clause::Count(_) => {}
                }
            }
            walk(ret, f);
        }
        Expr::If { cond, then, els } => {
            walk(cond, f);
            walk(then, f);
            walk(els, f);
        }
        Expr::Quantified {
            source, predicate, ..
        } => {
            walk(source, f);
            walk(predicate, f);
        }
        Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::Cmp(a, _, b)
        | Expr::Range(a, b)
        | Expr::Arith(a, _, b)
        | Expr::StrConcat(a, b)
        | Expr::ArrayAt(a, b)
        | Expr::Predicate(a, b) => {
            walk(a, f);
            walk(b, f);
        }
        Expr::Not(a) | Expr::Neg(a) | Expr::Member(a, _) | Expr::Unbox(a) => walk(a, f),
        Expr::ObjectCtor(pairs) => {
            for (k, v) in pairs {
                if let crate::ast::ObjectKey::Computed(ke) = k {
                    walk(ke, f);
                }
                walk(v, f);
            }
        }
        Expr::ArrayCtor(Some(inner)) => walk(inner, f),
        Expr::Call(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod prefilter_tests {
    use super::*;

    fn preds(q: &str) -> Vec<ScalarPredicate> {
        let module = crate::parser::parse_module(q).unwrap();
        let (_, table) = hep_model::generator::build_dataset(hep_model::DatasetSpec {
            n_events: 8,
            row_group_size: 8,
            seed: 1,
        });
        prefilter_predicates(&module, table.schema())
    }

    #[test]
    fn extracts_leading_scalar_conjuncts() {
        let p = preds(
            "for $e in parquet-file(\"events\") \
             where $e.MET.pt > 25.0 and $e.MET.phi < 1 \
             return $e.MET.pt",
        );
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].cmp, SelCmp::Gt);
        assert_eq!(p[0].value, SelValue::Float(25.0));
        assert_eq!(p[0].leaf.to_string(), "MET.pt");
        assert_eq!(p[1].cmp, SelCmp::Lt);
        assert_eq!(p[1].value, SelValue::Int(1));
    }

    #[test]
    fn flips_literal_on_left() {
        let p = preds(
            "for $e in parquet-file(\"events\") \
             where 25.0 le $e.MET.pt \
             return $e",
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].cmp, SelCmp::Ge);
    }

    #[test]
    fn skips_repeated_leaves_and_stops_at_non_where() {
        // Jet.pt is repeated: existential comparison, not a scalar one.
        assert!(preds(
            "for $e in parquet-file(\"events\") \
             where $e.Jet.pt > 5 return $e"
        )
        .is_empty());
        // A `let` may rebind; conjuncts after it are not hoisted.
        assert!(preds(
            "for $e in parquet-file(\"events\") \
             let $x := 1 where $e.MET.pt > 5 return $e"
        )
        .is_empty());
        // Positional variable: row identity matters downstream.
        assert!(preds(
            "for $e at $i in parquet-file(\"events\") \
             where $e.MET.pt > 5 return $i"
        )
        .is_empty());
    }
}
