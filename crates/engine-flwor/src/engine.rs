//! The public Rumble-like engine: register tables, execute modules.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use nested_value::Value;
use nf2_columnar::{ExecStats, Projection, PushdownCapability, Table};
use parking_lot::Mutex;

use crate::ast::{Clause, Expr, Module};
use crate::error::FlworError;
use crate::interp::{Env, Interp, Seq, Source};
use crate::parser;

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct FlworOptions {
    /// Worker threads (0 ⇒ all cores). Parallelism applies only to
    /// partitionable top-level FLWORs (see crate docs).
    pub n_threads: usize,
    /// Per-item interpretation overhead injected per event, in *simulated*
    /// nanoseconds of busy work. Models Rumble's JVM/Spark per-record
    /// overhead beyond what a tree-walking interpreter already costs.
    /// 0 disables (default).
    pub overhead_ns_per_item: u64,
}

impl Default for FlworOptions {
    fn default() -> Self {
        FlworOptions {
            n_threads: 0,
            overhead_ns_per_item: 0,
        }
    }
}

/// Result of executing a module.
#[derive(Clone, Debug)]
pub struct FlworOutput {
    /// The result sequence.
    pub items: Seq,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// The JSONiq engine (Rumble analog).
pub struct FlworEngine {
    options: FlworOptions,
    tables: Vec<Arc<Table>>,
}

struct TableSource<'a> {
    rows: &'a [Value],
    name: &'a str,
}

impl<'a> Source for TableSource<'a> {
    fn read(&self, name: &str) -> Result<Seq, FlworError> {
        if name == self.name {
            Ok(self.rows.to_vec())
        } else {
            Err(FlworError::Unresolved(format!("input {name}")))
        }
    }
}

impl FlworEngine {
    /// Creates an engine.
    pub fn new(options: FlworOptions) -> FlworEngine {
        FlworEngine {
            options,
            tables: Vec::new(),
        }
    }

    /// Registers a table; `parquet-file("<name>")` resolves to it.
    pub fn register(&mut self, table: Arc<Table>) {
        self.tables.push(table);
    }

    fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.iter().find(|t| t.name() == name)
    }

    /// Parses and executes a module.
    pub fn execute(&self, text: &str) -> Result<FlworOutput, FlworError> {
        let start = Instant::now();
        let module = parser::parse_module(text)?;

        // Which input does the module read?
        let input = find_input(&module);
        let Some(input_name) = input else {
            // Pure expression: no table access.
            let source = crate::interp::NoSource;
            let interp = Interp::new(&module, &source)?;
            let items = interp.eval_body(&module, &Env::new())?;
            return Ok(FlworOutput {
                items,
                stats: ExecStats {
                    wall_seconds: start.elapsed().as_secs_f64(),
                    cpu_seconds: start.elapsed().as_secs_f64(),
                    scan: Default::default(),
                    threads_used: 1,
                    row_groups_skipped: 0,
                },
            });
        };
        let table = self
            .table(&input_name)
            .ok_or_else(|| FlworError::Unresolved(format!("input {input_name}")))?
            .clone();

        // Rumble pushes no projections: the scan reads every leaf column.
        let scan = nf2_columnar::scan::scan_stats(
            &table,
            &Projection::all(),
            PushdownCapability::None,
        )?;
        let leaves: Vec<_> = table.schema().leaves().iter().collect();

        let partitionable = is_partitionable(&module);
        let n_groups = table.row_groups().len();
        let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
        let n_threads = if partitionable {
            let n = if self.options.n_threads == 0 {
                hw
            } else {
                self.options.n_threads
            };
            n.max(1).min(n_groups.max(1))
        } else {
            1
        };

        let cpu = Mutex::new(0.0f64);
        let items = if n_threads <= 1 {
            let t0 = Instant::now();
            let mut rows = Vec::with_capacity(table.n_rows());
            for g in table.row_groups() {
                rows.extend(g.read_rows(table.schema(), &leaves)?);
            }
            self.busy_overhead(rows.len());
            let source = TableSource {
                rows: &rows,
                name: table.name(),
            };
            let interp = Interp::new(&module, &source)?;
            let out = interp.eval_body(&module, &Env::new())?;
            *cpu.lock() += t0.elapsed().as_secs_f64();
            out
        } else {
            // Partition-parallel: evaluate the module per row group and
            // concatenate in group order (sound for map-like FLWORs).
            let next = AtomicUsize::new(0);
            let results: Mutex<Vec<(usize, Seq)>> = Mutex::new(Vec::new());
            let first_err: Mutex<Option<FlworError>> = Mutex::new(None);
            let worker = || {
                let t0 = Instant::now();
                loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= n_groups {
                        break;
                    }
                    let r = (|| -> Result<Seq, FlworError> {
                        let rows =
                            table.row_groups()[g].read_rows(table.schema(), &leaves)?;
                        self.busy_overhead(rows.len());
                        let source = TableSource {
                            rows: &rows,
                            name: table.name(),
                        };
                        let interp = Interp::new(&module, &source)?;
                        interp.eval_body(&module, &Env::new())
                    })();
                    match r {
                        Ok(seq) => results.lock().push((g, seq)),
                        Err(e) => {
                            first_err.lock().get_or_insert(e);
                            break;
                        }
                    }
                }
                *cpu.lock() += t0.elapsed().as_secs_f64();
            };
            crossbeam::thread::scope(|s| {
                for _ in 0..n_threads {
                    s.spawn(|_| worker());
                }
            })
            .expect("scope");
            if let Some(e) = first_err.into_inner() {
                return Err(e);
            }
            let mut parts = results.into_inner();
            parts.sort_by_key(|(g, _)| *g);
            parts.into_iter().flat_map(|(_, s)| s).collect()
        };

        Ok(FlworOutput {
            items,
            stats: ExecStats {
                wall_seconds: start.elapsed().as_secs_f64(),
                cpu_seconds: cpu.into_inner(),
                scan,
                threads_used: n_threads,
                row_groups_skipped: 0,
            },
        })
    }

    /// Simulated per-record overhead (documented Rumble substitution; the
    /// spin models JVM serialization cost per record).
    fn busy_overhead(&self, n_items: usize) {
        if self.options.overhead_ns_per_item == 0 {
            return;
        }
        let total = std::time::Duration::from_nanos(
            self.options.overhead_ns_per_item * n_items as u64,
        );
        let t0 = Instant::now();
        while t0.elapsed() < total {
            std::hint::spin_loop();
        }
    }
}

/// Finds the (single) `parquet-file("…")` input name, if any.
fn find_input(module: &Module) -> Option<String> {
    let mut found = None;
    for f in &module.functions {
        walk(&f.body, &mut |e| {
            if let Expr::Call(name, args) = e {
                if name == "parquet-file" {
                    if let Some(Expr::Str(s)) = args.first() {
                        found.get_or_insert(s.clone());
                    }
                }
            }
        });
    }
    walk(&module.body, &mut |e| {
        if let Expr::Call(name, args) = e {
            if name == "parquet-file" {
                if let Some(Expr::Str(s)) = args.first() {
                    found.get_or_insert(s.clone());
                }
            }
        }
    });
    found
}

/// True when the module's top-level expression is a FLWOR whose first
/// clause iterates `parquet-file(…)` and whose clause list is map-like
/// (no group/order/count), so per-partition evaluation + concatenation is
/// equivalent to serial evaluation.
fn is_partitionable(module: &Module) -> bool {
    let Expr::Flwor { clauses, ret } = &module.body else {
        return false;
    };
    let Some(Clause::For { source, .. }) = clauses.first() else {
        return false;
    };
    if !matches!(source, Expr::Call(name, _) if name == "parquet-file") {
        return false;
    }
    // No other parquet-file use and no order-sensitive clauses.
    let mut extra_reads = 0usize;
    for c in clauses.iter().skip(1) {
        match c {
            Clause::GroupBy(_) | Clause::OrderBy(_) | Clause::Count(_) => return false,
            Clause::For { source, .. } | Clause::Let { value: source, .. } => {
                walk(source, &mut |e| {
                    if matches!(e, Expr::Call(n, _) if n == "parquet-file") {
                        extra_reads += 1;
                    }
                });
            }
            Clause::Where(p) => {
                walk(p, &mut |e| {
                    if matches!(e, Expr::Call(n, _) if n == "parquet-file") {
                        extra_reads += 1;
                    }
                });
            }
        }
    }
    walk(ret, &mut |e| {
        if matches!(e, Expr::Call(n, _) if n == "parquet-file") {
            extra_reads += 1;
        }
    });
    extra_reads == 0
}

/// Pre-order expression walk.
fn walk(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Sequence(items) => {
            for i in items {
                walk(i, f);
            }
        }
        Expr::Flwor { clauses, ret } => {
            for c in clauses {
                match c {
                    Clause::For { source, .. } => walk(source, f),
                    Clause::Let { value, .. } => walk(value, f),
                    Clause::Where(p) => walk(p, f),
                    Clause::GroupBy(keys) => {
                        for (_, ke) in keys {
                            if let Some(ke) = ke {
                                walk(ke, f);
                            }
                        }
                    }
                    Clause::OrderBy(keys) => {
                        for (ke, _) in keys {
                            walk(ke, f);
                        }
                    }
                    Clause::Count(_) => {}
                }
            }
            walk(ret, f);
        }
        Expr::If { cond, then, els } => {
            walk(cond, f);
            walk(then, f);
            walk(els, f);
        }
        Expr::Quantified {
            source, predicate, ..
        } => {
            walk(source, f);
            walk(predicate, f);
        }
        Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::Cmp(a, _, b)
        | Expr::Range(a, b)
        | Expr::Arith(a, _, b)
        | Expr::StrConcat(a, b)
        | Expr::ArrayAt(a, b)
        | Expr::Predicate(a, b) => {
            walk(a, f);
            walk(b, f);
        }
        Expr::Not(a) | Expr::Neg(a) | Expr::Member(a, _) | Expr::Unbox(a) => walk(a, f),
        Expr::ObjectCtor(pairs) => {
            for (k, v) in pairs {
                if let crate::ast::ObjectKey::Computed(ke) = k {
                    walk(ke, f);
                }
                walk(v, f);
            }
        }
        Expr::ArrayCtor(Some(inner)) => walk(inner, f),
        Expr::Call(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        _ => {}
    }
}
