//! Lowering JSONiq modules to the shared vectorized physical IR.
//!
//! Recognition is by **canonical-template equality**: the incoming module
//! is probed for the numeric parameters of the benchmark's Q6-class shape
//! (plotted member, histogram edges and bin count, reference top mass),
//! the canonical module text is regenerated with those parameters, parsed
//! with this crate's own parser, and the two ASTs must be *equal* —
//! [`crate::ast`] nodes all derive `PartialEq`, and float literals compare
//! by value, so literal formatting is irrelevant while any semantic
//! deviation (a different comparison, an extra clause, a renamed variable)
//! makes the probe fail and execution fall back to the interpreter.
//! Fallback is therefore always sound: the compiled path runs only
//! modules provably identical to the template whose kernel replicates the
//! reference float path op for op.

use nested_value::Path;
use nf2_columnar::SelCmp;
use physical_ir::{ComputeNode, FilterNode, PhysPlan, TrijetCompute, TrijetPlot};
use physics::HistSpec;

use crate::ast::{ArithOp, Expr, Module};
use crate::engine::walk;
use crate::parser;

/// Parameters of the Q6-class template.
#[derive(Debug)]
struct TrijetParams {
    /// Plotted member of the winning system (`pt` or `btag`).
    plot: TrijetPlot,
    /// Histogram spec from the `hep:bin` call.
    spec: HistSpec,
    /// Candidate-distance reference mass from the `order by` key.
    top: f64,
}

/// Attempts to lower a parsed module to a physical plan. Returns `None`
/// for any module that is not exactly an instance of the supported
/// template — the caller falls back to the interpreter.
pub fn lower(module: &Module) -> Option<PhysPlan> {
    let params = extract_params(module)?;
    let canonical = parser::parse_module(&template_text(&params)).ok()?;
    if &canonical != module {
        return None;
    }
    let plot = params.plot;
    Some(PhysPlan {
        filters: vec![FilterNode::ListCount {
            leaf: Path::parse("Jet.pt"),
            elem: None,
            cmp: SelCmp::Ge,
            count: 3,
        }],
        compute: ComputeNode::Trijet(TrijetCompute {
            pt: Path::parse("Jet.pt"),
            eta: Path::parse("Jet.eta"),
            phi: Path::parse("Jet.phi"),
            mass: Path::parse("Jet.mass"),
            btag: Path::parse("Jet.btag"),
            top_mass: params.top,
            plot,
        }),
        spec: params.spec,
    })
}

/// Probes the fixed template positions for the parameters. Lenient on
/// purpose: a wrong guess regenerates a template that fails the equality
/// check, never a wrong plan.
fn extract_params(module: &Module) -> Option<TrijetParams> {
    // Plot member and hist spec from the return expression:
    // `hep:bin(hep:best-trijet($e.Jet[]).<member>, <lo>, <hi>, <bins>)`.
    let Expr::Flwor { ret, .. } = &module.body else {
        return None;
    };
    let Expr::Call(name, args) = &**ret else {
        return None;
    };
    if name != "hep:bin" || args.len() != 4 {
        return None;
    }
    let Expr::Member(_, member) = &args[0] else {
        return None;
    };
    let plot = match member.as_str() {
        "pt" => TrijetPlot::Pt,
        "btag" => TrijetPlot::MaxBtag,
        _ => return None,
    };
    let lo = float_lit(&args[1])?;
    let hi = float_lit(&args[2])?;
    let Expr::Int(bins) = &args[3] else {
        return None;
    };
    if *bins <= 0 {
        return None;
    }
    // Top mass from the `order by abs($mass - <top>)` key inside the
    // trijet function.
    let mut top = None;
    for f in &module.functions {
        if f.name != "hep:best-trijet" {
            continue;
        }
        walk(&f.body, &mut |e| {
            if let Expr::Call(n, a) = e {
                if n == "abs" && a.len() == 1 {
                    if let Expr::Arith(_, ArithOp::Sub, rhs) = &a[0] {
                        if let Some(t) = float_lit(rhs) {
                            top.get_or_insert(t);
                        }
                    }
                }
            }
        });
    }
    Some(TrijetParams {
        plot,
        spec: HistSpec {
            bins: *bins as usize,
            lo,
            hi,
        },
        top: top?,
    })
}

/// Numeric literal as `f64`.
fn float_lit(e: &Expr) -> Option<f64> {
    match e {
        Expr::Float(f) => Some(*f),
        Expr::Int(i) => Some(*i as f64),
        Expr::Neg(inner) => float_lit(inner).map(|f| -f),
        _ => None,
    }
}

/// Formats an `f64` so it parses back to the same bits (the equality
/// check compares parsed values, so only round-tripping matters).
fn flit(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// The canonical Q6-class module for a parameter set. Must parse to the
/// exact AST of the benchmark's JSONiq Q6a/Q6b texts (kept in the
/// benchmark core); drift between the two copies makes recognition fail,
/// which costs the compiled speedup but never correctness.
fn template_text(p: &TrijetParams) -> String {
    let member = match p.plot {
        TrijetPlot::Pt => "pt",
        TrijetPlot::MaxBtag => "btag",
    };
    format!(
        "declare function hep:bin($x, $lo, $hi, $n) {{\n\
         \x20 if ($x < $lo) then -1\n\
         \x20 else if ($x ge $hi) then $n\n\
         \x20 else let $b := integer(floor(($x - $lo) div (($hi - $lo) div $n)))\n\
         \x20      return if ($b > $n - 1) then $n - 1 else $b\n\
         }};\n\
         declare function hep:best-trijet($jets) {{\n\
         \x20 let $candidates := (\n\
         \x20   for $j1 at $i in $jets\n\
         \x20   for $j2 at $j in $jets\n\
         \x20   for $j3 at $k in $jets\n\
         \x20   where $i lt $j and $j lt $k\n\
         \x20   let $px1 := $j1.pt * cos($j1.phi) let $py1 := $j1.pt * sin($j1.phi) let $pz1 := $j1.pt * sinh($j1.eta)\n\
         \x20   let $px2 := $j2.pt * cos($j2.phi) let $py2 := $j2.pt * sin($j2.phi) let $pz2 := $j2.pt * sinh($j2.eta)\n\
         \x20   let $px3 := $j3.pt * cos($j3.phi) let $py3 := $j3.pt * sin($j3.phi) let $pz3 := $j3.pt * sinh($j3.eta)\n\
         \x20   let $e := sqrt($px1 * $px1 + $py1 * $py1 + $pz1 * $pz1 + $j1.mass * $j1.mass)\n\
         \x20          + sqrt($px2 * $px2 + $py2 * $py2 + $pz2 * $pz2 + $j2.mass * $j2.mass)\n\
         \x20          + sqrt($px3 * $px3 + $py3 * $py3 + $pz3 * $pz3 + $j3.mass * $j3.mass)\n\
         \x20   let $px := $px1 + $px2 + $px3 let $py := $py1 + $py2 + $py3 let $pz := $pz1 + $pz2 + $pz3\n\
         \x20   let $mass := sqrt(max((0.0, $e * $e - ($px * $px + $py * $py + $pz * $pz))))\n\
         \x20   order by abs($mass - {top})\n\
         \x20   return {{ \"pt\": sqrt($px * $px + $py * $py), \"btag\": max(($j1.btag, $j2.btag, $j3.btag)) }})\n\
         \x20 return $candidates[1]\n\
         }};\n\
         for $e in parquet-file(\"events\")\n\
         where size($e.Jet) ge 3\n\
         return hep:bin(hep:best-trijet($e.Jet[]).{member}, {lo}, {hi}, {bins})",
        top = flit(p.top),
        lo = flit(p.spec.lo),
        hi = flit(p.spec.hi),
        bins = p.spec.bins,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q6_text(member: &str) -> String {
        template_text(&TrijetParams {
            plot: if member == "pt" {
                TrijetPlot::Pt
            } else {
                TrijetPlot::MaxBtag
            },
            spec: HistSpec {
                bins: 100,
                lo: 15.0,
                hi: 40.0,
            },
            top: 172.5,
        })
    }

    #[test]
    fn lowers_canonical_q6_both_members() {
        for (member, plot) in [("pt", TrijetPlot::Pt), ("btag", TrijetPlot::MaxBtag)] {
            let module = parser::parse_module(&q6_text(member)).unwrap();
            let plan = lower(&module).expect("canonical Q6 must lower");
            let ComputeNode::Trijet(t) = &plan.compute else {
                panic!("expected trijet compute");
            };
            assert_eq!(t.plot, plot);
            assert_eq!(t.top_mass, 172.5);
            assert_eq!(plan.spec.bins, 100);
            assert_eq!(plan.spec.lo, 15.0);
            assert_eq!(plan.spec.hi, 40.0);
            assert_eq!(plan.filters.len(), 1);
        }
    }

    #[test]
    fn different_parameters_still_lower() {
        // The template is parameterized: other edges / top masses are
        // extracted and matched, not rejected.
        let text = q6_text("pt")
            .replace("172.5", "91.2")
            .replace("15.0", "0.0")
            .replace("40.0", "200.0");
        let module = parser::parse_module(&text).unwrap();
        let plan = lower(&module).expect("re-parameterized Q6 must lower");
        let ComputeNode::Trijet(t) = &plan.compute else {
            panic!("expected trijet compute");
        };
        assert_eq!(t.top_mass, 91.2);
        assert_eq!(plan.spec.lo, 0.0);
        assert_eq!(plan.spec.hi, 200.0);
    }

    #[test]
    fn semantic_deviation_falls_back() {
        // A changed jet-count threshold is NOT a template parameter.
        let text = q6_text("pt").replace("ge 3", "ge 2");
        let module = parser::parse_module(&text).unwrap();
        assert!(lower(&module).is_none());
        // A different order-by direction.
        let text = q6_text("pt").replace("order by abs", "order by -abs");
        if let Ok(module) = parser::parse_module(&text) {
            assert!(lower(&module).is_none());
        }
        // An unrelated module.
        let other =
            parser::parse_module("for $e in parquet-file(\"events\") return $e.MET.pt").unwrap();
        assert!(lower(&other).is_none());
    }
}
