//! Built-in JSONiq functions.

use nested_value::Value;

use crate::error::FlworError;
use crate::interp::{ebv, single, Seq};

/// Evaluates a builtin; `None` when the name is not a builtin (the caller
/// then tries user-declared functions).
pub fn eval_builtin(name: &str, args: &[Seq]) -> Option<Result<Seq, FlworError>> {
    Some(match name {
        "count" => arg1(name, args).map(|s| vec![Value::Int(s.len() as i64)]),
        "exists" => arg1(name, args).map(|s| vec![Value::Bool(!s.is_empty())]),
        "empty" => arg1(name, args).map(|s| vec![Value::Bool(s.is_empty())]),
        "boolean" => arg1(name, args).and_then(|s| Ok(vec![Value::Bool(ebv(s)?)])),
        "not" => arg1(name, args).and_then(|s| Ok(vec![Value::Bool(!ebv(s)?)])),
        "sum" => arg1(name, args).and_then(|s| {
            let mut acc = 0.0;
            let mut all_int = true;
            for v in s {
                match v {
                    Value::Int(i) => acc += *i as f64,
                    Value::Float(f) => {
                        acc += f;
                        all_int = false;
                    }
                    other => {
                        return Err(FlworError::Type(format!("sum over {}", other.type_name())))
                    }
                }
            }
            Ok(vec![if all_int {
                Value::Int(acc as i64)
            } else {
                Value::Float(acc)
            }])
        }),
        "avg" => arg1(name, args).and_then(|s| {
            if s.is_empty() {
                return Ok(Vec::new());
            }
            let mut acc = 0.0;
            for v in s {
                acc += v.as_f64().map_err(|e| FlworError::Type(e.to_string()))?;
            }
            Ok(vec![Value::Float(acc / s.len() as f64)])
        }),
        "min" | "max" => arg1(name, args).and_then(|s| {
            let mut best: Option<&Value> = None;
            for v in s {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = nested_value::ops::compare(v, b)
                            .map_err(|e| FlworError::Type(e.to_string()))?;
                        let take = if name == "max" {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().into_iter().collect())
        }),
        "abs" => num1(name, args, f64::abs, Some(|i: i64| i.abs())),
        "floor" => num1(name, args, f64::floor, Some(|i| i)),
        "ceiling" => num1(name, args, f64::ceil, Some(|i| i)),
        "round" => num1(name, args, f64::round, Some(|i| i)),
        "sqrt" => num1(name, args, f64::sqrt, None),
        "exp" => num1(name, args, f64::exp, None),
        "log" => num1(name, args, f64::ln, None),
        "log10" => num1(name, args, f64::log10, None),
        "cos" => num1(name, args, f64::cos, None),
        "sin" => num1(name, args, f64::sin, None),
        "tan" => num1(name, args, f64::tan, None),
        "cosh" => num1(name, args, f64::cosh, None),
        "sinh" => num1(name, args, f64::sinh, None),
        "tanh" => num1(name, args, f64::tanh, None),
        "acos" => num1(name, args, f64::acos, None),
        "asin" => num1(name, args, f64::asin, None),
        "atan" => num1(name, args, f64::atan, None),
        "pow" | "power" => num2(name, args, f64::powf),
        "atan2" => num2(name, args, f64::atan2),
        "pi" => {
            if args.is_empty() {
                Ok(vec![Value::Float(std::f64::consts::PI)])
            } else {
                Err(arity(name, 0, args.len()))
            }
        }
        "size" => arg1(name, args).and_then(|s| {
            if s.is_empty() {
                return Ok(Vec::new());
            }
            match single(s)? {
                Value::Array(a) => Ok(vec![Value::Int(a.len() as i64)]),
                other => Err(FlworError::Type(format!(
                    "size() expects an array, found {}",
                    other.type_name()
                ))),
            }
        }),
        "members" => arg1(name, args).and_then(|s| {
            let mut out = Vec::new();
            for v in s {
                match v {
                    Value::Array(a) => out.extend(a.iter().cloned()),
                    other => {
                        return Err(FlworError::Type(format!(
                            "members() expects arrays, found {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(out)
        }),
        "keys" => arg1(name, args).and_then(|s| {
            let mut out = Vec::new();
            for v in s {
                match v {
                    Value::Struct(o) => {
                        out.extend(o.iter().map(|(k, _)| Value::str(k)));
                    }
                    other => {
                        return Err(FlworError::Type(format!(
                            "keys() expects objects, found {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(out)
        }),
        "head" => arg1(name, args).map(|s| s.first().cloned().into_iter().collect()),
        "tail" => arg1(name, args).map(|s| s.iter().skip(1).cloned().collect()),
        "reverse" => arg1(name, args).map(|s| s.iter().rev().cloned().collect()),
        "distinct-values" => arg1(name, args).map(|s| {
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for v in s {
                let key = format!("{v}");
                if seen.insert(key) {
                    out.push(v.clone());
                }
            }
            out
        }),
        "string" => arg1(name, args).and_then(|s| {
            if s.is_empty() {
                return Ok(vec![Value::str("")]);
            }
            match single(s)? {
                Value::Str(x) => Ok(vec![Value::Str(x.clone())]),
                other => Ok(vec![Value::str(other.to_string())]),
            }
        }),
        "number" | "double" => arg1(name, args).and_then(|s| {
            if s.is_empty() {
                return Ok(Vec::new());
            }
            match single(s)? {
                Value::Int(i) => Ok(vec![Value::Float(*i as f64)]),
                Value::Float(f) => Ok(vec![Value::Float(*f)]),
                Value::Str(x) => Ok(vec![Value::Float(x.parse::<f64>().unwrap_or(f64::NAN))]),
                other => Err(FlworError::Type(format!(
                    "number() on {}",
                    other.type_name()
                ))),
            }
        }),
        "integer" => arg1(name, args).and_then(|s| match single(s)? {
            Value::Int(i) => Ok(vec![Value::Int(*i)]),
            Value::Float(f) => Ok(vec![Value::Int(*f as i64)]),
            other => Err(FlworError::Type(format!(
                "integer() on {}",
                other.type_name()
            ))),
        }),
        _ => return None,
    })
}

fn arity(name: &str, want: usize, got: usize) -> FlworError {
    FlworError::Dynamic(format!("{name} expects {want} argument(s), got {got}"))
}

fn arg1<'a>(name: &str, args: &'a [Seq]) -> Result<&'a Seq, FlworError> {
    match args {
        [a] => Ok(a),
        _ => Err(arity(name, 1, args.len())),
    }
}

type IntFn = fn(i64) -> i64;

fn num1(
    name: &str,
    args: &[Seq],
    f: fn(f64) -> f64,
    int_f: Option<IntFn>,
) -> Result<Seq, FlworError> {
    let a = arg1(name, args)?;
    if a.is_empty() {
        return Ok(Vec::new());
    }
    match single(a)? {
        Value::Int(i) => Ok(vec![match int_f {
            Some(g) => Value::Int(g(*i)),
            None => Value::Float(f(*i as f64)),
        }]),
        Value::Float(x) => Ok(vec![Value::Float(f(*x))]),
        other => Err(FlworError::Type(format!(
            "{name}() expects a number, found {}",
            other.type_name()
        ))),
    }
}

fn num2(name: &str, args: &[Seq], f: fn(f64, f64) -> f64) -> Result<Seq, FlworError> {
    match args {
        [a, b] => {
            if a.is_empty() || b.is_empty() {
                return Ok(Vec::new());
            }
            let x = single(a)?
                .as_f64()
                .map_err(|e| FlworError::Type(e.to_string()))?;
            let y = single(b)?
                .as_f64()
                .map_err(|e| FlworError::Type(e.to_string()))?;
            Ok(vec![Value::Float(f(x, y))])
        }
        _ => Err(arity(name, 2, args.len())),
    }
}
