//! Error type for the JSONiq engine.

use std::fmt;

use nf2_columnar::ScanError;

/// Errors from parsing or evaluating JSONiq.
#[derive(Debug, Clone, PartialEq)]
pub enum FlworError {
    /// Tokenizer failure.
    Lex(usize, String),
    /// Parser failure.
    Parse(String),
    /// Unbound variable or unknown function.
    Unresolved(String),
    /// Dynamic type error (JSONiq errors like XPTY0004/JNTY0004).
    Type(String),
    /// Other dynamic errors (arity, arithmetic, …).
    Dynamic(String),
    /// Substrate error.
    Columnar(String),
    /// Typed scan fault from the chaos layer (carries row group + leaf).
    Scan(ScanError),
    /// The run observed a tripped [`obs::CancelToken`] and stopped at a
    /// row-group boundary (expired deadline or explicit cancel).
    Cancelled(obs::Cancelled),
}

impl FlworError {
    /// The typed scan fault, when this error is one.
    pub fn scan_error(&self) -> Option<&ScanError> {
        match self {
            FlworError::Scan(e) => Some(e),
            _ => None,
        }
    }

    /// The typed cancellation payload, when this error is one.
    pub fn cancelled(&self) -> Option<&obs::Cancelled> {
        match self {
            FlworError::Cancelled(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for FlworError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlworError::Lex(pos, m) => write!(f, "lex error at byte {pos}: {m}"),
            FlworError::Parse(m) => write!(f, "parse error: {m}"),
            FlworError::Unresolved(m) => write!(f, "unresolved: {m}"),
            FlworError::Type(m) => write!(f, "type error: {m}"),
            FlworError::Dynamic(m) => write!(f, "dynamic error: {m}"),
            FlworError::Columnar(m) => write!(f, "storage error: {m}"),
            FlworError::Scan(e) => write!(f, "scan fault: {e}"),
            FlworError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for FlworError {}

impl From<nf2_columnar::ColumnarError> for FlworError {
    fn from(e: nf2_columnar::ColumnarError) -> Self {
        match e {
            nf2_columnar::ColumnarError::Cancelled(c) => FlworError::Cancelled(c),
            other => match other.into_scan_fault() {
                Ok(s) => FlworError::Scan(s),
                Err(m) => FlworError::Columnar(m),
            },
        }
    }
}

impl From<obs::Cancelled> for FlworError {
    fn from(c: obs::Cancelled) -> Self {
        FlworError::Cancelled(c)
    }
}
