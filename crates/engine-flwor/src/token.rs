//! JSONiq tokenizer.

use crate::error::FlworError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Name (possibly qualified, e.g. `hep:add-PtEtaPhiM`). JSONiq names
    /// may contain hyphens.
    Name(String),
    /// `$name` variable reference.
    Var(String),
    /// `$$` context item.
    ContextItem,
    /// Numeric literal.
    Number(String),
    /// String literal (double quotes).
    Str(String),
    /// Punctuation.
    Punct(&'static str),
}

impl Token {
    /// Keyword check (names only; JSONiq keywords are contextual).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Name(s) if s == kw)
    }

    /// Punctuation check.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Token::Punct(q) if *q == p)
    }
}

const PUNCTS: &[&str] = &[
    "[[", "]]", ":=", "!=", "<=", ">=", "||", "{", "}", "[", "]", "(", ")", ",", ".", ";", "+",
    "-", "*", "<", ">", "=", ":", "?",
];

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_name_part(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
}

/// Tokenizes JSONiq text. `(: comments :)` are skipped.
pub fn tokenize(src: &str) -> Result<Vec<Token>, FlworError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    'outer: while i < b.len() {
        let c = b[i];
        if (c as char).is_whitespace() {
            i += 1;
            continue;
        }
        // Comments `(: … :)` (nesting supported).
        if c == b'(' && b.get(i + 1) == Some(&b':') {
            let mut depth = 1;
            let mut j = i + 2;
            while j + 1 < b.len() && depth > 0 {
                if b[j] == b'(' && b[j + 1] == b':' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b':' && b[j + 1] == b')' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            if depth > 0 {
                return Err(FlworError::Lex(i, "unterminated comment".into()));
            }
            i = j;
            continue;
        }
        // Strings.
        if c == b'"' {
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                if j >= b.len() {
                    return Err(FlworError::Lex(i, "unterminated string".into()));
                }
                match b[j] {
                    b'"' => break,
                    b'\\' => {
                        let esc = b
                            .get(j + 1)
                            .ok_or_else(|| FlworError::Lex(j, "dangling escape".into()))?;
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            b'"' => '"',
                            b'\\' => '\\',
                            b'/' => '/',
                            other => {
                                return Err(FlworError::Lex(
                                    j,
                                    format!("unknown escape \\{}", *other as char),
                                ))
                            }
                        });
                        j += 2;
                    }
                    other => {
                        s.push(other as char);
                        j += 1;
                    }
                }
            }
            out.push(Token::Str(s));
            i = j + 1;
            continue;
        }
        // Variables and context item.
        if c == b'$' {
            if b.get(i + 1) == Some(&b'$') {
                out.push(Token::ContextItem);
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < b.len() && is_name_part(b[j]) {
                j += 1;
            }
            if j == i + 1 {
                return Err(FlworError::Lex(i, "expected variable name after $".into()));
            }
            out.push(Token::Var(src[i + 1..j].to_string()));
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())) {
            let start = i;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                i += 1;
            }
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            out.push(Token::Number(src[start..i].to_string()));
            continue;
        }
        // Names (with optional `prefix:` qualification).
        if is_name_start(c) {
            let start = i;
            while i < b.len() && is_name_part(b[i]) {
                i += 1;
            }
            // QName: `prefix:name` — only when ':' is not part of ':='.
            if i < b.len() && b[i] == b':' && b.get(i + 1).is_some_and(|n| is_name_start(*n)) {
                i += 1;
                while i < b.len() && is_name_part(b[i]) {
                    i += 1;
                }
            }
            out.push(Token::Name(src[start..i].to_string()));
            continue;
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Token::Punct(p));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(FlworError::Lex(
            i,
            format!("unexpected character {:?}", c as char),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_and_context_item() {
        let t = tokenize("for $event in $events where $$.pt").unwrap();
        assert!(t[0].is_kw("for"));
        assert_eq!(t[1], Token::Var("event".into()));
        assert_eq!(t[2], Token::Name("in".into()));
        assert_eq!(t[3], Token::Var("events".into()));
        assert!(t.contains(&Token::ContextItem));
    }

    #[test]
    fn qnames_with_hyphens() {
        let t = tokenize("hep:add-PtEtaPhiM2($p1, $p2)").unwrap();
        assert_eq!(t[0], Token::Name("hep:add-PtEtaPhiM2".into()));
    }

    #[test]
    fn assign_vs_qname() {
        let t = tokenize("let $x := a:b").unwrap();
        assert_eq!(t[2], Token::Punct(":="));
        assert_eq!(t[3], Token::Name("a:b".into()));
    }

    #[test]
    fn double_brackets() {
        let t = tokenize("$a[[1]] $b[] $c[2]").unwrap();
        assert!(t.iter().any(|x| x.is_punct("[[")));
        assert!(t.iter().any(|x| x.is_punct("]]")));
    }

    #[test]
    fn comments_and_strings() {
        let t = tokenize(r#"(: hello (: nested :) :) "a\"b""#).unwrap();
        assert_eq!(t, vec![Token::Str("a\"b".into())]);
        assert!(tokenize("(: open").is_err());
        assert!(tokenize("\"open").is_err());
    }
}
