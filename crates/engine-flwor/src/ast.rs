//! JSONiq AST.

/// A parsed module: function declarations followed by the main expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    /// `declare function name($p, …) { body }` declarations.
    pub functions: Vec<FunctionDecl>,
    /// The main query expression.
    pub body: Expr,
}

/// A user-declared function.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionDecl {
    /// Qualified name (e.g. `hep:histogram`).
    pub name: String,
    /// Parameter names (without `$`).
    pub params: Vec<String>,
    /// Body expression.
    pub body: Expr,
}

/// FLWOR clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Clause {
    /// `for $x (at $i)? in expr` — one binding per clause (multiple
    /// bindings are parsed into consecutive clauses).
    For {
        /// Bound variable.
        var: String,
        /// Positional variable (`at $i`), 1-based.
        at: Option<String>,
        /// Source sequence.
        source: Expr,
    },
    /// `let $x := expr`.
    Let {
        /// Bound variable.
        var: String,
        /// Value expression.
        value: Expr,
    },
    /// `where expr`.
    Where(Expr),
    /// `group by $k := expr, …` — after grouping, non-grouping variables
    /// re-bind to the sequence of their per-tuple values.
    GroupBy(Vec<(String, Option<Expr>)>),
    /// `order by expr (descending)?, …`.
    OrderBy(Vec<(Expr, bool)>),
    /// `count $c`.
    Count(String),
}

/// Comparison operators (general, existential semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` / `eq`
    Eq,
    /// `!=` / `ne`
    Ne,
    /// `<` / `lt`
    Lt,
    /// `<=` / `le`
    Le,
    /// `>` / `gt`
    Gt,
    /// `>=` / `ge`
    Ge,
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `idiv`
    IDiv,
    /// `mod`
    Mod,
}

/// JSONiq expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// `null`.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Decimal/double literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `$var`.
    Var(String),
    /// `$$` context item.
    ContextItem,
    /// Sequence construction `e1, e2` (flattens).
    Sequence(Vec<Expr>),
    /// FLWOR expression.
    Flwor {
        /// Clauses in order (first is for/let).
        clauses: Vec<Clause>,
        /// `return` expression.
        ret: Box<Expr>,
    },
    /// `if (c) then a else b`.
    If {
        /// Condition (EBV).
        cond: Box<Expr>,
        /// Then branch.
        then: Box<Expr>,
        /// Else branch.
        els: Box<Expr>,
    },
    /// `some $x in e satisfies p` / `every …`.
    Quantified {
        /// True for `every`, false for `some`.
        every: bool,
        /// Bound variable.
        var: String,
        /// Source sequence.
        source: Box<Expr>,
        /// Predicate.
        predicate: Box<Expr>,
    },
    /// `a or b`.
    Or(Box<Expr>, Box<Expr>),
    /// `a and b`.
    And(Box<Expr>, Box<Expr>),
    /// `not e` (also available as the `not(…)` function).
    Not(Box<Expr>),
    /// General comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// `a to b` integer range.
    Range(Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Concatenation `a || b` (strings).
    StrConcat(Box<Expr>, Box<Expr>),
    /// `.field` member lookup (maps over sequences).
    Member(Box<Expr>, String),
    /// `[]` array unboxing (maps over sequences).
    Unbox(Box<Expr>),
    /// `[[i]]` array member access (1-based).
    ArrayAt(Box<Expr>, Box<Expr>),
    /// `[p]` predicate filter (boolean or positional).
    Predicate(Box<Expr>, Box<Expr>),
    /// Object constructor `{ "k": v, … }`.
    ObjectCtor(Vec<(ObjectKey, Expr)>),
    /// Array constructor `[ e ]`.
    ArrayCtor(Option<Box<Expr>>),
    /// Static function call `name(args…)`.
    Call(String, Vec<Expr>),
}

/// Object constructor key: a literal name or a computed expression.
#[derive(Clone, Debug, PartialEq)]
pub enum ObjectKey {
    /// Literal key.
    Name(String),
    /// Computed key (must evaluate to a string).
    Computed(Expr),
}
