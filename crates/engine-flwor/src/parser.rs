//! Recursive-descent parser for the JSONiq subset.

use crate::ast::*;
use crate::error::FlworError;
use crate::token::{tokenize, Token};

/// Parses a module (function declarations + main expression).
pub fn parse_module(src: &str) -> Result<Module, FlworError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    while p.peek_kw("declare") {
        functions.push(p.function_decl()?);
        p.eat_punct(";")?;
    }
    let body = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(FlworError::Parse(format!(
            "trailing tokens starting at {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(Module { functions, body })
}

/// Parses a standalone expression.
pub fn parse_expr(src: &str) -> Result<Expr, FlworError> {
    let m = parse_module(src)?;
    if !m.functions.is_empty() {
        return Err(FlworError::Parse("unexpected function declarations".into()));
    }
    Ok(m.body)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, k: usize) -> Option<&Token> {
        self.tokens.get(self.pos + k)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn peek_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn accept_punct(&mut self, p: &str) -> bool {
        if self.peek_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), FlworError> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(FlworError::Parse(format!(
                "expected '{kw}', found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), FlworError> {
        if self.accept_punct(p) {
            Ok(())
        } else {
            Err(FlworError::Parse(format!(
                "expected '{p}', found {:?}",
                self.peek()
            )))
        }
    }

    fn var(&mut self) -> Result<String, FlworError> {
        match self.peek() {
            Some(Token::Var(v)) => {
                let v = v.clone();
                self.pos += 1;
                Ok(v)
            }
            other => Err(FlworError::Parse(format!("expected $var, found {other:?}"))),
        }
    }

    fn name(&mut self) -> Result<String, FlworError> {
        match self.peek() {
            Some(Token::Name(n)) => {
                let n = n.clone();
                self.pos += 1;
                Ok(n)
            }
            other => Err(FlworError::Parse(format!("expected name, found {other:?}"))),
        }
    }

    fn function_decl(&mut self) -> Result<FunctionDecl, FlworError> {
        self.eat_kw("declare")?;
        self.eat_kw("function")?;
        let name = self.name()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.peek_punct(")") {
            loop {
                params.push(self.var()?);
                if !self.accept_punct(",") {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        self.eat_punct("{")?;
        let body = self.expr()?;
        self.eat_punct("}")?;
        Ok(FunctionDecl { name, params, body })
    }

    /// Expr := ExprSingle ("," ExprSingle)* — sequence construction.
    fn expr(&mut self) -> Result<Expr, FlworError> {
        let first = self.expr_single()?;
        if !self.peek_punct(",") {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.accept_punct(",") {
            items.push(self.expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn expr_single(&mut self) -> Result<Expr, FlworError> {
        if self.peek_kw("for") || self.peek_kw("let") {
            return self.flwor();
        }
        if self.peek_kw("if") && self.peek_at(1).is_some_and(|t| t.is_punct("(")) {
            return self.if_expr();
        }
        if self.peek_kw("some") || self.peek_kw("every") {
            return self.quantified();
        }
        self.or_expr()
    }

    fn flwor(&mut self) -> Result<Expr, FlworError> {
        let mut clauses = Vec::new();
        loop {
            if self.accept_kw("for") {
                loop {
                    let var = self.var()?;
                    let at = if self.accept_kw("at") {
                        Some(self.var()?)
                    } else {
                        None
                    };
                    self.eat_kw("in")?;
                    let source = self.expr_single()?;
                    clauses.push(Clause::For { var, at, source });
                    if !self.accept_punct(",") {
                        break;
                    }
                }
            } else if self.accept_kw("let") {
                loop {
                    let var = self.var()?;
                    self.eat_punct(":=")?;
                    let value = self.expr_single()?;
                    clauses.push(Clause::Let { var, value });
                    if !self.accept_punct(",") {
                        break;
                    }
                }
            } else if self.accept_kw("where") {
                clauses.push(Clause::Where(self.expr_single()?));
            } else if self.peek_kw("group") && self.peek_at(1).is_some_and(|t| t.is_kw("by")) {
                self.pos += 2;
                let mut keys = Vec::new();
                loop {
                    let var = self.var()?;
                    let expr = if self.accept_punct(":=") {
                        Some(self.expr_single()?)
                    } else {
                        None
                    };
                    keys.push((var, expr));
                    if !self.accept_punct(",") {
                        break;
                    }
                }
                clauses.push(Clause::GroupBy(keys));
            } else if self.peek_kw("order") && self.peek_at(1).is_some_and(|t| t.is_kw("by")) {
                self.pos += 2;
                let mut keys = Vec::new();
                loop {
                    let e = self.expr_single()?;
                    let desc = if self.accept_kw("descending") {
                        true
                    } else {
                        self.accept_kw("ascending");
                        false
                    };
                    keys.push((e, desc));
                    if !self.accept_punct(",") {
                        break;
                    }
                }
                clauses.push(Clause::OrderBy(keys));
            } else if self.peek_kw("count")
                && self.peek_at(1).is_some_and(|t| matches!(t, Token::Var(_)))
            {
                self.pos += 1;
                clauses.push(Clause::Count(self.var()?));
            } else {
                break;
            }
        }
        self.eat_kw("return")?;
        let ret = self.expr_single()?;
        Ok(Expr::Flwor {
            clauses,
            ret: Box::new(ret),
        })
    }

    fn if_expr(&mut self) -> Result<Expr, FlworError> {
        self.eat_kw("if")?;
        self.eat_punct("(")?;
        let cond = self.expr()?;
        self.eat_punct(")")?;
        self.eat_kw("then")?;
        let then = self.expr_single()?;
        self.eat_kw("else")?;
        let els = self.expr_single()?;
        Ok(Expr::If {
            cond: Box::new(cond),
            then: Box::new(then),
            els: Box::new(els),
        })
    }

    fn quantified(&mut self) -> Result<Expr, FlworError> {
        let every = if self.accept_kw("every") {
            true
        } else {
            self.eat_kw("some")?;
            false
        };
        let var = self.var()?;
        self.eat_kw("in")?;
        let source = self.expr_single()?;
        self.eat_kw("satisfies")?;
        let predicate = self.expr_single()?;
        Ok(Expr::Quantified {
            every,
            var,
            source: Box::new(source),
            predicate: Box::new(predicate),
        })
    }

    fn or_expr(&mut self) -> Result<Expr, FlworError> {
        let mut e = self.and_expr()?;
        while self.accept_kw("or") {
            let r = self.and_expr()?;
            e = Expr::Or(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, FlworError> {
        let mut e = self.not_expr()?;
        while self.accept_kw("and") {
            let r = self.not_expr()?;
            e = Expr::And(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, FlworError> {
        // `not` is also a builtin function; treat bare keyword as operator
        // only when not followed by '('.
        if self.peek_kw("not") && !self.peek_at(1).is_some_and(|t| t.is_punct("(")) {
            self.pos += 1;
            let e = self.not_expr()?;
            return Ok(Expr::Not(Box::new(e)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, FlworError> {
        let e = self.range_expr()?;
        let op = if self.accept_punct("=") || self.accept_keyword_op("eq") {
            CmpOp::Eq
        } else if self.accept_punct("!=") || self.accept_keyword_op("ne") {
            CmpOp::Ne
        } else if self.accept_punct("<=") || self.accept_keyword_op("le") {
            CmpOp::Le
        } else if self.accept_punct(">=") || self.accept_keyword_op("ge") {
            CmpOp::Ge
        } else if self.accept_punct("<") || self.accept_keyword_op("lt") {
            CmpOp::Lt
        } else if self.accept_punct(">") || self.accept_keyword_op("gt") {
            CmpOp::Gt
        } else {
            return Ok(e);
        };
        let r = self.range_expr()?;
        Ok(Expr::Cmp(Box::new(e), op, Box::new(r)))
    }

    fn accept_keyword_op(&mut self, kw: &str) -> bool {
        self.accept_kw(kw)
    }

    fn range_expr(&mut self) -> Result<Expr, FlworError> {
        let e = self.additive()?;
        if self.accept_kw("to") {
            let hi = self.additive()?;
            return Ok(Expr::Range(Box::new(e), Box::new(hi)));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, FlworError> {
        let mut e = self.multiplicative()?;
        loop {
            if self.accept_punct("+") {
                let r = self.multiplicative()?;
                e = Expr::Arith(Box::new(e), ArithOp::Add, Box::new(r));
            } else if self.accept_punct("-") {
                let r = self.multiplicative()?;
                e = Expr::Arith(Box::new(e), ArithOp::Sub, Box::new(r));
            } else if self.accept_punct("||") {
                let r = self.multiplicative()?;
                e = Expr::StrConcat(Box::new(e), Box::new(r));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, FlworError> {
        let mut e = self.unary()?;
        loop {
            let op = if self.accept_punct("*") {
                ArithOp::Mul
            } else if self.accept_kw("div") {
                ArithOp::Div
            } else if self.accept_kw("idiv") {
                ArithOp::IDiv
            } else if self.accept_kw("mod") {
                ArithOp::Mod
            } else {
                break;
            };
            let r = self.unary()?;
            e = Expr::Arith(Box::new(e), op, Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, FlworError> {
        if self.accept_punct("-") {
            let e = self.unary()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        if self.accept_punct("+") {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, FlworError> {
        let mut e = self.primary()?;
        loop {
            if self.accept_punct(".") {
                let field = self.name()?;
                e = Expr::Member(Box::new(e), field);
            } else if self.accept_punct("[[") {
                let idx = self.expr()?;
                self.eat_punct("]]")?;
                e = Expr::ArrayAt(Box::new(e), Box::new(idx));
            } else if self.peek_punct("[") {
                // `[]` unboxing vs `[p]` predicate.
                self.pos += 1;
                if self.accept_punct("]") {
                    e = Expr::Unbox(Box::new(e));
                } else {
                    let p = self.expr()?;
                    self.eat_punct("]")?;
                    e = Expr::Predicate(Box::new(e), Box::new(p));
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, FlworError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(Expr::Float)
                        .map_err(|_| FlworError::Parse(format!("bad number {n}")))
                } else {
                    n.parse::<i64>()
                        .map(Expr::Int)
                        .map_err(|_| FlworError::Parse(format!("bad integer {n}")))
                }
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Token::Var(v)) => {
                self.pos += 1;
                Ok(Expr::Var(v))
            }
            Some(Token::ContextItem) => {
                self.pos += 1;
                Ok(Expr::ContextItem)
            }
            Some(Token::Punct("(")) => {
                self.pos += 1;
                if self.accept_punct(")") {
                    return Ok(Expr::Sequence(Vec::new()));
                }
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Some(Token::Punct("{")) => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if !self.peek_punct("}") {
                    loop {
                        let key = match self.peek().cloned() {
                            Some(Token::Str(s)) => {
                                self.pos += 1;
                                ObjectKey::Name(s)
                            }
                            Some(Token::Name(n))
                                if self.peek_at(1).is_some_and(|t| t.is_punct(":")) =>
                            {
                                self.pos += 1;
                                ObjectKey::Name(n)
                            }
                            _ => ObjectKey::Computed(self.expr_single()?),
                        };
                        self.eat_punct(":")?;
                        let value = self.expr_single()?;
                        pairs.push((key, value));
                        if !self.accept_punct(",") {
                            break;
                        }
                    }
                }
                self.eat_punct("}")?;
                Ok(Expr::ObjectCtor(pairs))
            }
            Some(Token::Punct("[")) => {
                self.pos += 1;
                if self.accept_punct("]") {
                    return Ok(Expr::ArrayCtor(None));
                }
                let e = self.expr()?;
                self.eat_punct("]")?;
                Ok(Expr::ArrayCtor(Some(Box::new(e))))
            }
            Some(Token::Name(n)) => {
                match n.as_str() {
                    "null" => {
                        self.pos += 1;
                        return Ok(Expr::Null);
                    }
                    "true" => {
                        self.pos += 1;
                        return Ok(Expr::Bool(true));
                    }
                    "false" => {
                        self.pos += 1;
                        return Ok(Expr::Bool(false));
                    }
                    _ => {}
                }
                if self.peek_at(1).is_some_and(|t| t.is_punct("(")) {
                    self.pos += 2;
                    let mut args = Vec::new();
                    if !self.peek_punct(")") {
                        loop {
                            args.push(self.expr_single()?);
                            if !self.accept_punct(",") {
                                break;
                            }
                        }
                    }
                    self.eat_punct(")")?;
                    Ok(Expr::Call(n, args))
                } else {
                    Err(FlworError::Parse(format!("unexpected name '{n}'")))
                }
            }
            other => Err(FlworError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_flwor() {
        let e = parse_expr("for $x in $xs where $x > 2 return $x * 2").unwrap();
        match e {
            Expr::Flwor { clauses, .. } => {
                assert_eq!(clauses.len(), 2);
                assert!(matches!(clauses[0], Clause::For { .. }));
                assert!(matches!(clauses[1], Clause::Where(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_navigation() {
        let e = parse_expr("$events.jet[][$$.pt > 40].eta").unwrap();
        // .eta ( predicate ( unbox ( member($events, jet) ) ) )
        assert!(matches!(e, Expr::Member(_, ref f) if f == "eta"));
    }

    #[test]
    fn for_at_and_multiple_bindings() {
        let e = parse_expr("for $j1 at $i in $jets, $j2 at $k in $jets where $i < $k return $j1")
            .unwrap();
        match e {
            Expr::Flwor { clauses, .. } => {
                assert!(matches!(
                    &clauses[0],
                    Clause::For { at: Some(i), .. } if i == "i"
                ));
                assert!(matches!(&clauses[1], Clause::For { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_by_and_order_by() {
        let e = parse_expr(
            "for $x in $xs let $b := floor($x) group by $k := $b order by $k descending \
             return { bin: $k, n: count($x) }",
        )
        .unwrap();
        match e {
            Expr::Flwor { clauses, .. } => {
                assert!(clauses.iter().any(|c| matches!(c, Clause::GroupBy(_))));
                assert!(clauses
                    .iter()
                    .any(|c| matches!(c, Clause::OrderBy(keys) if keys[0].1)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_declarations() {
        let m = parse_module(
            "declare function hep:square($x) { $x * $x };\n\
             declare function hep:add($a, $b) { $a + $b };\n\
             hep:add(hep:square(3), 4)",
        )
        .unwrap();
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.functions[0].name, "hep:square");
        assert!(matches!(m.body, Expr::Call(ref n, _) if n == "hep:add"));
    }

    #[test]
    fn object_and_array_ctors() {
        let e = parse_expr(r#"{ "x": 1, y: [2, 3], "z": {} }"#).unwrap();
        assert!(matches!(e, Expr::ObjectCtor(ref ps) if ps.len() == 3));
        let e = parse_expr("[]").unwrap();
        assert_eq!(e, Expr::ArrayCtor(None));
    }

    #[test]
    fn array_positional_access() {
        let e = parse_expr("$a[[2]]").unwrap();
        assert!(matches!(e, Expr::ArrayAt(_, _)));
        let e = parse_expr("$s[3]").unwrap();
        assert!(matches!(e, Expr::Predicate(_, _)));
    }

    #[test]
    fn quantified_expressions() {
        let e = parse_expr("some $m in $muons satisfies $m.pt > 10").unwrap();
        assert!(matches!(e, Expr::Quantified { every: false, .. }));
        let e = parse_expr("every $m in $muons satisfies $m.pt > 10").unwrap();
        assert!(matches!(e, Expr::Quantified { every: true, .. }));
    }

    #[test]
    fn range_and_idiv() {
        let e = parse_expr("1 to 10").unwrap();
        assert!(matches!(e, Expr::Range(_, _)));
        let e = parse_expr("7 idiv 2").unwrap();
        assert!(matches!(e, Expr::Arith(_, ArithOp::IDiv, _)));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_expr("1 + 2 garbage(").is_err());
        assert!(parse_expr("for $x in").is_err());
    }
}
