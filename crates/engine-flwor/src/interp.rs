//! The JSONiq evaluator: sequences of items, tuple streams, lexical
//! environments.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use nested_value::{StructValue, Value};

use crate::ast::*;
use crate::builtins;
use crate::error::FlworError;

/// A JSONiq value sequence (always flat).
pub type Seq = Vec<Value>;

/// Resolves `parquet-file(name)` calls to item sequences.
pub trait Source {
    /// Returns the items of the named input.
    fn read(&self, name: &str) -> Result<Seq, FlworError>;
}

/// A source with no inputs (pure expressions).
pub struct NoSource;

impl Source for NoSource {
    fn read(&self, name: &str) -> Result<Seq, FlworError> {
        Err(FlworError::Unresolved(format!("input {name}")))
    }
}

/// Lexical environment: outer bindings + the current FLWOR tuple.
#[derive(Clone, Default)]
pub struct Env {
    vars: Vec<(String, Rc<Seq>)>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Extends with a binding (returns a new env).
    pub fn with(&self, name: &str, value: Rc<Seq>) -> Env {
        let mut vars = self.vars.clone();
        vars.push((name.to_string(), value));
        Env { vars }
    }

    fn lookup(&self, name: &str) -> Option<&Rc<Seq>> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

/// The interpreter: declared functions plus an input source.
pub struct Interp<'m, S: Source> {
    functions: HashMap<String, &'m FunctionDecl>,
    source: &'m S,
}

impl<'m, S: Source> Interp<'m, S> {
    /// Builds an interpreter for a module.
    pub fn new(module: &'m Module, source: &'m S) -> Result<Self, FlworError> {
        let mut functions = HashMap::new();
        for f in &module.functions {
            if functions.insert(f.name.clone(), f).is_some() {
                return Err(FlworError::Parse(format!("duplicate function {}", f.name)));
            }
        }
        Ok(Interp { functions, source })
    }

    /// Evaluates the module body in an environment.
    pub fn eval_body(&self, module: &Module, env: &Env) -> Result<Seq, FlworError> {
        self.eval(&module.body, env)
    }

    /// Evaluates an expression to a sequence.
    pub fn eval(&self, e: &Expr, env: &Env) -> Result<Seq, FlworError> {
        match e {
            Expr::Null => Ok(vec![Value::Null]),
            Expr::Bool(b) => Ok(vec![Value::Bool(*b)]),
            Expr::Int(i) => Ok(vec![Value::Int(*i)]),
            Expr::Float(f) => Ok(vec![Value::Float(*f)]),
            Expr::Str(s) => Ok(vec![Value::str(s.as_str())]),
            Expr::Var(v) => env
                .lookup(v)
                .map(|s| s.as_ref().clone())
                .ok_or_else(|| FlworError::Unresolved(format!("${v}"))),
            Expr::ContextItem => env
                .lookup("$$")
                .map(|s| s.as_ref().clone())
                .ok_or_else(|| FlworError::Unresolved("context item".into())),
            Expr::Sequence(items) => {
                let mut out = Vec::new();
                for item in items {
                    out.extend(self.eval(item, env)?);
                }
                Ok(out)
            }
            Expr::Flwor { clauses, ret } => self.eval_flwor(clauses, ret, env),
            Expr::If { cond, then, els } => {
                let c = self.eval(cond, env)?;
                if ebv(&c)? {
                    self.eval(then, env)
                } else {
                    self.eval(els, env)
                }
            }
            Expr::Quantified {
                every,
                var,
                source,
                predicate,
            } => {
                let items = self.eval(source, env)?;
                for item in items {
                    let inner = env.with(var, Rc::new(vec![item]));
                    let p = ebv(&self.eval(predicate, &inner)?)?;
                    if *every && !p {
                        return Ok(vec![Value::Bool(false)]);
                    }
                    if !*every && p {
                        return Ok(vec![Value::Bool(true)]);
                    }
                }
                Ok(vec![Value::Bool(*every)])
            }
            Expr::Or(a, b) => {
                let left = ebv(&self.eval(a, env)?)?;
                if left {
                    Ok(vec![Value::Bool(true)])
                } else {
                    Ok(vec![Value::Bool(ebv(&self.eval(b, env)?)?)])
                }
            }
            Expr::And(a, b) => {
                let left = ebv(&self.eval(a, env)?)?;
                if !left {
                    Ok(vec![Value::Bool(false)])
                } else {
                    Ok(vec![Value::Bool(ebv(&self.eval(b, env)?)?)])
                }
            }
            Expr::Not(a) => Ok(vec![Value::Bool(!ebv(&self.eval(a, env)?)?)]),
            Expr::Cmp(a, op, b) => {
                let left = self.eval(a, env)?;
                let right = self.eval(b, env)?;
                Ok(vec![Value::Bool(general_compare(&left, *op, &right)?)])
            }
            Expr::Range(a, b) => {
                let lo = self.eval(a, env)?;
                let hi = self.eval(b, env)?;
                if lo.is_empty() || hi.is_empty() {
                    return Ok(Vec::new());
                }
                let lo = single_int(&lo)?;
                let hi = single_int(&hi)?;
                Ok((lo..=hi).map(Value::Int).collect())
            }
            Expr::Arith(a, op, b) => {
                let left = self.eval(a, env)?;
                let right = self.eval(b, env)?;
                arith(&left, *op, &right)
            }
            Expr::Neg(a) => {
                let v = self.eval(a, env)?;
                if v.is_empty() {
                    return Ok(Vec::new());
                }
                match single(&v)? {
                    Value::Int(i) => Ok(vec![Value::Int(-i)]),
                    Value::Float(f) => Ok(vec![Value::Float(-f)]),
                    other => Err(FlworError::Type(format!(
                        "cannot negate {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::StrConcat(a, b) => {
                let left = self.eval(a, env)?;
                let right = self.eval(b, env)?;
                Ok(vec![Value::str(format!(
                    "{}{}",
                    atomize_string(&left)?,
                    atomize_string(&right)?
                ))])
            }
            Expr::Member(base, field) => {
                let items = self.eval(base, env)?;
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::Struct(s) => {
                            if let Some(v) = s.get(field) {
                                out.push(v.clone());
                            }
                        }
                        Value::Null => {}
                        other => {
                            return Err(FlworError::Type(format!(
                                "member access .{field} on {}",
                                other.type_name()
                            )))
                        }
                    }
                }
                Ok(out)
            }
            Expr::Unbox(base) => {
                let items = self.eval(base, env)?;
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::Array(a) => out.extend(a.iter().cloned()),
                        Value::Null => {}
                        other => {
                            return Err(FlworError::Type(format!("[] on {}", other.type_name())))
                        }
                    }
                }
                Ok(out)
            }
            Expr::ArrayAt(base, idx) => {
                let items = self.eval(base, env)?;
                let i = single_int(&self.eval(idx, env)?)?;
                let mut out = Vec::new();
                for item in items {
                    match item {
                        Value::Array(a) => {
                            if i >= 1 {
                                if let Some(v) = a.get(i as usize - 1) {
                                    out.push(v.clone());
                                }
                            }
                        }
                        other => {
                            return Err(FlworError::Type(format!("[[…]] on {}", other.type_name())))
                        }
                    }
                }
                Ok(out)
            }
            Expr::Predicate(base, pred) => {
                let items = self.eval(base, env)?;
                let mut out = Vec::new();
                for (pos, item) in items.iter().enumerate() {
                    let inner = env.with("$$", Rc::new(vec![item.clone()]));
                    let p = self.eval(pred, &inner)?;
                    // Numeric predicate = positional selection (1-based).
                    if p.len() == 1 && p[0].is_numeric() {
                        let want = p[0].as_f64().expect("numeric");
                        if (pos + 1) as f64 == want {
                            out.push(item.clone());
                        }
                    } else if ebv(&p)? {
                        out.push(item.clone());
                    }
                }
                Ok(out)
            }
            Expr::ObjectCtor(pairs) => {
                let mut fields = Vec::with_capacity(pairs.len());
                for (key, ve) in pairs {
                    let name: String = match key {
                        ObjectKey::Name(n) => n.clone(),
                        ObjectKey::Computed(ke) => atomize_string(&self.eval(ke, env)?)?,
                    };
                    let v = self.eval(ve, env)?;
                    let item = match v.len() {
                        0 => Value::Null,
                        1 => v.into_iter().next().expect("one"),
                        _ => Value::array(v),
                    };
                    fields.push((Arc::from(name.as_str()), item));
                }
                Ok(vec![Value::Struct(Arc::new(StructValue::new(fields)))])
            }
            Expr::ArrayCtor(inner) => {
                let items = match inner {
                    Some(e) => self.eval(e, env)?,
                    None => Vec::new(),
                };
                Ok(vec![Value::array(items)])
            }
            Expr::Call(name, args) => self.call(name, args, env),
        }
    }

    fn call(&self, name: &str, args: &[Expr], env: &Env) -> Result<Seq, FlworError> {
        // `parquet-file` goes to the source.
        if name == "parquet-file" {
            let arg = self.eval(&args[0], env)?;
            let path = atomize_string(&arg)?;
            return self.source.read(&path);
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, env)?);
        }
        if let Some(r) = builtins::eval_builtin(name, &vals) {
            return r;
        }
        let f = self
            .functions
            .get(name)
            .ok_or_else(|| FlworError::Unresolved(format!("function {name}")))?;
        if f.params.len() != vals.len() {
            return Err(FlworError::Dynamic(format!(
                "{name} expects {} arguments, got {}",
                f.params.len(),
                vals.len()
            )));
        }
        // Functions close over nothing but their parameters (module scope).
        let mut inner = Env::new();
        for (p, v) in f.params.iter().zip(vals) {
            inner = inner.with(p, Rc::new(v));
        }
        self.eval(&f.body, &inner)
    }

    fn eval_flwor(&self, clauses: &[Clause], ret: &Expr, env: &Env) -> Result<Seq, FlworError> {
        // The tuple stream: local bindings layered over `env`.
        let mut tuples: Vec<Env> = vec![env.clone()];
        // Names introduced by this FLWOR (the only ones group-by re-binds).
        let mut local_vars: Vec<String> = Vec::new();
        for clause in clauses {
            match clause {
                Clause::For { var, at, source } => {
                    let mut next = Vec::new();
                    for t in &tuples {
                        let items = self.eval(source, t)?;
                        for (i, item) in items.into_iter().enumerate() {
                            let mut t2 = t.with(var, Rc::new(vec![item]));
                            if let Some(at) = at {
                                t2 = t2.with(at, Rc::new(vec![Value::Int(i as i64 + 1)]));
                            }
                            next.push(t2);
                        }
                    }
                    local_vars.push(var.clone());
                    if let Some(at) = at {
                        local_vars.push(at.clone());
                    }
                    tuples = next;
                }
                Clause::Let { var, value } => {
                    let mut next = Vec::with_capacity(tuples.len());
                    for t in &tuples {
                        let v = self.eval(value, t)?;
                        next.push(t.with(var, Rc::new(v)));
                    }
                    local_vars.push(var.clone());
                    tuples = next;
                }
                Clause::Where(pred) => {
                    let mut next = Vec::with_capacity(tuples.len());
                    for t in tuples {
                        if ebv(&self.eval(pred, &t)?)? {
                            next.push(t);
                        }
                    }
                    tuples = next;
                }
                Clause::Count(var) => {
                    tuples = tuples
                        .into_iter()
                        .enumerate()
                        .map(|(i, t)| t.with(var, Rc::new(vec![Value::Int(i as i64 + 1)])))
                        .collect();
                    local_vars.push(var.clone());
                }
                Clause::OrderBy(keys) => {
                    let mut keyed: Vec<(Vec<Value>, Env)> = Vec::with_capacity(tuples.len());
                    for t in tuples {
                        let mut ks = Vec::with_capacity(keys.len());
                        for (ke, _) in keys {
                            let v = self.eval(ke, &t)?;
                            ks.push(match v.len() {
                                0 => Value::Null,
                                1 => v.into_iter().next().expect("one"),
                                _ => {
                                    return Err(FlworError::Type(
                                        "order-by key is a multi-item sequence".into(),
                                    ))
                                }
                            });
                        }
                        keyed.push((ks, t));
                    }
                    let mut err = None;
                    keyed.sort_by(|(a, _), (b, _)| {
                        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                            match nested_value::ops::compare(x, y) {
                                Ok(std::cmp::Ordering::Equal) => continue,
                                Ok(ord) => return if keys[i].1 { ord.reverse() } else { ord },
                                Err(e) => {
                                    err = Some(e);
                                    return std::cmp::Ordering::Equal;
                                }
                            }
                        }
                        std::cmp::Ordering::Equal
                    });
                    if let Some(e) = err {
                        return Err(FlworError::Type(e.to_string()));
                    }
                    tuples = keyed.into_iter().map(|(_, t)| t).collect();
                }
                Clause::GroupBy(keys) => {
                    // Evaluate grouping keys per tuple.
                    type Group = (Vec<(String, Value)>, Vec<Env>);
                    let mut groups: Vec<Group> = Vec::new();
                    let mut index: HashMap<String, usize> = HashMap::new();
                    for t in tuples {
                        let mut kvs = Vec::with_capacity(keys.len());
                        for (kvar, kexpr) in keys {
                            let v = match kexpr {
                                Some(e) => self.eval(e, &t)?,
                                None => t
                                    .lookup(kvar)
                                    .map(|s| s.as_ref().clone())
                                    .ok_or_else(|| FlworError::Unresolved(format!("${kvar}")))?,
                            };
                            let atom = match v.len() {
                                0 => Value::Null,
                                1 => v.into_iter().next().expect("one"),
                                _ => {
                                    return Err(FlworError::Type(
                                        "grouping key is a multi-item sequence".into(),
                                    ))
                                }
                            };
                            kvs.push((kvar.clone(), atom));
                        }
                        let kb = format!("{:?}", kvs.iter().map(|(_, v)| v).collect::<Vec<_>>());
                        let slot = *index.entry(kb).or_insert_with(|| {
                            groups.push((kvs.clone(), Vec::new()));
                            groups.len() - 1
                        });
                        groups[slot].1.push(t);
                    }
                    // Build one tuple per group.
                    let mut next = Vec::with_capacity(groups.len());
                    for (kvs, members) in groups {
                        let mut t = env.clone();
                        // Non-grouping local variables: concatenated values.
                        for var in &local_vars {
                            if kvs.iter().any(|(k, _)| k == var) {
                                continue;
                            }
                            let mut concat = Vec::new();
                            for m in &members {
                                if let Some(v) = m.lookup(var) {
                                    concat.extend(v.iter().cloned());
                                }
                            }
                            t = t.with(var, Rc::new(concat));
                        }
                        for (kvar, kval) in kvs {
                            t = t.with(&kvar, Rc::new(vec![kval]));
                        }
                        next.push(t);
                    }
                    for (kvar, _) in keys {
                        if !local_vars.contains(kvar) {
                            local_vars.push(kvar.clone());
                        }
                    }
                    tuples = next;
                }
            }
        }
        let mut out = Vec::new();
        for t in &tuples {
            out.extend(self.eval(ret, t)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------- helpers

/// Effective boolean value (JSONiq `boolean()` semantics).
pub fn ebv(seq: &[Value]) -> Result<bool, FlworError> {
    match seq {
        [] => Ok(false),
        [Value::Bool(b)] => Ok(*b),
        [Value::Int(i)] => Ok(*i != 0),
        [Value::Float(f)] => Ok(*f != 0.0 && !f.is_nan()),
        [Value::Str(s)] => Ok(!s.is_empty()),
        [Value::Null] => Ok(false),
        [other] => Err(FlworError::Type(format!(
            "no effective boolean value for {}",
            other.type_name()
        ))),
        _ => Err(FlworError::Type(
            "no effective boolean value for multi-item sequence".into(),
        )),
    }
}

/// Exactly one item.
pub fn single(seq: &[Value]) -> Result<&Value, FlworError> {
    match seq {
        [v] => Ok(v),
        other => Err(FlworError::Type(format!(
            "expected a single item, found {} items",
            other.len()
        ))),
    }
}

fn single_int(seq: &[Value]) -> Result<i64, FlworError> {
    match single(seq)? {
        Value::Int(i) => Ok(*i),
        Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
        other => Err(FlworError::Type(format!(
            "expected an integer, found {}",
            other.type_name()
        ))),
    }
}

fn atomize_string(seq: &[Value]) -> Result<String, FlworError> {
    match single(seq)? {
        Value::Str(s) => Ok(s.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Float(f) => Ok(f.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        Value::Null => Ok("null".to_string()),
        other => Err(FlworError::Type(format!(
            "cannot stringify {}",
            other.type_name()
        ))),
    }
}

fn general_compare(left: &[Value], op: CmpOp, right: &[Value]) -> Result<bool, FlworError> {
    for a in left {
        for b in right {
            if atomic_compare(a, op, b)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

fn atomic_compare(a: &Value, op: CmpOp, b: &Value) -> Result<bool, FlworError> {
    if matches!(a, Value::Array(_) | Value::Struct(_))
        || matches!(b, Value::Array(_) | Value::Struct(_))
    {
        return Err(FlworError::Type(
            "comparison on arrays/objects is not defined".into(),
        ));
    }
    // null compares equal to null and unordered/false otherwise, except
    // eq/ne which are defined.
    if a.is_null() || b.is_null() {
        return Ok(match op {
            CmpOp::Eq => a.is_null() && b.is_null(),
            CmpOp::Ne => a.is_null() != b.is_null(),
            // JSONiq: null sorts before anything else.
            CmpOp::Lt => a.is_null() && !b.is_null(),
            CmpOp::Gt => !a.is_null() && b.is_null(),
            CmpOp::Le => a.is_null(),
            CmpOp::Ge => b.is_null(),
        });
    }
    let ord = nested_value::ops::compare(a, b).map_err(|e| FlworError::Type(e.to_string()))?;
    Ok(match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    })
}

fn arith(left: &[Value], op: ArithOp, right: &[Value]) -> Result<Seq, FlworError> {
    if left.is_empty() || right.is_empty() {
        return Ok(Vec::new());
    }
    let a = single(left)?;
    let b = single(right)?;
    if !a.is_numeric() || !b.is_numeric() {
        return Err(FlworError::Type(format!(
            "arithmetic on {} and {}",
            a.type_name(),
            b.type_name()
        )));
    }
    let out = match (a, b, op) {
        (Value::Int(x), Value::Int(y), ArithOp::Add) => Value::Int(x.wrapping_add(*y)),
        (Value::Int(x), Value::Int(y), ArithOp::Sub) => Value::Int(x.wrapping_sub(*y)),
        (Value::Int(x), Value::Int(y), ArithOp::Mul) => Value::Int(x.wrapping_mul(*y)),
        (_, _, ArithOp::Div) => {
            let y = b.as_f64().expect("numeric");
            if y == 0.0 && matches!(b, Value::Int(_)) {
                return Err(FlworError::Dynamic("division by zero".into()));
            }
            Value::Float(a.as_f64().expect("numeric") / y)
        }
        (_, _, ArithOp::IDiv) => {
            let y = b.as_f64().expect("numeric");
            if y == 0.0 {
                return Err(FlworError::Dynamic("integer division by zero".into()));
            }
            Value::Int((a.as_f64().expect("numeric") / y).trunc() as i64)
        }
        (_, _, ArithOp::Mod) => {
            let y = b.as_f64().expect("numeric");
            if y == 0.0 && matches!(b, Value::Int(_)) {
                return Err(FlworError::Dynamic("modulo by zero".into()));
            }
            let r = a.as_f64().expect("numeric") % y;
            if matches!((a, b), (Value::Int(_), Value::Int(_))) {
                Value::Int(r as i64)
            } else {
                Value::Float(r)
            }
        }
        _ => Value::Float(match op {
            ArithOp::Add => a.as_f64().expect("numeric") + b.as_f64().expect("numeric"),
            ArithOp::Sub => a.as_f64().expect("numeric") - b.as_f64().expect("numeric"),
            ArithOp::Mul => a.as_f64().expect("numeric") * b.as_f64().expect("numeric"),
            _ => unreachable!(),
        }),
    };
    Ok(vec![out])
}
