//! Language-level and end-to-end tests for the JSONiq engine.

use std::sync::Arc;

use nested_value::Value;

use crate::engine::{FlworEngine, FlworOptions};
use crate::error::FlworError;
use crate::interp::{Env, Interp, NoSource};
use crate::parser::parse_module;

fn eval(src: &str) -> Result<Vec<Value>, FlworError> {
    let m = parse_module(src)?;
    let source = NoSource;
    let interp = Interp::new(&m, &source)?;
    interp.eval_body(&m, &Env::new())
}

fn eval1(src: &str) -> Value {
    let s = eval(src).unwrap();
    assert_eq!(s.len(), 1, "expected singleton, got {s:?}");
    s.into_iter().next().unwrap()
}

#[test]
fn arithmetic_and_types() {
    assert_eq!(eval1("1 + 2 * 3"), Value::Int(7));
    assert_eq!(eval1("7 idiv 2"), Value::Int(3));
    assert_eq!(eval1("7 div 2"), Value::Float(3.5));
    assert_eq!(eval1("7 mod 2"), Value::Int(1));
    assert_eq!(eval1("-(3)"), Value::Int(-3));
    assert_eq!(eval1("2.5 + 1"), Value::Float(3.5));
}

#[test]
fn empty_sequence_propagation() {
    assert_eq!(eval("() + 1").unwrap(), vec![]);
    assert_eq!(eval("sum(())").unwrap(), vec![Value::Int(0)]);
    assert_eq!(eval("count(())").unwrap(), vec![Value::Int(0)]);
    assert_eq!(eval("exists(())").unwrap(), vec![Value::Bool(false)]);
    assert_eq!(eval("empty(())").unwrap(), vec![Value::Bool(true)]);
}

#[test]
fn sequences_flatten() {
    assert_eq!(
        eval("(1, (2, 3), ())").unwrap(),
        vec![Value::Int(1), Value::Int(2), Value::Int(3)]
    );
    assert_eq!(eval1("count((1, 2, 3))"), Value::Int(3));
}

#[test]
fn flwor_for_let_where_return() {
    assert_eq!(
        eval("for $x in (1 to 5) where $x mod 2 = 0 return $x * 10").unwrap(),
        vec![Value::Int(20), Value::Int(40)]
    );
    assert_eq!(eval1("let $y := 4 return $y * $y"), Value::Int(16));
}

#[test]
fn for_at_positions() {
    assert_eq!(
        eval("for $x at $i in (10, 20, 30) where $i >= 2 return $i").unwrap(),
        vec![Value::Int(2), Value::Int(3)]
    );
}

#[test]
fn cartesian_products_and_pairs() {
    // The paper's Listing 6c pattern: distinct pairs via `at` indices.
    let out = eval(
        "for $a at $i in (1, 2, 3), $b at $j in (1, 2, 3) \
         where $i < $j return [$a, $b]",
    )
    .unwrap();
    assert_eq!(out.len(), 3);
}

#[test]
fn object_navigation() {
    assert_eq!(
        eval1(r#"{ "pt": 42.0, "eta": 1.1 }.pt"#),
        Value::Float(42.0)
    );
    // Missing member → empty sequence.
    assert_eq!(eval(r#"{ "pt": 1 }.nope"#).unwrap(), vec![]);
    // Member access maps over sequences.
    assert_eq!(
        eval(r#"for $o in ({ "x": 1 }, { "x": 2 }) return $o.x"#).unwrap(),
        vec![Value::Int(1), Value::Int(2)]
    );
}

#[test]
fn array_unboxing_and_predicates() {
    assert_eq!(
        eval("[1, 2, 3][]").unwrap(),
        vec![Value::Int(1), Value::Int(2), Value::Int(3)]
    );
    assert_eq!(eval1("[4, 5, 6][[2]]"), Value::Int(5));
    assert_eq!(eval("[4, 5][[9]]").unwrap(), vec![]);
    // Predicate filter with context item.
    assert_eq!(
        eval("(1, 5, 10)[$$ > 3]").unwrap(),
        vec![Value::Int(5), Value::Int(10)]
    );
    // Numeric predicate = positional.
    assert_eq!(eval1("(7, 8, 9)[2]"), Value::Int(8));
}

#[test]
fn nested_navigation_chain() {
    // The paper's Listing 3b pattern.
    let out = eval(
        r#"for $e in ({ "jet": [ { "pt": 50.0, "eta": 0.5 }, { "pt": 20.0, "eta": 2.0 } ] })
           return $e.jet[][abs($$.eta) < 1].pt"#,
    )
    .unwrap();
    assert_eq!(out, vec![Value::Float(50.0)]);
}

#[test]
fn general_comparison_is_existential() {
    assert_eq!(eval1("(1, 2, 3) = 2"), Value::Bool(true));
    assert_eq!(eval1("(1, 2, 3) = 9"), Value::Bool(false));
    assert_eq!(eval1("() = 1"), Value::Bool(false));
    assert_eq!(eval1("(1, 9) > 5"), Value::Bool(true));
}

#[test]
fn quantified() {
    assert_eq!(
        eval1("some $x in (1, 2, 3) satisfies $x > 2"),
        Value::Bool(true)
    );
    assert_eq!(
        eval1("every $x in (1, 2, 3) satisfies $x > 0"),
        Value::Bool(true)
    );
    assert_eq!(
        eval1("every $x in (1, 2, 3) satisfies $x > 1"),
        Value::Bool(false)
    );
    assert_eq!(eval1("some $x in () satisfies $x"), Value::Bool(false));
}

#[test]
fn group_by_histogram_pattern() {
    // Listing 9b: grouping fully encapsulated in a declared function.
    let out = eval(
        "declare function local:histogram($values, $width) {\
           for $v in $values \
           let $b := floor($v div $width) \
           group by $bin := $b \
           order by $bin \
           return { \"bin\": $bin, \"n\": count($v) } \
         };\
         local:histogram((1.0, 2.0, 11.0, 12.0, 13.0, 25.0), 10.0)",
    )
    .unwrap();
    assert_eq!(out.len(), 3);
    let first = out[0].as_struct().unwrap();
    assert_eq!(first.get("bin"), Some(&Value::Float(0.0)));
    assert_eq!(first.get("n"), Some(&Value::Int(2)));
    let second = out[1].as_struct().unwrap();
    assert_eq!(second.get("n"), Some(&Value::Int(3)));
}

#[test]
fn order_by_descending() {
    assert_eq!(
        eval("for $x in (3, 1, 2) order by $x descending return $x").unwrap(),
        vec![Value::Int(3), Value::Int(2), Value::Int(1)]
    );
}

#[test]
fn count_clause() {
    assert_eq!(
        eval("for $x in (5, 6, 7) count $c return $c").unwrap(),
        vec![Value::Int(1), Value::Int(2), Value::Int(3)]
    );
}

#[test]
fn user_functions_and_recursion_free_composition() {
    assert_eq!(
        eval1(
            "declare function hep:square($x) { $x * $x };\
             declare function hep:hyp($a, $b) { sqrt(hep:square($a) + hep:square($b)) };\
             hep:hyp(3.0, 4.0)"
        ),
        Value::Float(5.0)
    );
}

#[test]
fn function_objects_without_declared_members() {
    // §3.6: JSONiq functions accept objects without enumerating members;
    // extra members are ignored.
    assert_eq!(
        eval1(
            r#"declare function f:pt2($p) { $p.pt * $p.pt };
               f:pt2({ "pt": 3.0, "eta": 99.0, "extra": "ignored" })"#
        ),
        Value::Float(9.0)
    );
}

#[test]
fn if_and_logic() {
    assert_eq!(eval1("if (1 < 2) then \"a\" else \"b\""), Value::str("a"));
    assert_eq!(eval1("true and false"), Value::Bool(false));
    assert_eq!(eval1("true or false"), Value::Bool(true));
    assert_eq!(eval1("not(0)"), Value::Bool(true));
    assert_eq!(eval1("not 1"), Value::Bool(false));
}

#[test]
fn errors_are_reported() {
    assert!(matches!(eval("$missing"), Err(FlworError::Unresolved(_))));
    assert!(matches!(
        eval("nosuchfn(1)"),
        Err(FlworError::Unresolved(_))
    ));
    assert!(matches!(eval("(1).pt"), Err(FlworError::Type(_))));
    assert!(matches!(eval("{ \"a\": 1 }[]"), Err(FlworError::Type(_))));
    assert!(matches!(eval("1 idiv 0"), Err(FlworError::Dynamic(_))));
}

// ------------------------------------------------------------ end-to-end

fn hep_engine_opts(options: FlworOptions) -> (Vec<hep_model::Event>, FlworEngine) {
    let (events, table) = hep_model::generator::build_dataset(hep_model::DatasetSpec {
        n_events: 500,
        row_group_size: 128,
        seed: 33,
    });
    let mut e = FlworEngine::new(options);
    e.register(Arc::new(table));
    (events, e)
}

fn hep_engine(n_threads: usize) -> (Vec<hep_model::Event>, FlworEngine) {
    hep_engine_opts(FlworOptions {
        n_threads,
        ..FlworOptions::default()
    })
}

#[test]
fn table_scan_met() {
    let (events, engine) = hep_engine(1);
    let out = engine
        .execute("for $e in parquet-file(\"events\") return $e.MET.pt")
        .unwrap();
    assert_eq!(out.items.len(), events.len());
    assert_eq!(out.items[0], Value::Float(events[0].met.pt));
    // Rumble reads everything: bytes scanned equals the whole table.
    assert_eq!(out.stats.scan.columns_read as usize, 63);
}

#[test]
fn jet_selection_matches_reference() {
    let (events, engine) = hep_engine(1);
    let out = engine
        .execute(
            "for $e in parquet-file(\"events\") \
             where count($e.Jet[][$$.pt > 40]) >= 2 \
             return $e.MET.pt",
        )
        .unwrap();
    let expect = events
        .iter()
        .filter(|e| e.jets.iter().filter(|j| j.pt > 40.0).count() >= 2)
        .count();
    assert_eq!(out.items.len(), expect);
}

#[test]
fn parallel_matches_serial() {
    let (_, serial) = hep_engine(1);
    let (_, parallel) = hep_engine(4);
    let q = "for $e in parquet-file(\"events\") \
             let $jets := $e.Jet[][abs($$.eta) < 1] \
             where exists($jets) \
             return sum($jets.pt)";
    let a = serial.execute(q).unwrap();
    let b = parallel.execute(q).unwrap();
    assert_eq!(a.items, b.items);
    assert!(b.stats.threads_used > 1);
}

#[test]
fn vectorized_prefilter_matches_interpreter() {
    // Identical result sequence and identical scan accounting with the
    // pre-filter on and off, in both serial and parallel execution.
    let q = "for $e in parquet-file(\"events\") \
             where $e.MET.pt > 25.0 and $e.MET.phi < 1.0 \
             return $e.MET.pt";
    let mut outputs = Vec::new();
    for vectorized_filter in [true, false] {
        for n_threads in [1, 4] {
            let (events, engine) = hep_engine_opts(FlworOptions {
                n_threads,
                vectorized_filter,
                ..FlworOptions::default()
            });
            let out = engine.execute(q).unwrap();
            let expect: Vec<Value> = events
                .iter()
                .filter(|e| e.met.pt > 25.0 && e.met.phi < 1.0)
                .map(|e| Value::Float(e.met.pt))
                .collect();
            assert!(!expect.is_empty() && expect.len() < events.len());
            assert_eq!(out.items, expect, "vf={vectorized_filter} t={n_threads}");
            outputs.push(out);
        }
    }
    // Filtering is an execution knob, never a pricing knob.
    for o in &outputs[1..] {
        assert_eq!(
            o.stats.scan.bytes_scanned,
            outputs[0].stats.scan.bytes_scanned
        );
        assert_eq!(
            o.stats.scan.columns_read,
            outputs[0].stats.scan.columns_read
        );
    }
}

#[test]
fn zone_map_pruning_skips_groups_and_preserves_results() {
    // Event ids are monotone across row groups (500 events, groups of
    // 128), so a cut on `$e.event` prunes whole groups: `< 100` keeps
    // only the first of four. Results must be identical with pruning on
    // and off, at any thread count, with and without the vectorized
    // pre-filter, and the pruned bytes must account exactly for the
    // bytes the unpruned scan would have billed.
    let q = "for $e in parquet-file(\"events\") \
             where $e.event < 100 \
             return $e.MET.pt";
    let (events, base) = hep_engine_opts(FlworOptions {
        zone_map_pruning: false,
        ..FlworOptions::default()
    });
    let off = base.execute(q).unwrap();
    let expect: Vec<Value> = events
        .iter()
        .filter(|e| e.event < 100)
        .map(|e| Value::Float(e.met.pt))
        .collect();
    assert_eq!(off.items, expect);
    assert_eq!(off.stats.row_groups_skipped, 0);
    assert_eq!(off.stats.scan.groups_pruned, 0);
    for n_threads in [1, 4] {
        for vectorized_filter in [true, false] {
            let (_, engine) = hep_engine_opts(FlworOptions {
                n_threads,
                vectorized_filter,
                zone_map_pruning: true,
                ..FlworOptions::default()
            });
            let on = engine.execute(q).unwrap();
            assert_eq!(on.items, expect, "vf={vectorized_filter} t={n_threads}");
            assert_eq!(on.stats.row_groups_skipped, 3);
            assert_eq!(on.stats.scan.groups_pruned, 3);
            assert!(on.stats.scan.bytes_pruned > 0);
            assert_eq!(
                on.stats.scan.bytes_scanned + on.stats.scan.bytes_pruned,
                off.stats.scan.bytes_scanned,
                "pruned + scanned bytes must equal the unpruned scan"
            );
        }
    }
}

#[test]
fn prefilter_skips_nonscalar_conjuncts_soundly() {
    // Mixed where: the scalar MET conjunct (with an *integer* literal
    // against a float column) is vectorizable, the jet-count conjunct is
    // not and must still be applied by the interpreter.
    let (events, engine) = hep_engine(1);
    let out = engine
        .execute(
            "for $e in parquet-file(\"events\") \
             where $e.MET.pt > 20 and count($e.Jet[]) >= 2 \
             return $e.event",
        )
        .unwrap();
    let expect: Vec<Value> = events
        .iter()
        .filter(|e| e.met.pt > 20.0 && e.jets.len() >= 2)
        .map(|e| Value::Int(e.event as i64))
        .collect();
    assert_eq!(out.items, expect);
}

#[test]
fn group_by_forces_serial() {
    let (_, engine) = hep_engine(8);
    let out = engine
        .execute(
            "for $e in parquet-file(\"events\") \
             let $n := count($e.Muon[]) \
             group by $k := $n \
             order by $k \
             return { \"muons\": $k, \"events\": count($e) }",
        )
        .unwrap();
    assert_eq!(out.stats.threads_used, 1);
    let total: i64 = out
        .items
        .iter()
        .map(|o| {
            o.as_struct()
                .unwrap()
                .get("events")
                .unwrap()
                .as_i64()
                .unwrap()
        })
        .sum();
    assert_eq!(total, 500);
}
