//! # hepquery
//!
//! A from-scratch Rust reproduction of *"Evaluating Query Languages and
//! Systems for High-Energy Physics Data"* (Graur, Müller, Proffitt, Watts,
//! Fourny, Alonso — VLDB 2021): the ADL benchmark, every system it
//! evaluates, the storage substrate they run on, and the measurement
//! harness behind every table and figure.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`model`] — the HEP event model and the calibrated synthetic data
//!   generator (the CMS-open-data substitute);
//! * [`columnar`] — the NF² nested columnar store (the Parquet analog:
//!   row groups, projection pushdown, honest compression and scan
//!   accounting);
//! * [`physics`] — four-momentum kinematics and histograms;
//! * [`sql`] — the SQL engine with BigQuery/Presto/Athena dialect
//!   profiles;
//! * [`jsoniq`] — the JSONiq/FLWOR engine (the Rumble analog);
//! * [`rdataframe`] — the RDataFrame-style dataframe engine (the ROOT
//!   analog);
//! * [`physical_ir`] — the shared compiled physical IR (fused batch
//!   kernels) all three language engines lower eligible queries onto;
//! * [`exec_par`] — morsel-driven parallel execution of compiled plans:
//!   sharded row-group scans, seeded work stealing, and a deterministic
//!   exchange/partial-aggregation merge (byte-identical at any worker
//!   count);
//! * [`cloud`] — the instance/pricing/scaling simulator;
//! * [`mod@bench`] — the ADL benchmark: queries, reference implementations,
//!   validation, metrics, and the run orchestrator;
//! * [`service`] — concurrent multi-tenant query serving over the same
//!   engines: worker pool, admission control, buffer pool and a
//!   BigQuery-style result cache (with the paper's caches-off knob);
//! * [`chaos`] — deterministic fault injection and differential query
//!   fuzzing: seeded random plans lowered to every system under test,
//!   checked bin-for-bin against an interpreter oracle;
//! * [`obs`] — zero-dependency observability: per-query span trees with
//!   typed stages (parse/plan/scan/…) and a sharded metrics registry,
//!   threaded through every engine via the unified
//!   [`bench::engine_api::QueryEngine`] trait.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use hepquery::prelude::*;
//!
//! // 1. Generate a small synthetic data set and store it columnar.
//! let (events, table) = hepquery::model::generator::build_dataset(DatasetSpec {
//!     n_events: 1_000,
//!     row_group_size: 256,
//!     seed: 42,
//! });
//! let table = Arc::new(table);
//!
//! // 2. Run ADL query Q4 through the unified `QueryEngine` API — here
//! //    the BigQuery deployment of the SQL engine…
//! let engine = engine_for(System::BigQuery, table.clone());
//! let run = engine
//!     .execute(&QuerySpec::benchmark(QueryId::Q4), &ExecEnv::seed())
//!     .unwrap();
//!
//! // 3. …and compare with the ground truth.
//! let reference = hepquery::bench::reference::run(QueryId::Q4, &events);
//! assert!(run.histogram.counts_equal(&reference.hist));
//! ```
//!
//! To trace a run, enable the environment's [`obs::TraceCtx`] and read
//! the span tree off the result:
//!
//! ```
//! # use std::sync::Arc;
//! # use hepquery::prelude::*;
//! # let (_, table) = hepquery::model::generator::build_dataset(DatasetSpec {
//! #     n_events: 200, row_group_size: 64, seed: 42 });
//! # let table = Arc::new(table);
//! let env = ExecEnv { trace: obs::TraceCtx::enabled(), ..ExecEnv::seed() };
//! let engine = engine_for(System::Presto, table.clone());
//! let run = engine
//!     .execute(&QuerySpec::benchmark(QueryId::Q1), &env)
//!     .unwrap();
//! assert!(!run.trace.is_empty());
//! println!("{}", run.trace.render(false)); // or .to_json() / .to_chrome_trace()
//! ```

pub use chaos;
pub use cloud_sim as cloud;
pub use engine_flwor as jsoniq;
pub use engine_rdf as rdataframe;
pub use engine_sql as sql;
pub use exec_par;
pub use hep_model as model;
pub use hepbench_core as bench;
pub use nested_value as value;
pub use nf2_columnar as columnar;
pub use obs;
pub use physical_ir;
pub use physics;
pub use query_service as service;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use crate::bench::adapters::ExecEnv;
    pub use crate::bench::engine_api::{engine_for, QueryEngine, QuerySpec};
    pub use crate::bench::runner::System;
    pub use crate::bench::{QueryId, ALL_QUERIES};
    pub use crate::columnar::{Projection, PushdownCapability, Table};
    pub use crate::model::{DatasetSpec, Event, Generator, GeneratorConfig};
    pub use crate::physics::{FourMomentum, HistSpec, Histogram};
    pub use crate::sql::{Dialect, SqlEngine, SqlOptions};
    pub use crate::value::Value;
}
