//! The `hepquery` command-line tool: generate data sets, run ad-hoc SQL or
//! JSONiq queries against them, and reproduce the benchmark.
//!
//! ```sh
//! hepquery generate --events 100000 --out events.nf2c
//! hepquery sql     --dialect bigquery --file events.nf2c "SELECT COUNT(*) FROM events"
//! hepquery jsoniq  --file events.nf2c 'for $e in parquet-file("events") return $e.MET.pt' --limit 5
//! hepquery adl     --query Q5 --events 50000
//! hepquery schema  --file events.nf2c
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use hepquery::bench::{adapters, reference, spec::QueryId, ALL_QUERIES};
use hepquery::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "sql" => cmd_sql(&args[1..]),
        "jsoniq" => cmd_jsoniq(&args[1..]),
        "adl" => cmd_adl(&args[1..]),
        "schema" => cmd_schema(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
hepquery — HEP query engines over NF² columnar data

USAGE:
  hepquery generate [--events N] [--row-group N] [--seed N] --out FILE
  hepquery sql      [--dialect bigquery|presto|athena] (--file FILE | --events N) SQL [--limit N]
  hepquery jsoniq   (--file FILE | --events N) QUERY [--limit N]
  hepquery adl      --query Q1..Q8|Q6a|Q6b [--events N] [--engine all|sql|jsoniq|rdf] [--trace]
  hepquery schema   --file FILE";

/// Tiny argument scanner: `--key value` flags plus one positional.
struct Args<'a> {
    raw: &'a [String],
}

impl<'a> Args<'a> {
    fn flag(&self, name: &str) -> Option<&'a str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
        }
    }

    fn positional(&self) -> Option<&'a str> {
        let mut skip = false;
        for a in self.raw {
            if skip {
                skip = false;
                continue;
            }
            if a.starts_with("--") {
                skip = true;
                continue;
            }
            return Some(a);
        }
        None
    }
}

fn load_or_generate(a: &Args) -> Result<Arc<Table>, String> {
    if let Some(file) = a.flag("--file") {
        let t = hepquery::columnar::file::load(std::path::Path::new(file))
            .map_err(|e| e.to_string())?;
        Ok(Arc::new(t))
    } else {
        let n: usize = a.parsed("--events", 10_000)?;
        let rg: usize = a.parsed("--row-group", (n / 16).max(1))?;
        let seed: u64 = a.parsed("--seed", 0xAD1B70)?;
        let (_, t) = hepquery::model::generator::build_dataset(DatasetSpec {
            n_events: n,
            row_group_size: rg,
            seed,
        });
        Ok(Arc::new(t))
    }
}

fn cmd_generate(raw: &[String]) -> Result<(), String> {
    let a = Args { raw };
    let out = a.flag("--out").ok_or("generate requires --out FILE")?;
    let n: usize = a.parsed("--events", 100_000)?;
    let rg: usize = a.parsed("--row-group", (n / 128).max(1))?;
    let seed: u64 = a.parsed("--seed", 0xAD1B70)?;
    let (_, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: n,
        row_group_size: rg,
        seed,
    });
    hepquery::columnar::file::save(&table, std::path::Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} events ({} row groups, {:.1} MB uncompressed) to {out}",
        table.n_rows(),
        table.row_groups().len(),
        table.uncompressed_bytes() as f64 / 1e6
    );
    Ok(())
}

fn cmd_sql(raw: &[String]) -> Result<(), String> {
    let a = Args { raw };
    let dialect = match a.flag("--dialect").unwrap_or("presto") {
        "bigquery" => Dialect::bigquery(),
        "presto" => Dialect::presto(),
        "athena" => Dialect::athena(),
        other => return Err(format!("unknown dialect {other}")),
    };
    let sql = a.positional().ok_or("sql requires a query string")?;
    let table = load_or_generate(&a)?;
    let mut engine = SqlEngine::new(dialect, SqlOptions::default());
    engine.register(table);
    let out = engine.execute(sql).map_err(|e| e.to_string())?;
    let limit: usize = a.parsed("--limit", 50)?;
    println!("{}", out.relation.cols.join("\t"));
    for row in out.relation.rows.iter().take(limit) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    if out.relation.rows.len() > limit {
        println!("… {} more rows", out.relation.rows.len() - limit);
    }
    eprintln!(
        "# {} rows, {:.1} ms cpu, {} bytes scanned",
        out.relation.rows.len(),
        out.stats.cpu_seconds * 1e3,
        out.stats.scan.bytes_scanned
    );
    Ok(())
}

fn cmd_jsoniq(raw: &[String]) -> Result<(), String> {
    let a = Args { raw };
    let query = a.positional().ok_or("jsoniq requires a query string")?;
    let table = load_or_generate(&a)?;
    let mut engine = hepquery::jsoniq::FlworEngine::new(Default::default());
    engine.register(table);
    let out = engine.execute(query).map_err(|e| e.to_string())?;
    let limit: usize = a.parsed("--limit", 50)?;
    for item in out.items.iter().take(limit) {
        println!("{}", hepquery::value::json::to_json(item));
    }
    if out.items.len() > limit {
        println!("… {} more items", out.items.len() - limit);
    }
    eprintln!(
        "# {} items, {:.1} ms cpu, {} bytes scanned",
        out.items.len(),
        out.stats.cpu_seconds * 1e3,
        out.stats.scan.bytes_scanned
    );
    Ok(())
}

fn cmd_adl(raw: &[String]) -> Result<(), String> {
    let a = Args { raw };
    let qname = a.flag("--query").ok_or("adl requires --query")?;
    let q = *ALL_QUERIES
        .iter()
        .find(|q| q.name().eq_ignore_ascii_case(qname) || (qname == "Q6" && q.name() == "Q6a"))
        .ok_or_else(|| format!("unknown query {qname}"))?;
    let n: usize = a.parsed("--events", 20_000)?;
    let (events, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: n,
        row_group_size: (n / 16).max(1),
        seed: 0xAD1B70,
    });
    let table = Arc::new(table);
    let expect = reference::run(q, &events);
    println!("{} — {}", q.name(), q.description());
    let engine = a.flag("--engine").unwrap_or("all");
    let trace_on = a.raw.iter().any(|s| s == "--trace");
    let env = adapters::ExecEnv {
        trace: if trace_on {
            hepquery::obs::TraceCtx::enabled()
        } else {
            hepquery::obs::TraceCtx::disabled()
        },
        ..adapters::ExecEnv::seed()
    };
    let mut systems: Vec<System> = Vec::new();
    if engine == "all" || engine == "sql" {
        systems.extend([System::BigQuery, System::Presto, System::AthenaV2]);
    }
    if engine == "all" || engine == "jsoniq" {
        systems.push(System::Rumble);
    }
    if engine == "all" || engine == "rdf" {
        systems.push(System::RDataFrame);
    }
    let mut runs: Vec<(&str, adapters::EngineRun)> = Vec::new();
    for system in systems {
        let run = engine_for(system, table.clone())
            .execute(&QuerySpec::benchmark(q), &env)
            .map_err(|e| e.to_string())?;
        runs.push((system.name(), run));
    }
    for (name, run) in &runs {
        println!(
            "{name:<20} entries {:>8}  cpu {:>9.1} ms  scanned {:>12} B  exact {}",
            run.histogram.total(),
            run.stats.cpu_seconds * 1e3,
            run.stats.scan.bytes_scanned,
            run.histogram.counts_equal(&expect.hist)
        );
        if trace_on {
            println!("{}", run.trace.render(false));
        }
    }
    println!("\n{}", expect.hist.ascii(60));
    let _ = QueryId::Q1;
    Ok(())
}

fn cmd_schema(raw: &[String]) -> Result<(), String> {
    let a = Args { raw };
    let table = load_or_generate(&a)?;
    println!(
        "table {:?}: {} rows, {} row groups, {} leaf columns",
        table.name(),
        table.n_rows(),
        table.row_groups().len(),
        table.schema().n_leaves()
    );
    for leaf in table.schema().leaves() {
        println!(
            "  {:30} {:?}{}",
            leaf.path.to_string(),
            leaf.ptype,
            if leaf.repeated { "  (repeated)" } else { "" }
        );
    }
    Ok(())
}
