//! The pricing invariants behind the scan path.
//!
//! 1. Filtering rows at scan time is an *execution* optimization, never a
//!    pricing one. Scan accounting is defined by the projected columns, so
//!    toggling `vectorized_filter` must not change a single accounting
//!    byte — nor a single histogram bin — on any benchmark query under any
//!    SQL dialect.
//! 2. Zone-map pruning moves bytes between accounts, it never loses them:
//!    `bytes_scanned + bytes_pruned` with pruning on equals `bytes_scanned`
//!    with pruning off, and the split is a property of table + predicates —
//!    identical at every worker count and under every steal schedule.

use std::sync::Arc;

use hepquery::bench::{adapters, ALL_QUERIES};
use hepquery::columnar::stats::skip_mask;
use hepquery::columnar::{ScalarPredicate, ScanRequest, SelCmp, SelValue};
use hepquery::prelude::*;

#[test]
fn vectorized_filter_never_changes_scan_stats_or_results() {
    let (_, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 1_500,
        row_group_size: 256,
        seed: 0xC057,
    });
    let table = Arc::new(table);
    for make in [
        Dialect::bigquery as fn() -> Dialect,
        Dialect::presto,
        Dialect::athena,
    ] {
        for q in ALL_QUERIES {
            let run = |vectorized_filter: bool| {
                adapters::run_sql_env(
                    make(),
                    &table,
                    *q,
                    SqlOptions {
                        vectorized_filter,
                        ..SqlOptions::default()
                    },
                    &adapters::ExecEnv::seed(),
                )
                .unwrap()
            };
            let on = run(true);
            let off = run(false);
            assert!(
                on.histogram.counts_equal(&off.histogram),
                "{:?} {}: results differ with vectorized filtering",
                make().name,
                q.name(),
            );
            assert_eq!(
                on.stats.scan,
                off.stats.scan,
                "{:?} {}: scan accounting perturbed by vectorized filtering",
                make().name,
                q.name(),
            );
        }
    }
}

/// Zone-map pruning conserves accounting bytes on the SQL interpreters:
/// `bytes_scanned + bytes_pruned` with pruning on equals `bytes_scanned`
/// with pruning off, the split is identical at every worker count, and
/// results never change. The predicate cuts on the monotone `event`
/// column, so most row groups are provably outside the window.
#[test]
fn pruning_conserves_accounting_bytes_across_worker_counts() {
    let (events, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 1_500,
        row_group_size: 256,
        seed: 0xC057,
    });
    let table = Arc::new(table);
    let sql = "SELECT COUNT(*) FROM events WHERE event < 300";
    let expect = events.iter().filter(|e| e.event < 300).count() as i64;
    for make in [
        Dialect::bigquery as fn() -> Dialect,
        Dialect::presto,
        Dialect::athena,
    ] {
        let run = |zone_map_pruning: bool, n_threads: usize| {
            let mut engine = SqlEngine::new(
                make(),
                SqlOptions {
                    zone_map_pruning,
                    n_threads,
                    ..SqlOptions::default()
                },
            );
            engine.register(table.clone());
            engine.execute(sql).unwrap()
        };
        let off = run(false, 1);
        assert_eq!(off.stats.scan.groups_pruned, 0);
        assert_eq!(off.stats.scan.bytes_pruned, 0);
        for n_threads in [1, 2, 4] {
            let on = run(true, n_threads);
            assert_eq!(
                on.relation.rows[0][0],
                Value::Int(expect),
                "{:?} threads={n_threads}: pruning changed the result",
                make().name,
            );
            assert!(
                on.stats.scan.groups_pruned > 0,
                "{:?} threads={n_threads}: window cut pruned nothing",
                make().name,
            );
            assert_eq!(
                on.stats.scan.bytes_scanned + on.stats.scan.bytes_pruned,
                off.stats.scan.bytes_scanned,
                "{:?} threads={n_threads}: accounting bytes not conserved",
                make().name,
            );
            // The scanned/pruned split is a property of table + predicates,
            // not of the schedule: every worker count reports the same stats.
            assert_eq!(
                on.stats.scan,
                run(true, 1).stats.scan,
                "{:?} threads={n_threads}: scan stats depend on worker count",
                make().name,
            );
        }
    }
}

/// The same conservation law on the compiled morsel-parallel path: the
/// skip mask and scan accounting come from one [`ScanRequest`], and no
/// worker count or steal schedule can perturb either the accounting
/// split or a single histogram bin.
#[test]
fn pruning_conserves_accounting_bytes_across_steal_schedules() {
    use hepquery::exec_par::ParOptions;
    use hepquery::obs::{CancelToken, TraceCtx};
    use hepquery::physical_ir::{ComputeNode, FilterNode, PhysPlan};
    use hepquery::value::Path;

    let (_, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 1_500,
        row_group_size: 128,
        seed: 0xC057,
    });
    let pred = ScalarPredicate {
        leaf: Path::parse("event"),
        cmp: SelCmp::Lt,
        value: SelValue::Int(300),
    };
    let plan = PhysPlan {
        filters: vec![FilterNode::Scalar(pred.clone())],
        compute: ComputeNode::ScalarFill {
            leaf: Path::parse("MET.pt"),
        },
        spec: HistSpec::new(100, 0.0, 2000.0),
    };
    let projection = Projection::all();
    let preds = [pred];

    let on = ScanRequest::new(&table, &projection)
        .prune(&preds)
        .run()
        .unwrap();
    let off = ScanRequest::new(&table, &projection).run().unwrap();
    let skip = on.skip.expect("prune() was supplied");
    assert!(on.stats.groups_pruned > 0, "window cut pruned nothing");
    assert_eq!(
        on.stats.bytes_scanned + on.stats.bytes_pruned,
        off.stats.bytes_scanned,
        "accounting bytes not conserved under pruning",
    );
    assert_eq!(
        on.stats.groups_pruned,
        skip.iter().filter(|&&s| s).count() as u64,
    );
    assert_eq!(skip, skip_mask(&table, &preds));

    // Pruned bins must match the unpruned serial reference — the filter
    // re-checks every surviving row, so pruning is invisible to results.
    let want = hepquery::physical_ir::execute(
        &plan,
        &table,
        None,
        &TraceCtx::disabled(),
        &CancelToken::none(),
    )
    .unwrap();
    let morsels_expected = skip.iter().filter(|&&s| !s).count() as u64;
    for workers in [1, 2, 4] {
        for steal_seed in [0, 1, 0xDEAD_BEEF_u64] {
            let (bins, stats) = hepquery::exec_par::execute(
                &plan,
                &table,
                Some(&skip),
                &TraceCtx::disabled(),
                &CancelToken::none(),
                None,
                &ParOptions {
                    workers,
                    steal_seed,
                    recovery: None,
                },
            )
            .unwrap();
            assert_eq!(bins, want, "workers={workers} seed={steal_seed:#x}");
            assert_eq!(
                stats.morsels, morsels_expected,
                "workers={workers} seed={steal_seed:#x}: pruned morsels were dealt",
            );
        }
    }
}
