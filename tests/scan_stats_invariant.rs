//! The pricing invariant behind the vectorized scan path: filtering rows
//! at scan time is an *execution* optimization, never a pricing one. Scan
//! accounting is defined by the projected columns, so toggling
//! `vectorized_filter` must not change a single accounting byte — nor a
//! single histogram bin — on any benchmark query under any SQL dialect.

use std::sync::Arc;

use hepquery::bench::{adapters, ALL_QUERIES};
use hepquery::prelude::*;

#[test]
fn vectorized_filter_never_changes_scan_stats_or_results() {
    let (_, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 1_500,
        row_group_size: 256,
        seed: 0xC057,
    });
    let table = Arc::new(table);
    for make in [
        Dialect::bigquery as fn() -> Dialect,
        Dialect::presto,
        Dialect::athena,
    ] {
        for q in ALL_QUERIES {
            let run = |vectorized_filter: bool| {
                adapters::run_sql_env(
                    make(),
                    &table,
                    *q,
                    SqlOptions {
                        vectorized_filter,
                        ..SqlOptions::default()
                    },
                    &adapters::ExecEnv::seed(),
                )
                .unwrap()
            };
            let on = run(true);
            let off = run(false);
            assert!(
                on.histogram.counts_equal(&off.histogram),
                "{:?} {}: results differ with vectorized filtering",
                make().name,
                q.name(),
            );
            assert_eq!(
                on.stats.scan,
                off.stats.scan,
                "{:?} {}: scan accounting perturbed by vectorized filtering",
                make().name,
                q.name(),
            );
        }
    }
}
