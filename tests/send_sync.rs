//! Compile-time audit of the concurrency contract the query service
//! relies on: the shared table, the caches, every engine entry point and
//! the service itself must be safe to share across worker threads. Each
//! assertion is checked by the type system — if a future change slips an
//! `Rc`, a raw pointer or a non-`Sync` cell into one of these types, this
//! file stops compiling, which is the point.

use std::sync::Arc;

use hepquery::columnar::{ChunkCache, ExecStats, ScanStats, Table};
use hepquery::jsoniq::FlworEngine;
use hepquery::rdataframe::RDataFrame;
use hepquery::service::{
    QueryRequest, QueryResponse, QueryService, ResultCache, ServiceError, ServiceStats, Ticket,
};
use hepquery::sql::SqlEngine;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

#[test]
fn shared_state_is_send_and_sync() {
    // The table is shared read-only by every worker.
    assert_send_sync::<Table>();
    assert_send_sync::<Arc<Table>>();
    // Both caches are shared mutable state behind their own locks.
    assert_send_sync::<ChunkCache>();
    assert_send_sync::<Arc<ChunkCache>>();
    assert_send_sync::<ResultCache>();
    // Accounting values cross thread boundaries by value.
    assert_send_sync::<ScanStats>();
    assert_send_sync::<ExecStats>();
    assert_send_sync::<ServiceStats>();
}

#[test]
fn engine_entry_points_are_send_and_sync() {
    // One engine instance is confined to one worker, but each holds an
    // `Arc<Table>` and an optional `Arc<ChunkCache>` — engines must stay
    // shareable so a worker can be handed a prebuilt one.
    assert_send_sync::<SqlEngine>();
    assert_send_sync::<FlworEngine>();
    assert_send_sync::<RDataFrame>();
    assert_send_sync::<hepquery::bench::adapters::ExecEnv>();
}

#[test]
fn service_surface_is_send_and_sync() {
    // The handle is shared by all client threads.
    assert_send_sync::<QueryService>();
    assert_send_sync::<QueryRequest>();
    assert_send_sync::<QueryResponse>();
    assert_send_sync::<ServiceError>();
    // A ticket moves to whichever thread waits on it, but is owned by
    // exactly one (mpsc receiver: `Send`, deliberately not `Sync`).
    assert_send::<Ticket>();
}
