//! Fault-injection integration tests at the facade level: panicking
//! queries must not wedge the service's worker pool, transient faults
//! must be survivable by re-running the query, and every error must
//! carry enough context to debug it (system, query, row group, leaf).

use std::sync::Arc;

use hepquery::bench::adapters::{self, ExecEnv};
use hepquery::bench::runner::{execute_engine, System};
use hepquery::columnar::{FaultClass, FaultConfig, FaultInjector};
use hepquery::prelude::*;
use hepquery::service::{QueryRequest, QueryService, ServiceConfig};

/// A table small enough to fit one row group: with the injector seeded
/// per (table, row group, leaf), a narrow projection then faults on a
/// predictable handful of chunks.
fn small_dataset() -> (Vec<Event>, Arc<Table>) {
    let (events, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 400,
        row_group_size: 512,
        seed: 0xFA17,
    });
    (events, Arc::new(table))
}

fn injector(config: FaultConfig) -> Arc<FaultInjector> {
    Arc::new(FaultInjector::new(config))
}

fn env_with(injector: &Arc<FaultInjector>) -> ExecEnv {
    ExecEnv {
        fault_injector: Some(injector.clone()),
        ..ExecEnv::seed()
    }
}

/// A query that panics mid-scan must fail its own request with a
/// descriptive error — and leave the worker pool fully serviceable.
/// With a single worker this is the strongest form of the claim: the
/// same thread that caught the panic serves the recovery request.
#[test]
fn panicking_query_does_not_wedge_the_worker_pool() {
    let (_, table) = small_dataset();
    let inj = injector(FaultConfig {
        p_panic: 1.0,
        transient_attempts: 1,
        ..FaultConfig::off(0x0DD)
    });
    let service = QueryService::start(
        table.clone(),
        ServiceConfig {
            n_workers: 1,
            result_cache: false,
            fault_injector: Some(inj),
            ..ServiceConfig::default()
        },
    );

    let first = service
        .execute(QueryRequest::new("chaos", System::BigQuery, QueryId::Q1))
        .expect_err("every chunk read panics on first touch");
    let msg = first.to_string();
    assert!(msg.contains("panicked"), "not a panic report: {msg}");
    assert!(
        msg.contains("Q1") && msg.contains("BigQuery"),
        "panic report must name the query and system: {msg}"
    );

    // The injector is transient (attempt 2 succeeds), so re-submitting
    // burns one panicking chunk per request until the projection is
    // clean. Each intermediate failure must still be a caught panic,
    // and the worker must survive them all.
    let mut served = None;
    for _ in 0..16 {
        match service.execute(QueryRequest::new("chaos", System::BigQuery, QueryId::Q1)) {
            Ok(resp) => {
                served = Some(resp);
                break;
            }
            Err(e) => assert!(e.to_string().contains("panicked"), "unexpected: {e}"),
        }
    }
    let served = served.expect("worker pool wedged: query never recovered");
    let clean = execute_engine(System::BigQuery, &table, QueryId::Q1, &ExecEnv::seed()).unwrap();
    assert!(served.histogram.counts_equal(&clean.histogram));

    let snap = service.stats();
    assert!(snap.completed >= 1 && snap.failed >= 1);
}

/// Transient faults are survivable by re-running: each attempt burns
/// one faulting chunk, so a bounded number of re-runs converges to the
/// exact fault-free histogram (never a wrong one).
#[test]
fn transient_faults_converge_under_rerun() {
    let (events, table) = small_dataset();
    let inj = injector(FaultConfig {
        p_io: 1.0,
        transient_attempts: 1,
        ..FaultConfig::off(0x10)
    });
    let env = env_with(&inj);
    let reference = hepquery::bench::reference::run(QueryId::Q1, &events).hist;
    let mut histogram = None;
    for _ in 0..16 {
        match adapters::run_sql_env(
            Dialect::bigquery(),
            &table,
            QueryId::Q1,
            SqlOptions::default(),
            &env,
        ) {
            Ok(run) => {
                histogram = Some(run.histogram);
                break;
            }
            Err(e) => assert!(e.retryable(), "io fault must be typed retryable: {e}"),
        }
    }
    let histogram = histogram.expect("did not converge in 16 attempts");
    assert!(histogram.counts_equal(&reference));
    assert!(
        inj.counters().recovered > 0,
        "transient path never recovered"
    );
}

/// Every engine's scan error carries the full debugging context: the
/// system and query in the message, and the typed fault with table,
/// row group and leaf underneath.
#[test]
fn scan_errors_carry_system_query_row_group_and_leaf() {
    let (_, table) = small_dataset();
    let inj = injector(FaultConfig {
        transient_attempts: 0, // persistent: retries never help
        ..FaultConfig::only(FaultClass::ChecksumMismatch, 1.0, 0xBAD)
    });
    let env = env_with(&inj);

    fn fail(r: Result<adapters::EngineRun, adapters::AdapterError>) -> adapters::AdapterError {
        match r {
            Ok(_) => panic!("persistent checksum fault must fail the query"),
            Err(e) => e,
        }
    }
    let cases: Vec<(&str, adapters::AdapterError)> = vec![
        (
            "BigQuery",
            fail(adapters::run_sql_env(
                Dialect::bigquery(),
                &table,
                QueryId::Q5,
                SqlOptions::default(),
                &env,
            )),
        ),
        (
            "JSONiq",
            fail(adapters::run_jsoniq_env(
                &table,
                QueryId::Q5,
                Default::default(),
                &env,
            )),
        ),
        (
            "RDataFrame",
            fail(adapters::run_rdf_env(
                &table,
                QueryId::Q5,
                Default::default(),
                &env,
            )),
        ),
    ];
    for (system, err) in cases {
        assert_eq!(err.system, system);
        assert_eq!(err.query, "Q5");
        let scan = err
            .scan
            .as_ref()
            .unwrap_or_else(|| panic!("{system}: injected fault must surface typed"));
        assert_eq!(scan.class, FaultClass::ChecksumMismatch);
        assert!(!scan.leaf.to_string().is_empty(), "{system}: leaf missing");

        let msg = err.to_string();
        assert!(
            msg.contains("Q5") && msg.contains(system),
            "{system}: error must name query and system: {msg}"
        );
        assert!(
            msg.contains("checksum mismatch")
                && msg.contains("row group")
                && msg.contains(&scan.leaf.to_string()),
            "{system}: error must carry class, row group and leaf: {msg}"
        );
    }
}

/// The chaos plan generator is deterministic from its seed and its
/// lowerings stay oracle-exact through the facade re-export.
#[test]
fn chaos_facade_generates_deterministic_oracle_exact_plans() {
    use hepquery::bench::queries::Language;

    let (events, table) = small_dataset();
    let a = hepquery::chaos::generate_plans(0xFEED, 4);
    let b = hepquery::chaos::generate_plans(0xFEED, 4);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.label(), y.label());
        assert_eq!(x.text(Language::BigQuery), y.text(Language::BigQuery));
    }
    let env = ExecEnv::seed();
    for plan in &a {
        let oracle = plan.reference(&events);
        for engine in hepquery::chaos::ALL_ENGINES {
            let got = engine
                .run(plan, &table, &env)
                .unwrap_or_else(|e| panic!("{} {}: {e}", engine.name(), plan.label()));
            assert!(
                got.counts_equal(&oracle),
                "{} diverged from the oracle on {}",
                engine.name(),
                plan.label()
            );
        }
    }
}
