//! Golden snapshot tests: the Q1–Q8 reference histograms over a pinned
//! dataset are stored in `tests/golden/*.json`; every engine × dialect
//! must reproduce each snapshot bin-for-bin. The fixtures detect silent
//! drift anywhere in the stack — generator, storage layout, kernels,
//! parsers, engines — not just cross-engine disagreement.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use hepquery::bench::{adapters, reference, ALL_QUERIES};
use hepquery::prelude::*;

/// The pinned dataset the fixtures were generated from. Changing any of
/// these constants invalidates every golden file.
const GOLDEN_EVENTS: usize = 1_200;
const GOLDEN_ROW_GROUP: usize = 256;
const GOLDEN_SEED: u64 = 0x901D;

fn dataset() -> (Vec<Event>, Arc<Table>) {
    let (e, t) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: GOLDEN_EVENTS,
        row_group_size: GOLDEN_ROW_GROUP,
        seed: GOLDEN_SEED,
    });
    (e, Arc::new(t))
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Renders a histogram as the fixture's JSON (hand-rolled: the workspace
/// has no serde, and the format is ours end to end).
fn to_json(query: &str, h: &Histogram) -> String {
    let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
    format!(
        "{{\n  \"query\": \"{query}\",\n  \"spec\": {{ \"bins\": {}, \"lo\": {}, \"hi\": {} }},\n  \"underflow\": {},\n  \"overflow\": {},\n  \"counts\": [{}]\n}}\n",
        h.spec().bins,
        h.spec().lo,
        h.spec().hi,
        h.underflow(),
        h.overflow(),
        counts.join(", ")
    )
}

/// Extracts the number following `"key":` (objects are flat and keys
/// unique, so a plain scan is exact for the writer above).
fn field(json: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\":");
    let at = json.find(&tag).unwrap_or_else(|| panic!("missing {key}"));
    let rest = &json[at + tag.len()..];
    let num: String = rest
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse()
        .unwrap_or_else(|_| panic!("bad number for {key}: {num:?}"))
}

/// Parses a fixture back into a histogram.
fn from_json(json: &str) -> Histogram {
    let spec = HistSpec::new(
        field(json, "bins") as usize,
        field(json, "lo"),
        field(json, "hi"),
    );
    let mut h = Histogram::new(spec);
    h.add_bin_count(-1, field(json, "underflow") as u64);
    h.add_bin_count(spec.bins as i64, field(json, "overflow") as u64);
    let open = json.find('[').expect("counts array");
    let close = json[open..].find(']').expect("counts array end") + open;
    for (bin, n) in json[open + 1..close].split(',').enumerate() {
        let n: u64 = n.trim().parse().expect("count");
        h.add_bin_count(bin as i64, n);
    }
    h
}

#[test]
fn golden_roundtrip_is_exact() {
    let (events, _) = dataset();
    let h = reference::run(QueryId::Q4, &events).hist;
    let parsed = from_json(&to_json("Q4", &h));
    assert!(parsed.counts_equal(&h), "writer/parser must round-trip");
}

#[test]
fn every_engine_and_dialect_matches_the_golden_snapshots() {
    let (events, table) = dataset();
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    if update {
        std::fs::create_dir_all(golden_path("x").parent().unwrap()).unwrap();
    }
    let mut missing = Vec::new();
    let env = adapters::ExecEnv::seed();
    for &q in ALL_QUERIES {
        let reference = reference::run(q, &events).hist;
        let path = golden_path(q.name());
        if update {
            std::fs::write(&path, to_json(q.name(), &reference)).unwrap();
        }
        let Ok(raw) = std::fs::read_to_string(&path) else {
            missing.push(q.name().to_string());
            continue;
        };
        let golden = from_json(&raw);
        assert!(
            reference.counts_equal(&golden),
            "{}: reference drifted from golden snapshot — if intentional, \
             regenerate with UPDATE_GOLDEN=1",
            q.name()
        );
        // Pin every engine × dialect to the snapshot, not just to the
        // in-memory reference.
        for dialect in [Dialect::bigquery(), Dialect::presto(), Dialect::athena()] {
            let name = format!("{:?}", dialect.name);
            let run =
                adapters::run_sql_env(dialect, &table, q, SqlOptions::default(), &env).unwrap();
            assert!(
                run.histogram.counts_equal(&golden),
                "{} {name} diverged from golden snapshot",
                q.name()
            );
        }
        let run = adapters::run_jsoniq_env(&table, q, Default::default(), &env).unwrap();
        assert!(
            run.histogram.counts_equal(&golden),
            "{} JSONiq diverged from golden snapshot",
            q.name()
        );
        let run = adapters::run_rdf_env(&table, q, Default::default(), &env).unwrap();
        assert!(
            run.histogram.counts_equal(&golden),
            "{} RDataFrame diverged from golden snapshot",
            q.name()
        );
    }
    assert!(
        missing.is_empty(),
        "missing golden fixtures for {missing:?} — generate with UPDATE_GOLDEN=1"
    );
}
