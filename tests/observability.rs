//! End-to-end observability: every query on every engine, run through the
//! unified `QueryEngine` trait, must produce a well-formed span tree whose
//! stage timings account for the query's wall time — and the tree's
//! *shape* for a pinned query is a golden fixture, so stage renames,
//! dropped instrumentation, or parenting regressions show up as diffs.
//!
//! Regenerate the shape fixture after an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test observability
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use hepquery::obs;
use hepquery::prelude::*;

const EVENTS: usize = 8_000;
const ROW_GROUP: usize = 1_024;
const SEED: u64 = 0x901D;

fn table() -> Arc<Table> {
    Arc::new(
        hepquery::model::generator::build_dataset(DatasetSpec {
            n_events: EVENTS,
            row_group_size: ROW_GROUP,
            seed: SEED,
        })
        .1,
    )
}

/// A single-threaded traced environment: with one worker, a query's
/// direct child spans are sequential, so their durations must sum to
/// (nearly) the root's — the accounting property the coverage test pins.
fn traced_env() -> ExecEnv {
    ExecEnv {
        trace: obs::TraceCtx::enabled(),
        intra_query_threads: Some(1),
        ..ExecEnv::seed()
    }
}

fn run_traced(
    system: System,
    table: &Arc<Table>,
    q: QueryId,
) -> hepquery::bench::adapters::EngineRun {
    engine_for(system, table.clone())
        .execute(&QuerySpec::benchmark(q), &traced_env())
        .unwrap()
}

#[test]
fn golden_span_tree_shape_q5_presto() {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/span_tree_q5_presto.txt");
    let run = run_traced(System::Presto, &table(), QueryId::Q5);
    // Durations redacted: the *shape* (stages, labels, nesting, row
    // counts) is deterministic; the timings are not.
    let rendered = run.trace.render(true);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden fixture {path:?} — generate with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        rendered, golden,
        "span tree shape drifted from the golden fixture — if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn every_query_on_every_engine_traces_with_covering_stages() {
    let t = table();
    for system in [System::Presto, System::Rumble, System::RDataFrame] {
        for q in ALL_QUERIES {
            let run = run_traced(system, &t, *q);
            let tree = &run.trace;
            assert_eq!(
                tree.roots.len(),
                1,
                "{} {}: expected exactly one query root",
                system.name(),
                q.name()
            );
            let root = &tree.roots[0];
            assert_eq!(root.span.stage, obs::Stage::Query);
            // Well-formed timing: spans are within their parent's window
            // and the flattened record list has monotonic ids.
            for child in &root.children {
                assert!(child.span.start_ns >= root.span.start_ns);
                assert!(child.span.end_ns() <= root.span.end_ns());
            }
            for w in tree.flatten().windows(2) {
                if w[0].parent == w[1].parent {
                    assert!(w[0].start_ns <= w[1].start_ns, "siblings out of order");
                }
            }
            // Accounting: single-threaded, the direct children of the
            // query root must cover its duration to within 5%.
            let coverage = tree
                .root_child_coverage()
                .expect("root with children and non-zero duration");
            assert!(
                coverage > 0.95 && coverage < 1.05,
                "{} {}: stage durations cover {:.1}% of the query wall time",
                system.name(),
                q.name(),
                coverage * 100.0
            );
            // Single-threaded, exclusive per-stage seconds are disjoint
            // slices of the run, so their sum can never exceed the wall
            // time the engine reports (epsilon absorbs the work outside
            // the root span: setup and histogram materialization timers
            // stopped before wall is read).
            let stage_sum: f64 = tree.stage_seconds().iter().map(|(_, s)| s).sum();
            assert!(
                stage_sum <= run.stats.wall_seconds * 1.05 + 1e-3,
                "{} {}: per-stage seconds ({stage_sum:.6}s) exceed wall ({:.6}s)",
                system.name(),
                q.name(),
                run.stats.wall_seconds
            );
            // Every engine path reports at least plan, scan and
            // aggregate work.
            let stages: Vec<obs::Stage> = tree.flatten().iter().map(|s| s.stage).collect();
            for want in [obs::Stage::Plan, obs::Stage::Scan, obs::Stage::Aggregate] {
                assert!(
                    stages.contains(&want),
                    "{} {}: missing {want} span",
                    system.name(),
                    q.name()
                );
            }
        }
    }
}

#[test]
fn exports_are_valid_and_disabled_tracing_is_empty() {
    let t = table();
    let run = run_traced(System::Rumble, &t, QueryId::Q3);
    let json = run.trace.to_json();
    assert!(json.starts_with('['));
    assert!(json.contains("\"stage\":\"query\""));
    assert!(json.contains("\"children\""));
    let chrome = run.trace.to_chrome_trace();
    assert!(chrome.starts_with('['));
    assert!(chrome.contains("\"ph\":\"X\""));
    assert_eq!(
        chrome.matches("\"ph\":\"X\"").count(),
        run.trace.len(),
        "one chrome event per span"
    );
    // Stage seconds decompose the root's total.
    let total: f64 = run.trace.stage_seconds().iter().map(|(_, s)| s).sum();
    assert!((total - run.trace.total_seconds()).abs() <= total * 1e-6 + 1e-9);
    // Untraced runs carry an empty tree and produce identical results.
    let untraced = engine_for(System::Rumble, t.clone())
        .execute(&QuerySpec::benchmark(QueryId::Q3), &ExecEnv::seed())
        .unwrap();
    assert!(untraced.trace.is_empty());
    assert_eq!(untraced.histogram, run.histogram);
    assert_eq!(untraced.stats.scan, run.stats.scan);
}
