//! The serving layer's central promises, end to end:
//!
//! 1. **caches off ⇒ the paper's numbers.** A service configured with
//!    [`ServiceConfig::paper_fairness`] serves every (system, query) with
//!    a histogram and `ScanStats` identical to the direct single-query
//!    benchmark path — the "disable cached results for a fair comparison"
//!    configuration of the paper, byte for byte.
//! 2. **result cache ⇒ BigQuery's cached-results economics.** A repeated
//!    query is served from the result cache: same histogram, zero bytes
//!    scanned, zero QaaS cost.
//! 3. **buffer pool ⇒ accounting only.** Chunk-cache hits show up in
//!    `bytes_from_cache` but never change `bytes_scanned` (the billing
//!    basis) or the results.

use std::sync::Arc;

use hepquery::bench::runner::{execute_engine, System};
use hepquery::bench::{adapters::ExecEnv, QueryId, ALL_QUERIES};
use hepquery::columnar::{ScanStats, Table};
use hepquery::prelude::*;
use hepquery::service::{QueryRequest, QueryService, ServiceConfig};

/// One system per language/dialect (AthenaV1 and RDataFrameDev execute
/// the same engines as their siblings; BigQueryExternal shares BigQuery's
/// dialect).
const SYSTEMS: &[System] = &[
    System::BigQuery,
    System::AthenaV2,
    System::Presto,
    System::Rumble,
    System::RDataFrame,
];

fn table() -> Arc<Table> {
    Arc::new(
        hepquery::model::generator::build_dataset(DatasetSpec {
            n_events: 1_500,
            row_group_size: 256,
            seed: 0x5EBF,
        })
        .1,
    )
}

#[test]
fn caches_off_is_byte_identical_to_the_seed_path() {
    let table = table();
    let service = QueryService::start(table.clone(), ServiceConfig::paper_fairness());
    for &system in SYSTEMS {
        for &q in ALL_QUERIES {
            let direct = execute_engine(system, &table, q, &ExecEnv::seed()).unwrap();
            let served = service.execute(QueryRequest::new("t0", system, q)).unwrap();
            assert!(!served.from_result_cache);
            assert_eq!(
                served.histogram,
                direct.histogram,
                "{} {}: histogram differs",
                system.name(),
                q.name()
            );
            assert_eq!(
                served.stats.scan,
                direct.stats.scan,
                "{} {}: scan accounting differs",
                system.name(),
                q.name()
            );
            // No buffer pool ⇒ no cache traffic at all.
            assert_eq!(served.stats.scan.cache_hits, 0);
            assert_eq!(served.stats.scan.bytes_from_cache, 0);
        }
    }
    assert!(service.result_cache_counters().is_none());
    assert!(service.chunk_cache_counters().is_none());
}

#[test]
fn result_cache_repeats_are_free() {
    let table = table();
    let service = QueryService::start(
        table,
        ServiceConfig {
            n_workers: 2,
            chunk_cache_bytes: 0,
            ..ServiceConfig::default()
        },
    );
    for &system in SYSTEMS {
        let q = QueryId::Q5;
        let first = service.execute(QueryRequest::new("t0", system, q)).unwrap();
        assert!(!first.from_result_cache);
        assert!(first.stats.scan.bytes_scanned > 0);
        let repeat = service.execute(QueryRequest::new("t1", system, q)).unwrap();
        assert!(repeat.from_result_cache, "{}: repeat missed", system.name());
        assert_eq!(repeat.histogram, first.histogram);
        // Zero bytes scanned — the whole ScanStats is zero.
        assert_eq!(repeat.stats.scan, ScanStats::default());
        if system.is_qaas() {
            assert_eq!(
                repeat.cost_usd,
                0.0,
                "{}: cached repeat must be free",
                system.name()
            );
            assert!(first.cost_usd > 0.0);
        }
    }
    // The two BigQuery deployments share dialect, text and table — the
    // external flavor's first request is already a hit.
    let external = service
        .execute(QueryRequest::new(
            "t2",
            System::BigQueryExternal,
            QueryId::Q5,
        ))
        .unwrap();
    assert!(external.from_result_cache);
    let (hits, _misses) = service.result_cache_counters().unwrap();
    assert_eq!(hits as usize, SYSTEMS.len() + 1);
}

#[test]
fn buffer_pool_changes_accounting_but_not_billing_or_results() {
    let table = table();
    let service = QueryService::start(
        table.clone(),
        ServiceConfig {
            n_workers: 2,
            result_cache: false, // force re-execution on repeat
            chunk_cache_bytes: 256 << 20,
            ..ServiceConfig::default()
        },
    );
    let baseline = execute_engine(System::Presto, &table, QueryId::Q4, &ExecEnv::seed()).unwrap();
    let cold = service
        .execute(QueryRequest::new("t0", System::Presto, QueryId::Q4))
        .unwrap();
    let warm = service
        .execute(QueryRequest::new("t0", System::Presto, QueryId::Q4))
        .unwrap();
    assert!(!warm.from_result_cache);
    // Results identical with and without the pool.
    assert_eq!(cold.histogram, baseline.histogram);
    assert_eq!(warm.histogram, baseline.histogram);
    // Billing basis unchanged; the pool is a separate, subtractive view.
    assert_eq!(
        cold.stats.scan.bytes_scanned,
        baseline.stats.scan.bytes_scanned
    );
    assert_eq!(
        warm.stats.scan.bytes_scanned,
        baseline.stats.scan.bytes_scanned
    );
    // The cold run misses (and fills); the warm run hits.
    assert_eq!(cold.stats.scan.cache_hits, 0);
    assert!(cold.stats.scan.cache_misses > 0);
    assert!(warm.stats.scan.cache_hits > 0, "warm run must hit the pool");
    assert!(warm.stats.scan.bytes_from_cache > 0);
    assert!(warm.stats.scan.bytes_from_cache <= warm.stats.scan.bytes_scanned);
    assert_eq!(
        warm.stats.scan.bytes_from_storage(),
        warm.stats.scan.bytes_scanned - warm.stats.scan.bytes_from_cache
    );
    let counters = service.chunk_cache_counters().unwrap();
    assert!(counters.hits > 0 && counters.insertions > 0);
}
