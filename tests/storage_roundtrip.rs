//! Integration: materialize a data set to the on-disk container, reload
//! it, and get identical query results and scan accounting.

use std::sync::Arc;

use hepquery::bench::{adapters, QueryId};
use hepquery::prelude::*;

#[test]
fn queries_survive_disk_roundtrip() {
    let (_, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 2_000,
        row_group_size: 256,
        seed: 0xD15C,
    });
    let dir = std::env::temp_dir().join(format!("hepquery_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.nf2c");
    hepquery::columnar::file::save(&table, &path).unwrap();
    let reloaded = Arc::new(hepquery::columnar::file::load(&path).unwrap());
    let table = Arc::new(table);

    assert_eq!(reloaded.n_rows(), table.n_rows());
    assert_eq!(reloaded.schema(), table.schema());
    // File size is real I/O: must be within the physical data volume.
    let file_size = std::fs::metadata(&path).unwrap().len();
    assert!(file_size as usize >= table.uncompressed_bytes());

    let env = adapters::ExecEnv::seed();
    for q in [QueryId::Q1, QueryId::Q4, QueryId::Q6a] {
        let a = adapters::run_sql_env(Dialect::athena(), &table, q, SqlOptions::default(), &env)
            .unwrap();
        let b = adapters::run_sql_env(Dialect::athena(), &reloaded, q, SqlOptions::default(), &env)
            .unwrap();
        assert!(a.histogram.counts_equal(&b.histogram), "{}", q.name());
        assert_eq!(a.stats.scan.bytes_scanned, b.stats.scan.bytes_scanned);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scan_accounting_is_consistent_across_engines() {
    let (_, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 2_000,
        row_group_size: 512,
        seed: 0x5CA4,
    });
    let table = Arc::new(table);
    let q = QueryId::Q1;
    let env = adapters::ExecEnv::seed();
    let bq =
        adapters::run_sql_env(Dialect::bigquery(), &table, q, SqlOptions::default(), &env).unwrap();
    let at =
        adapters::run_sql_env(Dialect::athena(), &table, q, SqlOptions::default(), &env).unwrap();
    let jq = adapters::run_jsoniq_env(&table, q, Default::default(), &env).unwrap();
    let rdf = adapters::run_rdf_env(&table, q, Default::default(), &env).unwrap();
    // The Figure-4b ordering: BigQuery (leaf pushdown) < Athena (whole
    // structs) < Rumble (whole file); RDataFrame reads like BigQuery.
    assert!(bq.stats.scan.bytes_scanned < at.stats.scan.bytes_scanned);
    assert!(at.stats.scan.bytes_scanned < jq.stats.scan.bytes_scanned);
    assert_eq!(
        jq.stats.scan.bytes_scanned as usize,
        table.compressed_bytes(),
        "Rumble reads the full file"
    );
    assert_eq!(bq.stats.scan.bytes_scanned, rdf.stats.scan.bytes_scanned);
    // Ideal lines identical everywhere.
    assert_eq!(
        bq.stats.scan.ideal_compressed_bytes,
        at.stats.scan.ideal_compressed_bytes
    );
}
