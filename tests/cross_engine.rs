//! End-to-end cross-engine agreement at integration scale, over a
//! different seed and row-group layout than the unit tests use — the
//! workspace's strongest correctness statement.

use std::sync::Arc;

use hepquery::bench::{adapters, reference, validate, QueryId, ALL_QUERIES};
use hepquery::prelude::*;

fn dataset(seed: u64, n: usize, rg: usize) -> (Vec<Event>, Arc<Table>) {
    let (e, t) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: n,
        row_group_size: rg,
        seed,
    });
    (e, Arc::new(t))
}

#[test]
fn every_engine_matches_reference_on_every_query() {
    let (events, table) = dataset(0xE2E, 4_000, 640);
    for q in ALL_QUERIES {
        let report = validate::validate_query(*q, &events, &table).unwrap();
        for v in &report {
            assert!(
                v.exact,
                "{} {}: total delta {}, max bin delta {}",
                v.system, v.query, v.total_delta, v.max_bin_delta
            );
        }
        assert_eq!(report.len(), 5, "five systems validated");
    }
}

#[test]
fn agreement_is_layout_independent() {
    // The same events in radically different row-group layouts must give
    // identical results on every engine (exercises partial row groups,
    // single-group serial paths, and many-group parallel paths).
    let q = QueryId::Q5;
    let (events, t1) = dataset(77, 3_000, 17);
    let (events2, t2) = dataset(77, 3_000, 3_000);
    assert_eq!(events, events2);
    let expect = reference::run(q, &events).hist;
    let env = adapters::ExecEnv::seed();
    for table in [t1, t2] {
        let run =
            adapters::run_sql_env(Dialect::bigquery(), &table, q, SqlOptions::default(), &env)
                .unwrap();
        assert!(run.histogram.counts_equal(&expect));
        let run = adapters::run_rdf_env(&table, q, Default::default(), &env).unwrap();
        assert!(run.histogram.counts_equal(&expect));
    }
}

#[test]
fn serial_and_parallel_sql_agree() {
    let (_, table) = dataset(31, 4_000, 256);
    let env = adapters::ExecEnv::seed();
    for q in [QueryId::Q1, QueryId::Q4, QueryId::Q6a, QueryId::Q8] {
        let par = adapters::run_sql_env(Dialect::presto(), &table, q, SqlOptions::default(), &env)
            .unwrap();
        let ser = adapters::run_sql_env(
            Dialect::presto(),
            &table,
            q,
            SqlOptions {
                n_threads: 1,
                partition_parallel: false,
                ..SqlOptions::default()
            },
            &env,
        )
        .unwrap();
        assert!(
            par.histogram.counts_equal(&ser.histogram),
            "{} parallel vs serial",
            q.name()
        );
    }
}

#[test]
fn q6a_and_q6b_select_identical_events() {
    let (events, table) = dataset(6, 3_000, 512);
    let env = adapters::ExecEnv::seed();
    let a = adapters::run_rdf_env(&table, QueryId::Q6a, Default::default(), &env).unwrap();
    let b = adapters::run_rdf_env(&table, QueryId::Q6b, Default::default(), &env).unwrap();
    assert_eq!(a.histogram.total(), b.histogram.total());
    let expect = events.iter().filter(|e| e.jets.len() >= 3).count() as u64;
    assert_eq!(a.histogram.total(), expect);
}
