//! Integration: the paper's headline *shapes* hold on the simulated
//! deployment space (who wins, roughly by how much, where behaviour
//! changes) — the reproduction criteria from DESIGN.md.

use std::sync::Arc;

use hepquery::bench::adapters::ExecEnv;
use hepquery::bench::runner::{run_one, System};
use hepquery::bench::QueryId;
use hepquery::prelude::*;

fn table() -> Arc<Table> {
    Arc::new(
        hepquery::model::generator::build_dataset(DatasetSpec {
            n_events: 8_192,
            row_group_size: 64, // 128 row groups like the paper's files
            seed: 0xF16,
        })
        .1,
    )
}

#[test]
fn figure1_shapes() {
    let t = table();
    let big = cloud_sim::instances::by_name("m5d.24xlarge").unwrap();
    let twelve = cloud_sim::instances::by_name("m5d.12xlarge").unwrap();

    for q in [QueryId::Q1, QueryId::Q6a] {
        let bq = run_one(System::BigQuery, None, &t, q, &ExecEnv::seed()).unwrap();
        let bq_ext = run_one(System::BigQueryExternal, None, &t, q, &ExecEnv::seed()).unwrap();
        let athena = run_one(System::AthenaV2, None, &t, q, &ExecEnv::seed()).unwrap();
        let presto = run_one(System::Presto, Some(big), &t, q, &ExecEnv::seed()).unwrap();
        let rumble = run_one(System::Rumble, Some(big), &t, q, &ExecEnv::seed()).unwrap();
        let rdf = run_one(System::RDataFrame, Some(twelve), &t, q, &ExecEnv::seed()).unwrap();

        // BigQuery is the fastest QaaS/SQL-style system on every query,
        // with the paper's QaaS ordering (loaded < external < Athena) and
        // faster than the self-managed JVM systems. (The paper also notes
        // RDataFrame's fastest configuration can outperform BigQuery with
        // external tables, so RDataFrame is excluded from this ordering.)
        for other in [&bq_ext, &athena, &presto, &rumble] {
            assert!(
                bq.wall_seconds <= other.wall_seconds,
                "{}: BigQuery {} vs {} {}",
                q.name(),
                bq.wall_seconds,
                other.system,
                other.wall_seconds
            );
        }
        assert!(bq_ext.wall_seconds < athena.wall_seconds);
        // Rumble is the slowest system by a wide margin.
        for other in [&bq, &bq_ext, &athena, &presto, &rdf] {
            assert!(
                rumble.wall_seconds > 2.0 * other.wall_seconds,
                "{}: Rumble {} vs {} {}",
                q.name(),
                rumble.wall_seconds,
                other.system,
                other.wall_seconds
            );
        }
        // RDataFrame is the cheapest self-managed option.
        assert!(rdf.cost_usd < presto.cost_usd);
        assert!(rdf.cost_usd < rumble.cost_usd);
    }
}

#[test]
fn rdataframe_scalability_cliff() {
    // Fixed work mapped across the instance sweep: v6.22 has a retrograde
    // region that the dev version pushes out — Figure 1's RDataFrame story.
    let prof_old = cloud_sim::SelfManagedProfile::rdataframe_v622();
    let prof_new = cloud_sim::SelfManagedProfile::rdataframe_dev();
    let walls_old: Vec<f64> = cloud_sim::M5D_CATALOG
        .iter()
        .map(|i| prof_old.wall_seconds(50.0, i, 100_000))
        .collect();
    let best_old = walls_old.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(walls_old.last().unwrap() > &best_old, "no cliff");
    let walls_new: Vec<f64> = cloud_sim::M5D_CATALOG
        .iter()
        .map(|i| prof_new.wall_seconds(50.0, i, 100_000))
        .collect();
    assert!(walls_new.last().unwrap() < walls_old.last().unwrap());
}

#[test]
fn figure2_plateau() {
    // QaaS times stay essentially constant once the data spans several row
    // groups, because resources scale with row-group count.
    let t = table();
    let q = QueryId::Q1;
    let quarter = Arc::new(t.head(t.n_rows() / 4));
    let full = run_one(System::BigQuery, None, &t, q, &ExecEnv::seed()).unwrap();
    let small = run_one(System::BigQuery, None, &quarter, q, &ExecEnv::seed()).unwrap();
    let ratio = full.wall_seconds / small.wall_seconds;
    assert!(
        (0.5..2.0).contains(&ratio),
        "QaaS should plateau, ratio {ratio}"
    );
}

#[test]
fn figure4_compute_bound_ordering() {
    // CPU time ranking: the combinatoric Q6 dwarfs the scan-bound Q1 on
    // every engine; throughput per core collapses accordingly.
    let t = table();
    for system in [System::Presto, System::RDataFrame, System::Rumble] {
        let inst = cloud_sim::instances::by_name("m5d.24xlarge");
        let q1 = run_one(system, inst, &t, QueryId::Q1, &ExecEnv::seed()).unwrap();
        let q6 = run_one(system, inst, &t, QueryId::Q6a, &ExecEnv::seed()).unwrap();
        assert!(
            q6.cpu_seconds > q1.cpu_seconds,
            "{}: Q6 {} <= Q1 {}",
            q1.system,
            q6.cpu_seconds,
            q1.cpu_seconds
        );
        // Throughput collapse: robust for the interpreted engines whose
        // Q6 CPU time is in whole seconds; RDataFrame's sub-millisecond
        // timings are too noisy at smoke scale for a strict inequality.
        if system != System::RDataFrame {
            assert!(
                q6.throughput_mb_per_core_second() < q1.throughput_mb_per_core_second(),
                "{}: throughput should collapse on Q6",
                q1.system
            );
        }
    }
}

#[test]
fn pricing_models_diverge_like_the_paper() {
    // On Q1 (few fields of a big struct) Athena's whole-struct reads out-
    // price BigQuery per byte of useful data; scan accounting must show
    // Athena reading strictly more than the ideal.
    let t = table();
    let bq = run_one(System::BigQuery, None, &t, QueryId::Q1, &ExecEnv::seed()).unwrap();
    let at = run_one(System::AthenaV2, None, &t, QueryId::Q1, &ExecEnv::seed()).unwrap();
    assert!(at.scan.bytes_scanned > at.scan.ideal_compressed_bytes);
    // BigQuery's billed (logical) bytes exceed its ideal uncompressed
    // bytes because 4-byte floats are billed as 8.
    assert!(bq.scan.logical_bytes >= 2 * bq.scan.ideal_uncompressed_bytes / 2);
    assert!(bq.scan.logical_bytes > bq.scan.ideal_compressed_bytes);
}
