//! The parallel-execution contract: morsel-parallel compiled execution
//! is an *execution* optimization, never a semantic or a pricing one.
//! The same plan at 1, 2 or 8 workers — under adversarial seeded steal
//! orders — must produce byte-identical bin sequences, byte-identical
//! histograms through the engines, and identical `ScanStats` (scan
//! accounting is a serial pre-pass, so a stolen or re-queued morsel can
//! never be double-billed).

use std::sync::Arc;

use hepquery::bench::{adapters, ALL_QUERIES};
use hepquery::exec_par::{self, ParOptions};
use hepquery::physical_ir;
use hepquery::prelude::*;

fn table() -> Arc<Table> {
    Arc::new(
        hepquery::model::generator::build_dataset(DatasetSpec {
            n_events: 2_000,
            row_group_size: 128,
            seed: 0xDE7E12,
        })
        .1,
    )
}

/// Every benchmark query that lowers to the compiled IR: the raw bin
/// sequence from the parallel executor is byte-identical to the serial
/// one at every worker count and steal seed.
#[test]
fn parallel_bins_byte_identical_across_workers_and_steal_orders() {
    let table = table();
    let mut lowered = 0;
    for q in ALL_QUERIES {
        let script = hepquery::sql::parser::parse_script(&hepquery::bench::queries::text(
            hepquery::bench::queries::Language::Presto,
            *q,
        ))
        .unwrap();
        let Some(plan) = hepquery::sql::compile::lower(&script) else {
            continue;
        };
        lowered += 1;
        let serial = physical_ir::execute(
            &plan,
            &table,
            None,
            &obs::TraceCtx::disabled(),
            &obs::CancelToken::none(),
        )
        .unwrap();
        for workers in [1, 2, 8] {
            for steal_seed in [0u64, 0x5EED, u64::MAX] {
                let (bins, stats) = exec_par::execute(
                    &plan,
                    &table,
                    None,
                    &obs::TraceCtx::disabled(),
                    &obs::CancelToken::none(),
                    None,
                    &ParOptions {
                        workers,
                        steal_seed,
                        recovery: None,
                    },
                )
                .unwrap();
                assert_eq!(
                    bins,
                    serial,
                    "{}: parallel bins diverged at workers={workers} seed={steal_seed:#x}",
                    q.name()
                );
                // Exactly one morsel per row group: nothing lost, nothing
                // executed twice.
                assert_eq!(stats.morsels, table.row_groups().len() as u64);
                assert_eq!(stats.rows, table.n_rows() as u64);
            }
        }
    }
    assert!(lowered >= 2, "expected several queries to lower: {lowered}");
}

/// Through the SQL engine: identical histograms AND identical ScanStats
/// at every worker count — parallelism must not perturb billing.
#[test]
fn engine_results_and_scan_billing_identical_at_any_worker_count() {
    let table = table();
    for q in ALL_QUERIES {
        let run = |workers: usize| {
            adapters::run_sql_env(
                Dialect::presto(),
                &table,
                *q,
                SqlOptions::default(),
                &adapters::ExecEnv {
                    parallel_workers: (workers > 0).then_some(workers),
                    ..adapters::ExecEnv::seed()
                },
            )
            .unwrap()
        };
        let serial = run(0);
        for workers in [2, 8] {
            let par = run(workers);
            assert!(
                par.histogram.counts_equal(&serial.histogram),
                "{}: histogram diverged at {workers} workers",
                q.name()
            );
            assert_eq!(
                par.stats.scan,
                serial.stats.scan,
                "{}: scan accounting perturbed by parallelism (double-billing?)",
                q.name()
            );
        }
    }
}

/// The JSONiq and RDataFrame compiled paths honor the same contract.
#[test]
fn flwor_and_rdf_parallel_results_match_serial() {
    let table = table();
    for q in ALL_QUERIES {
        let jq_serial =
            adapters::run_jsoniq_env(&table, *q, Default::default(), &adapters::ExecEnv::seed())
                .unwrap();
        let jq_par = adapters::run_jsoniq_env(
            &table,
            *q,
            Default::default(),
            &adapters::ExecEnv {
                parallel_workers: Some(4),
                ..adapters::ExecEnv::seed()
            },
        )
        .unwrap();
        assert!(
            jq_par.histogram.counts_equal(&jq_serial.histogram),
            "{}: JSONiq parallel diverged",
            q.name()
        );
        assert_eq!(jq_par.stats.scan, jq_serial.stats.scan);

        let rdf_serial =
            adapters::run_rdf_env(&table, *q, Default::default(), &adapters::ExecEnv::seed())
                .unwrap();
        let rdf_par = adapters::run_rdf_env(
            &table,
            *q,
            Default::default(),
            &adapters::ExecEnv {
                parallel_workers: Some(4),
                ..adapters::ExecEnv::seed()
            },
        )
        .unwrap();
        assert!(
            rdf_par.histogram.counts_equal(&rdf_serial.histogram),
            "{}: RDataFrame parallel diverged",
            q.name()
        );
        assert_eq!(rdf_par.stats.scan, rdf_serial.stats.scan);
    }
}

/// The paper simulation stays byte-identical with parallelism available:
/// `engine_for` pins compiled execution *and* parallel workers off, so
/// an environment requesting workers cannot perturb the calibrated
/// interpreters.
#[test]
fn engine_for_pins_parallelism_off() {
    let table = table();
    for system in [System::Presto, System::Rumble, System::RDataFrame] {
        let engine = engine_for(system, table.clone());
        let spec = QuerySpec::benchmark(QueryId::Q1);
        let base = engine.execute(&spec, &ExecEnv::seed()).unwrap();
        let with_workers = engine
            .execute(
                &spec,
                &ExecEnv {
                    parallel_workers: Some(8),
                    ..ExecEnv::seed()
                },
            )
            .unwrap();
        assert!(
            with_workers.histogram.counts_equal(&base.histogram),
            "{}: paper engine perturbed by parallel_workers",
            system.name()
        );
        assert_eq!(with_workers.stats.scan, base.stats.scan);
        assert_eq!(with_workers.stats.threads_used, base.stats.threads_used);
    }
}
