//! Language tour: prints the (Q5) implementation in all five languages and
//! runs each of the executable ones, demonstrating the paper's §3 — same
//! analysis, very different ergonomics.
//!
//! ```sh
//! cargo run --release --example language_tour
//! ```

use std::sync::Arc;

use hepquery::bench::queries::{text, Language, ALL_LANGUAGES};
use hepquery::bench::{adapters, metrics, reference, QueryId};
use hepquery::prelude::*;

fn main() {
    let q = QueryId::Q5;
    println!("=== {} — {}\n", q.name(), q.description());

    for lang in ALL_LANGUAGES {
        let t = text(*lang, q);
        let (chars, lines, clauses) = metrics::count_text(*lang, &t);
        println!(
            "--- {} ({chars} chars, {lines} lines, {} clauses) {}",
            lang.name(),
            clauses.len(),
            "-".repeat(20)
        );
        println!("{t}\n");
    }

    // Run the executable ones and confirm they agree.
    let (events, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 20_000,
        row_group_size: 2_048,
        seed: 5,
    });
    let table = Arc::new(table);
    let expect = reference::run(q, &events);
    let env = adapters::ExecEnv::seed();
    let bq =
        adapters::run_sql_env(Dialect::bigquery(), &table, q, SqlOptions::default(), &env).unwrap();
    let presto =
        adapters::run_sql_env(Dialect::presto(), &table, q, SqlOptions::default(), &env).unwrap();
    let athena =
        adapters::run_sql_env(Dialect::athena(), &table, q, SqlOptions::default(), &env).unwrap();
    let jq = adapters::run_jsoniq_env(&table, q, Default::default(), &env).unwrap();
    let rdf = adapters::run_rdf_env(&table, q, Default::default(), &env).unwrap();
    for (name, run) in [
        ("BigQuery", &bq),
        ("Presto", &presto),
        ("Athena", &athena),
        ("JSONiq", &jq),
        ("RDataFrame", &rdf),
    ] {
        assert!(
            run.histogram.counts_equal(&expect.hist),
            "{name} differs from the reference"
        );
        println!(
            "{name:<12} {} entries — matches the reference bin-for-bin",
            run.histogram.total()
        );
    }
    let _ = Language::Jsoniq;
}
