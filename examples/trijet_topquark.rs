//! The benchmark's heavyweight: (Q6) — find, in every event with at least
//! three jets, the trijet whose invariant mass is closest to the top quark,
//! then plot its pt and its best b-tag. Demonstrates the compute-bound
//! regime of Table 2 (C(J,3) combinations per event) and compares the SQL
//! formulation's cost across dialects.
//!
//! ```sh
//! cargo run --release --example trijet_topquark
//! ```

use std::sync::Arc;

use hepquery::bench::{adapters, complexity, reference, QueryId};
use hepquery::prelude::*;

fn main() {
    let (events, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 20_000,
        row_group_size: 2_048,
        seed: 172,
    });
    let table = Arc::new(table);

    // The combinatorial load this query carries (Table 2).
    let row = complexity::row(QueryId::Q6a, &events);
    println!(
        "Q6 explores {} = {:.1} record combinations per event (paper: {:.1})",
        row.formula, row.measured_ops_per_event, row.paper_ops_per_event
    );

    let expect_pt = reference::run(QueryId::Q6a, &events);
    let expect_tag = reference::run(QueryId::Q6b, &events);

    println!("\ntrijet system pt (events with >= 3 jets):");
    println!("{}", expect_pt.hist.ascii(60));
    println!("max b-tag in the selected trijet:");
    println!("{}", expect_tag.hist.ascii(60));

    println!("dialect comparison on Q6a (same result, different work):");
    let env = adapters::ExecEnv::seed();
    for dialect in [Dialect::bigquery(), Dialect::presto(), Dialect::athena()] {
        let run = adapters::run_sql_env(dialect, &table, QueryId::Q6a, SqlOptions::default(), &env)
            .unwrap();
        assert!(run.histogram.counts_equal(&expect_pt.hist));
        println!(
            "  {:<9} cpu {:>8.1} ms   bytes scanned {:>10}",
            dialect.name.as_str(),
            run.stats.cpu_seconds * 1e3,
            run.stats.scan.bytes_scanned
        );
    }
}
