//! Dimuon invariant-mass spectrum — the classic "rediscover the Z boson"
//! analysis, written three ways against the same data:
//!
//! 1. directly over the event model (what a physicist's event loop does),
//! 2. as an RDataFrame-style chain,
//! 3. as a JSONiq query.
//!
//! The Z peak injected by the generator shows up at ≈91 GeV in all three.
//!
//! ```sh
//! cargo run --release --example dimuon_spectrum
//! ```

use std::sync::Arc;

use engine_rdf::{ColValue, Options, RDataFrame};
use hepquery::bench::reference::pair_mass;
use hepquery::prelude::*;

fn main() {
    let (events, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 100_000,
        row_group_size: 8_192,
        seed: 91,
    });
    let table = Arc::new(table);
    let spec = HistSpec::new(60, 60.0, 120.0);

    // --- 1. Plain event loop over the in-memory model.
    let mut h_loop = Histogram::new(spec);
    for e in &events {
        for i in 0..e.muons.len() {
            for k in (i + 1)..e.muons.len() {
                let (a, b) = (&e.muons[i], &e.muons[k]);
                if a.charge * b.charge < 0 {
                    h_loop.fill(pair_mass(
                        a.pt, a.eta, a.phi, a.mass, b.pt, b.eta, b.phi, b.mass,
                    ));
                }
            }
        }
    }

    // --- 2. RDataFrame-style chain.
    let df = RDataFrame::new(table.clone(), Options::default())
        .define(
            "dimuon_mass",
            &[
                "Muon_pt",
                "Muon_eta",
                "Muon_phi",
                "Muon_mass",
                "Muon_charge",
            ],
            |v| {
                let pt = v.arr("Muon_pt");
                let eta = v.arr("Muon_eta");
                let phi = v.arr("Muon_phi");
                let mass = v.arr("Muon_mass");
                let charge = v.arr("Muon_charge");
                let mut out = Vec::new();
                for i in 0..pt.len() {
                    for k in (i + 1)..pt.len() {
                        if charge[i] * charge[k] < 0.0 {
                            out.push(pair_mass(
                                pt[i], eta[i], phi[i], mass[i], pt[k], eta[k], phi[k], mass[k],
                            ));
                        }
                    }
                }
                ColValue::Arr(out)
            },
        )
        .histo1d(spec, "dimuon_mass");
    let h_rdf = df.run().unwrap().histogram;

    // --- 3. JSONiq.
    let mut engine = engine_flwor::FlworEngine::new(Default::default());
    engine.register(table);
    let out = engine
        .execute(
            r#"declare function hep:pair-mass($p1, $p2) {
                 let $px1 := $p1.pt * cos($p1.phi) let $py1 := $p1.pt * sin($p1.phi) let $pz1 := $p1.pt * sinh($p1.eta)
                 let $px2 := $p2.pt * cos($p2.phi) let $py2 := $p2.pt * sin($p2.phi) let $pz2 := $p2.pt * sinh($p2.eta)
                 let $e1 := sqrt($px1 * $px1 + $py1 * $py1 + $pz1 * $pz1 + $p1.mass * $p1.mass)
                 let $e2 := sqrt($px2 * $px2 + $py2 * $py2 + $pz2 * $pz2 + $p2.mass * $p2.mass)
                 let $e := $e1 + $e2 let $px := $px1 + $px2 let $py := $py1 + $py2 let $pz := $pz1 + $pz2
                 return sqrt(max((0.0, $e * $e - ($px * $px + $py * $py + $pz * $pz))))
               };
               for $e in parquet-file("events")
               return for $m1 at $i in $e.Muon[]
                      for $m2 at $k in $e.Muon[]
                      where $i lt $k and $m1.charge ne $m2.charge
                      return hep:pair-mass($m1, $m2)"#,
        )
        .unwrap();
    let mut h_jq = Histogram::new(spec);
    for item in &out.items {
        h_jq.fill(item.as_f64().unwrap());
    }

    assert!(
        h_loop.counts_equal(&h_rdf),
        "event loop vs RDataFrame differ"
    );
    assert!(h_loop.counts_equal(&h_jq), "event loop vs JSONiq differ");

    println!("opposite-charge dimuon mass spectrum, 60–120 GeV:");
    println!("{}", h_loop.ascii(64));
    let peak_bin = h_loop
        .counts()
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "peak at {:.1}–{:.1} GeV (expect the Z at ~91.2 GeV)",
        spec.edge(peak_bin),
        spec.edge(peak_bin + 1)
    );
}
