//! Quickstart: generate a data set, run one ADL query on every engine,
//! and print the histogram.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use hepquery::bench::{adapters, reference, QueryId};
use hepquery::prelude::*;

fn main() {
    // 1. A synthetic CMS-like data set (see hep-model's calibration docs).
    let (events, table) = hepquery::model::generator::build_dataset(DatasetSpec {
        n_events: 50_000,
        row_group_size: 4_096,
        seed: 2012,
    });
    let table = Arc::new(table);
    println!(
        "generated {} events / {} row groups / {:.1} MB compressed",
        table.n_rows(),
        table.row_groups().len(),
        table.compressed_bytes() as f64 / 1e6
    );

    // 2. Q4: MET of events with at least two jets above 40 GeV.
    let q = QueryId::Q4;
    println!("\n{} — {}\n", q.name(), q.description());

    let expect = reference::run(q, &events);
    println!("reference    entries: {:>7}", expect.hist.total());

    // Every deployment dispatches through the one `QueryEngine` trait.
    let env = ExecEnv::seed();
    for system in [
        System::BigQuery,
        System::Presto,
        System::AthenaV2,
        System::Rumble,
        System::RDataFrame,
    ] {
        let run = engine_for(system, table.clone())
            .execute(&QuerySpec::benchmark(q), &env)
            .unwrap();
        report(system.name(), &run, &expect.hist);
    }

    // 3. The plot itself.
    println!("\n{}", expect.hist.ascii(60));

    // 4. The same API with tracing on: one span tree per query.
    let traced_env = ExecEnv {
        trace: hepquery::obs::TraceCtx::enabled(),
        ..ExecEnv::seed()
    };
    let run = engine_for(System::Presto, table.clone())
        .execute(&QuerySpec::benchmark(q), &traced_env)
        .unwrap();
    println!(
        "\nspan tree ({} on Presto):\n{}",
        q.name(),
        run.trace.render(false)
    );
}

fn report(name: &str, run: &adapters::EngineRun, expect: &Histogram) {
    println!(
        "{name:<20} entries: {:>7}  scanned: {:>10} B  cpu: {:>8.1} ms  exact: {}",
        run.histogram.total(),
        run.stats.scan.bytes_scanned,
        run.stats.cpu_seconds * 1e3,
        run.histogram.counts_equal(expect),
    );
}
