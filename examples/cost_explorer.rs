//! Cloud cost explorer: what would each deployment charge for a query?
//!
//! Reproduces the paper's §4.1 pricing discussion interactively: the same
//! query is priced under BigQuery's logical-bytes model, Athena's
//! bytes-read model (with its whole-struct reads), and self-managed
//! instances (on-demand and spot), at the local scale and extrapolated to
//! the paper's 53.4 M-event data set.
//!
//! ```sh
//! cargo run --release --example cost_explorer
//! ```

use std::sync::Arc;

use hepquery::bench::runner::{run_one, scale_to_paper, System};
use hepquery::bench::{QueryId, ALL_QUERIES};
use hepquery::prelude::*;

fn main() {
    let spec = DatasetSpec {
        n_events: 1 << 16,
        row_group_size: 512,
        seed: 0xC057,
    };
    let paper_factor = spec.paper_scale_factor();
    let (_, table) = hepquery::model::generator::build_dataset(spec);
    let table = Arc::new(table);

    println!(
        "pricing {} events locally; extrapolation x{:.0} to the paper's 53.4M events",
        table.n_rows(),
        paper_factor
    );
    println!();
    println!(
        "{:6} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "query", "BigQuery", "Athena v2", "Presto 24xl", "RDF 12xl", "RDF 12xl spot"
    );

    let big = cloud_sim::instances::by_name("m5d.24xlarge").unwrap();
    let twelve = cloud_sim::instances::by_name("m5d.12xlarge").unwrap();
    for q in ALL_QUERIES {
        if *q == QueryId::Q6b {
            continue;
        }
        let bq = scale_to_paper(
            &run_one(System::BigQuery, None, &table, *q, &ExecEnv::seed()).unwrap(),
            paper_factor,
        );
        let at = scale_to_paper(
            &run_one(System::AthenaV2, None, &table, *q, &ExecEnv::seed()).unwrap(),
            paper_factor,
        );
        let pr = scale_to_paper(
            &run_one(System::Presto, Some(big), &table, *q, &ExecEnv::seed()).unwrap(),
            paper_factor,
        );
        let rdf = scale_to_paper(
            &run_one(
                System::RDataFrame,
                Some(twelve),
                &table,
                *q,
                &ExecEnv::seed(),
            )
            .unwrap(),
            paper_factor,
        );
        let spot = cloud_sim::spot_cost_usd(rdf.wall_seconds, twelve, 5.0);
        println!(
            "{:6} {:>13.4}$ {:>13.4}$ {:>13.4}$ {:>13.4}$ {:>13.4}$",
            q.name(),
            bq.cost_usd,
            at.cost_usd,
            pr.cost_usd,
            rdf.cost_usd,
            spot
        );
    }
    println!();
    println!("patterns to look for (paper §4.1): self-managed undercuts QaaS on the");
    println!("scan-bound Q1–Q5; the gap narrows on compute-bound Q7/Q8; on Q6 the QaaS");
    println!("systems win because their pricing ignores compute entirely.");
}
